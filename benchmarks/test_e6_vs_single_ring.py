"""E6 — RingNet vs the single logical ring of Nikolaidis & Harms [16].

Claim (§2): "since all the control information has to be rotated along
the ring, it may lead to large latency and require large buffers when
the ring becomes large.  Each logical ring within our proposed RingNet
model functions in a similar way, but it deals with only a local scope."

Both systems run the identical ordering/token/reliability stack; only
the distribution vehicle differs.  Expected shape: single-ring latency
grows ~linearly with N; RingNet latency is near-flat (small local rings
+ fixed tree depth); the crossover sits at very small N.

Ported to the :mod:`repro.experiments` subsystem: each cell is a spec
(``system="single_ring"`` vs ``"ringnet"``) and latency/peak-buffer
numbers come from the standard :class:`RunResult`.
"""

import pytest

from repro.experiments import ExperimentSpec, WorkloadSpec, run_point

from _common import emit, run_once

DURATION = 10_000.0
RATE = 15.0
SIZES = [6, 12, 24, 48]

BASE = ExperimentSpec(
    name="e6",
    protocol={"mq_retention": 16},
    workload=WorkloadSpec(s=1, rate_per_sec=RATE),
    duration_ms=DURATION,
    warmup_ms=2_500.0,
    seed=606,
)


def single_ring_cell(n: int) -> dict:
    # single_ring derives n_bs from the shape's AP count.
    spec = BASE.with_overrides({
        "system": "single_ring",
        "hierarchy.n_br": 1, "hierarchy.ags_per_br": 1,
        "hierarchy.aps_per_ag": n, "hierarchy.mhs_per_ap": 1,
    })
    r = run_point(spec)
    return {
        "system": "single-ring",
        "N": n,
        "p50 (ms)": round(r.latency["p50"], 1),
        "p99 (ms)": round(r.latency["p99"], 1),
        "peak wq+mq": r.peak_buffer,
    }


def ringnet_cell(n: int) -> dict:
    ags_per_br = 2
    aps_per_ag = max(1, n // (3 * ags_per_br))
    spec = BASE.with_overrides({
        "hierarchy.n_br": 3, "hierarchy.ags_per_br": ags_per_br,
        "hierarchy.aps_per_ag": aps_per_ag, "hierarchy.mhs_per_ap": 1,
    })
    r = run_point(spec)
    return {
        "system": "ringnet",
        "N": 3 * ags_per_br * aps_per_ag,
        "p50 (ms)": round(r.latency["p50"], 1),
        "p99 (ms)": round(r.latency["p99"], 1),
        "peak wq+mq": r.peak_buffer,
    }


def run_sweep() -> list:
    rows = []
    for n in SIZES:
        rows.append(single_ring_cell(n))
        rows.append(ringnet_cell(n))
    return rows


@pytest.mark.benchmark(group="e6")
def test_e6_single_ring_degrades_with_size(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E6 distribution vehicle: one big ring [16] vs RingNet", rows,
         "paper: single ring => large latency/buffers at scale; RingNet "
         "keeps local scopes")
    single = {r["N"]: r for r in rows if r["system"] == "single-ring"}
    ringnet = {r["N"]: r for r in rows if r["system"] == "ringnet"}
    # Single ring degrades super-linearly vs its own small size...
    assert single[48]["p50 (ms)"] > 3 * single[6]["p50 (ms)"]
    # ...while RingNet stays near-flat (< 1.5x from smallest to largest).
    assert ringnet[max(ringnet)]["p50 (ms)"] < 1.5 * ringnet[min(ringnet)]["p50 (ms)"]
    # And RingNet wins outright at the largest size.
    assert ringnet[max(ringnet)]["p50 (ms)"] < single[48]["p50 (ms)"]
