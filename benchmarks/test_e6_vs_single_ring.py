"""E6 — RingNet vs the single logical ring of Nikolaidis & Harms [16].

Claim (§2): "since all the control information has to be rotated along
the ring, it may lead to large latency and require large buffers when
the ring becomes large.  Each logical ring within our proposed RingNet
model functions in a similar way, but it deals with only a local scope."

Both systems run the identical ordering/token/reliability stack; only
the distribution vehicle differs.  Expected shape: single-ring latency
grows ~linearly with N; RingNet latency is near-flat (small local rings
+ fixed tree depth); the crossover sits at very small N.
"""

import pytest

from repro.baselines.single_ring import SingleRingMulticast
from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import LatencyCollector
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

DURATION = 10_000.0
RATE = 15.0
CFG = ProtocolConfig(mq_retention=16)
SIZES = [6, 12, 24, 48]


def single_ring_cell(n: int) -> dict:
    sim = Simulator(seed=606)
    ring = SingleRingMulticast.build_ring(sim, n_bs=n, mhs_per_bs=1, cfg=CFG)
    lat = LatencyCollector(sim.trace, warmup=2_500.0)
    src = ring.add_source(corresponding="bs:0", rate_per_sec=RATE)
    ring.start()
    src.start()
    sim.run(until=DURATION)
    peaks = ring.ring_peak_buffers()
    return {
        "system": "single-ring",
        "N": n,
        "p50 (ms)": round(lat.summary()["p50"], 1),
        "p99 (ms)": round(lat.summary()["p99"], 1),
        "peak wq+mq": peaks["wq_peak"] + peaks["mq_peak"],
    }


def ringnet_cell(n: int) -> dict:
    ags_per_br = 2
    aps_per_ag = max(1, n // (3 * ags_per_br))
    sim = Simulator(seed=606)
    net = RingNet.build(sim, HierarchySpec(n_br=3, ags_per_br=ags_per_br,
                                           aps_per_ag=aps_per_ag,
                                           mhs_per_ap=1), cfg=CFG)
    lat = LatencyCollector(sim.trace, warmup=2_500.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=RATE)
    net.start()
    src.start()
    sim.run(until=DURATION)
    peak = max(r["wq_peak"] + r["mq_peak"] for r in net.buffer_reports())
    return {
        "system": "ringnet",
        "N": 3 * ags_per_br * aps_per_ag,
        "p50 (ms)": round(lat.summary()["p50"], 1),
        "p99 (ms)": round(lat.summary()["p99"], 1),
        "peak wq+mq": peak,
    }


def run_sweep() -> list:
    rows = []
    for n in SIZES:
        rows.append(single_ring_cell(n))
        rows.append(ringnet_cell(n))
    return rows


@pytest.mark.benchmark(group="e6")
def test_e6_single_ring_degrades_with_size(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E6 distribution vehicle: one big ring [16] vs RingNet", rows,
         "paper: single ring => large latency/buffers at scale; RingNet "
         "keeps local scopes")
    single = {r["N"]: r for r in rows if r["system"] == "single-ring"}
    ringnet = {r["N"]: r for r in rows if r["system"] == "ringnet"}
    # Single ring degrades super-linearly vs its own small size...
    assert single[48]["p50 (ms)"] > 3 * single[6]["p50 (ms)"]
    # ...while RingNet stays near-flat (< 1.5x from smallest to largest).
    r_small = min(ringnet),
    assert ringnet[max(ringnet)]["p50 (ms)"] < 1.5 * ringnet[min(ringnet)]["p50 (ms)"]
    # And RingNet wins outright at the largest size.
    assert ringnet[max(ringnet)]["p50 (ms)"] < single[48]["p50 (ms)"]
