"""E9 — Token-Loss regeneration and Multiple-Token resolution (§4.2.1).

Claims:

* Token-Loss: on the membership protocol's signal, the ring regenerates
  exactly one token from the freshest surviving ``NewOrderingToken``
  snapshot and ordering resumes — no global sequence is assigned twice.
* Multiple-Token: when top rings merge, "the multicast protocol will
  keep only one OrderingToken alive according to some rule".

Scenario A kills the current token holder mid-run; scenario B splits the
top ring (the token keeps running in one half) and merges it back.
Expected shape: exactly one regeneration (A), at most one live token
after merge (B), zero total-order violations throughout, and an ordering
outage bounded by the membership detection + regeneration machinery.
"""

import pytest

from repro.core.protocol import RingNet
from repro.metrics.order_checker import OrderChecker
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

SPEC = HierarchySpec(n_br=4, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)


def crash_holder_run() -> dict:
    sim = Simulator(seed=909)
    net = RingNet.build(sim, SPEC)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    net.start()
    src.start()
    outage = {"last_deliver": 0.0, "max_gap_after_crash": 0.0,
              "crash_at": 3_000.0}

    def watch(rec):
        gap = rec.time - outage["last_deliver"]
        if rec.time > outage["crash_at"]:
            outage["max_gap_after_crash"] = max(
                outage["max_gap_after_crash"], gap)
        outage["last_deliver"] = rec.time

    sim.trace.subscribe("mh.deliver", watch)

    def crash_holder():
        holder = next((ne for ne in net.top_ring_nes()
                       if ne.held_token is not None), None)
        net.crash_ne(holder.id if holder else "br:2")

    sim.schedule_at(outage["crash_at"], crash_holder)
    sim.run(until=15_000)
    src.stop()
    sim.run(until=20_000)
    checker.assert_ok()
    regens = sum(ne.tokens_regenerated for ne in net.nes.values())
    best = max(m.delivered_count for m in net.member_hosts())
    return {
        "scenario": "crash token holder",
        "regenerations": regens,
        "live tokens": sum(1 for ne in net.top_ring_nes()
                           if ne.held_token is not None),
        "ordering outage (ms)": round(outage["max_gap_after_crash"], 1),
        "delivered/best MH": f"{best}/{src.sent}",
        "order violations": checker.violation_count,
    }


def split_merge_run() -> dict:
    sim = Simulator(seed=910)
    net = RingNet.build(sim, SPEC)
    checker = OrderChecker(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=15)
    net.start()
    src.start()
    sim.run(until=2_000)
    net.maintenance.split_top_ring(["br:0", "br:1"], ["br:2", "br:3"])
    sim.run(until=5_000)
    net.maintenance.merge_top_rings("ring:br.a", "ring:br.b")
    sim.run(until=15_000)
    src.stop()
    sim.run(until=20_000)
    checker.assert_ok()
    best = max(m.delivered_count for m in net.member_hosts())
    return {
        "scenario": "split + merge top ring",
        "regenerations": sum(ne.tokens_regenerated
                             for ne in net.nes.values()),
        "live tokens": sum(1 for ne in net.top_ring_nes()
                           if ne.held_token is not None),
        "ordering outage (ms)": float("nan"),
        "delivered/best MH": f"{best}/{src.sent}",
        "order violations": checker.violation_count,
    }


@pytest.mark.benchmark(group="e9")
def test_e9_token_recovery(benchmark):
    def run():
        return [crash_holder_run(), split_merge_run()]

    rows = run_once(benchmark, run)
    emit("E9 Token-Loss regeneration + Multiple-Token resolution", rows,
         "paper: regenerate from the freshest NewOrderingToken; keep "
         "exactly one token alive after a merge")
    crash, merge = rows
    assert crash["regenerations"] == 1
    assert crash["order violations"] == 0
    assert merge["order violations"] == 0
    assert merge["live tokens"] <= 1
    # Ordering resumed: nearly the whole stream reached the members.
    for r in rows:
        got, sent = r["delivered/best MH"].split("/")
        assert int(got) >= int(sent) - 10
