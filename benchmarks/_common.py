"""Shared machinery for the experiment benchmarks (E1–E10).

Every benchmark prints the paper-style rows recorded in EXPERIMENTS.md.
`run_once(benchmark, fn)` wraps pytest-benchmark so each simulation runs
exactly once (simulations are deterministic; statistical repetition adds
nothing but wall time) while still recording wall-clock timings.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.metrics.report import format_table


def run_once(benchmark, fn: Callable[[], object]):
    """Benchmark ``fn`` with a single round (deterministic simulation)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(title: str, rows: List[Dict[str, object]], notes: str = "") -> None:
    """Print an experiment's result table (shown with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    print(format_table(rows))
    if notes:
        print(notes)
