"""E1 — Theorem 5.1 throughput parity.

Claim: "our totally-ordered multicast protocol provides the same
multicast throughput [as the protocol without ordering requirement],
s·λ messages each time unit."

For each (s, λ) cell we run the ordered protocol and the unordered
baseline on the same hierarchy and compare steady-state per-MH goodput
against s·λ.  Expected shape: all three columns equal (±5%).
"""

import pytest

from repro.baselines.unordered import UnorderedRingNet
from repro.core.protocol import RingNet
from repro.metrics.collectors import ThroughputCollector
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

SPEC = HierarchySpec(n_br=4, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)
DURATION = 10_000.0
MEASURE_FROM = 3_000.0
CELLS = [(1, 20.0), (2, 20.0), (4, 10.0), (4, 20.0)]


def goodput_ordered(s: int, lam: float) -> float:
    sim = Simulator(seed=101)
    net = RingNet.build(sim, SPEC)
    thr = ThroughputCollector(sim.trace)
    top = net.hierarchy.top_ring.members
    sources = [net.add_source(corresponding=top[i], rate_per_sec=lam)
               for i in range(s)]
    net.start()
    for i, src in enumerate(sources):
        src.start(delay=i * 3.0)
    sim.run(until=DURATION)
    return thr.goodput(MEASURE_FROM, DURATION)


def goodput_unordered(s: int, lam: float) -> float:
    sim = Simulator(seed=101)
    net = UnorderedRingNet.build(sim, SPEC)
    thr = ThroughputCollector(sim.trace)
    top = net.hierarchy.top_ring.members
    sources = [net.add_source(corresponding=top[i], rate_per_sec=lam)
               for i in range(s)]
    for i, src in enumerate(sources):
        src.start(delay=i * 3.0)
    sim.run(until=DURATION)
    return thr.goodput(MEASURE_FROM, DURATION)


def run_sweep() -> list:
    rows = []
    for s, lam in CELLS:
        ordered = goodput_ordered(s, lam)
        unordered = goodput_unordered(s, lam)
        target = s * lam
        rows.append({
            "s": s,
            "lambda": lam,
            "s*lambda (msg/s)": target,
            "ordered (msg/s)": round(ordered, 2),
            "unordered (msg/s)": round(unordered, 2),
            "parity": "yes" if abs(ordered - target) / target < 0.05
                       and abs(ordered - unordered) / target < 0.05 else "NO",
        })
    return rows


@pytest.mark.benchmark(group="e1")
def test_e1_throughput_parity(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E1 Theorem 5.1 throughput: ordered == unordered == s*lambda",
         rows,
         "paper: identical throughput with and without ordering")
    assert all(r["parity"] == "yes" for r in rows)
