"""E1 — Theorem 5.1 throughput parity.

Claim: "our totally-ordered multicast protocol provides the same
multicast throughput [as the protocol without ordering requirement],
s·λ messages each time unit."

For each (s, λ) cell we run the ordered protocol and the unordered
baseline on the same hierarchy and compare steady-state per-MH goodput
against s·λ.  Expected shape: all three columns equal (±5%).

Ported to the :mod:`repro.experiments` subsystem: each cell is an
:class:`ExperimentSpec`, executed by :func:`run_point`; the goodput
comes from the standard :class:`RunResult` instead of hand-wired
collectors.
"""

import pytest

from repro.experiments import ExperimentSpec, HierarchyShape, run_point

from _common import emit, run_once

SHAPE = HierarchyShape(n_br=4, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)
DURATION = 10_000.0
MEASURE_FROM = 3_000.0
CELLS = [(1, 20.0), (2, 20.0), (4, 10.0), (4, 20.0)]

BASE = ExperimentSpec(
    name="e1",
    hierarchy=SHAPE,
    duration_ms=DURATION,
    warmup_ms=MEASURE_FROM,
    seed=101,
)


def goodput(system: str, s: int, lam: float) -> float:
    spec = BASE.with_overrides({
        "system": system,
        "workload.s": s,
        "workload.rate_per_sec": lam,
    })
    return run_point(spec).goodput


def run_sweep() -> list:
    rows = []
    for s, lam in CELLS:
        ordered = goodput("ringnet", s, lam)
        unordered = goodput("unordered", s, lam)
        target = s * lam
        rows.append({
            "s": s,
            "lambda": lam,
            "s*lambda (msg/s)": target,
            "ordered (msg/s)": round(ordered, 2),
            "unordered (msg/s)": round(unordered, 2),
            "parity": "yes" if abs(ordered - target) / target < 0.05
                       and abs(ordered - unordered) / target < 0.05 else "NO",
        })
    return rows


@pytest.mark.benchmark(group="e1")
def test_e1_throughput_parity(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E1 Theorem 5.1 throughput: ordered == unordered == s*lambda",
         rows,
         "paper: identical throughput with and without ordering")
    assert all(r["parity"] == "yes" for r in rows)
