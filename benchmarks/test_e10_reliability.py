"""E10 — best-effort reliability under wireless loss (§4.2.3, [5]).

Claim: the local-scope retransmission scheme gives "highly probable
reliability ... when the network is highly stable", and the really-lost
rule (Received=False ∧ Waiting=False ⇒ Delivered) keeps ordered
delivery from wedging no matter the loss.

Sweep the wireless loss probability.  Expected shape: delivery ratio
degrades gracefully (retransmission absorbs low loss almost entirely);
at any loss rate the protocol never wedges (every NE drains to its rear
once sources stop) and the ordered-prefix property holds.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import ReliabilityCollector
from repro.metrics.order_checker import OrderChecker
from repro.net.link import LinkSpec
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

SPEC = HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=2)
LOSSES = [0.0, 0.02, 0.05, 0.10, 0.20]
DURATION = 8_000.0
DRAIN = 20_000.0


def run_cell(loss: float, max_retries: int = 5) -> dict:
    sim = Simulator(seed=1010)
    cfg = ProtocolConfig(gap_timeout=40.0, max_retries=max_retries)
    net = RingNet.build(sim, SPEC, cfg=cfg,
                        wireless=LinkSpec(latency=5.0, jitter=2.0,
                                          loss_prob=loss))
    checker = OrderChecker(sim.trace)
    rel = ReliabilityCollector(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=25)
    net.start()
    src.start()
    sim.run(until=DURATION)
    src.stop()
    sim.run(until=DRAIN)
    checker.assert_ok()
    # No wedging: every NE fully processed the stream.
    wedged = sum(1 for ne in net.nes.values() if ne.mq.front < ne.mq.rear)
    accounted = min(m.delivered_count + m.tombstones
                    for m in net.member_hosts())
    return {
        "wireless loss": loss,
        "retries": max_retries,
        "delivery ratio": round(rel.delivery_ratio(), 4),
        "worst MH ratio": round(rel.worst_mh_ratio(), 4),
        "accounted (min MH)": f"{accounted}/{src.sent}",
        "wedged NEs": wedged,
        "order violations": checker.violation_count,
    }


def run_sweep() -> list:
    # Full-strength retransmission (the deployed configuration) and a
    # deliberately starved one (zero channel retries, brutal loss) that
    # forces the really-lost tombstoning path to carry the protocol.
    # Note the layering: even with zero *channel* retries, the
    # local-scope gap recovery (§4.2.3) re-serves most holes — it takes
    # both tiers starved plus heavy loss before messages tombstone.
    rows = [run_cell(p, max_retries=5) for p in LOSSES]
    rows += [run_cell(p, max_retries=0) for p in (0.3, 0.5)]
    return rows


@pytest.mark.benchmark(group="e10")
def test_e10_reliability_degrades_gracefully(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E10 best-effort reliability vs wireless loss", rows,
         "paper: local-scope retransmission gives high reliability when "
         "stable; really-lost tombstoning prevents wedging at any loss")
    strong = [r for r in rows if r["retries"] == 5]
    weak = [r for r in rows if r["retries"] == 0]
    ratios = [r["delivery ratio"] for r in strong]
    # Retransmission absorbs i.i.d. loss almost entirely at full strength.
    assert ratios[0] == 1.0
    assert ratios[1] > 0.999
    assert ratios[-1] > 0.95
    # Starved retransmission degrades but *never wedges or disorders*.
    assert any(w["delivery ratio"] < 1.0 for w in weak)
    assert all(w["delivery ratio"] > 0.5 for w in weak)
    # Never wedged, never out of order, everything accounted for.
    assert all(r["wedged NEs"] == 0 for r in rows)
    assert all(r["order violations"] == 0 for r in rows)
    for r in rows:
        # Trailing losses are the one blind spot: a message lost past
        # the last one an MH ever received leaves no hole for gap
        # recovery to chase, so it can be neither delivered nor
        # tombstoned.  The allowance bounds the worst tail run across
        # the starved cells (zero channel retries at up to 50% loss).
        got, sent = r["accounted (min MH)"].split("/")
        assert int(got) >= int(sent) - 8
