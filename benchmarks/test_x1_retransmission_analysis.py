"""X1 — retransmission analysis (the paper's stated future work).

Paper §5: "buffer sizes ... may be larger and message latency may be
larger to accommodate retransmission.  We will do more analysis in our
future work regarding retransmission."

:mod:`repro.analysis.retransmission` provides the closed forms; this
experiment validates them against the transport layer in isolation
(single lossy hop, so no higher-tier recovery masks the channel):

* measured per-message transmission count ≈ ``E[attempts]``;
* measured delivery ratio ≈ ``1 - p^(k+1)``;
* measured mean extra latency (beyond the lossless one-way time)
  ≈ ``rto · E[i | delivered]``.
"""

import pytest

from repro.analysis.retransmission import RetransmissionModel
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.sim.engine import Simulator

from _common import emit, run_once

N_MESSAGES = 2_000
RTO = 20.0
LATENCY = 2.0
CASES = [(0.1, 5), (0.3, 5), (0.3, 2), (0.5, 3)]


class _Payload(Message):
    __slots__ = ("n", "born")

    def __init__(self, n: int, born: float):
        self.n = n
        self.born = born


class _Rx(NetNode):
    def __init__(self, fabric, node_id):
        super().__init__(fabric, node_id)
        self.chan = ReliableChannel(self)
        self.latencies = []

    def on_message(self, msg):
        payload = self.chan.accept(msg)
        if payload is not None:
            self.latencies.append(self.now - payload.born)


class _Tx(NetNode):
    def __init__(self, fabric, node_id, rto, max_retries):
        super().__init__(fabric, node_id)
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)

    def on_message(self, msg):
        self.chan.accept(msg)


def run_case(p: float, retries: int) -> dict:
    model = RetransmissionModel(loss_prob=p, rto=RTO, max_retries=retries)
    sim = Simulator(seed=2_024)
    fabric = Fabric(sim)
    tx = _Tx(fabric, "tx", RTO, retries)
    rx = _Rx(fabric, "rx")
    fabric.connect("tx", "rx", LinkSpec(latency=LATENCY, loss_prob=p))

    def emit_one(i: int) -> None:
        tx.chan.send("rx", _Payload(i, sim.now))

    for i in range(N_MESSAGES):
        sim.schedule_at(i * (RTO * (retries + 2)), emit_one, i)
    sim.run()

    stats = tx.chan.stats
    measured_attempts = (stats.sent + stats.retransmitted) / stats.sent
    measured_ratio = len(rx.latencies) / N_MESSAGES
    # Extra latency beyond the lossless one-way time.
    measured_extra = (sum(rx.latencies) / len(rx.latencies)) - LATENCY
    row = model.rows()
    row.update({
        "meas attempts": round(measured_attempts, 4),
        "meas P(deliver)": round(measured_ratio, 4),
        "meas E[extra] (ms)": round(measured_extra, 3),
    })
    return row


def run_all() -> list:
    return [run_case(p, k) for p, k in CASES]


@pytest.mark.benchmark(group="x1")
def test_x1_retransmission_model_matches_measurement(benchmark):
    rows = run_once(benchmark, run_all)
    emit("X1 retransmission analysis (paper future work): model vs measured",
         rows,
         "single lossy hop, isolated channel; the protocol's gap recovery "
         "adds a second tier on top of these floors")
    for row in rows:
        assert row["meas attempts"] == pytest.approx(row["E[attempts]"],
                                                     rel=0.05)
        assert row["meas P(deliver)"] == pytest.approx(row["P(deliver)"],
                                                       abs=0.02)
        assert row["meas E[extra] (ms)"] == pytest.approx(
            row["E[extra] (ms)"], rel=0.15, abs=0.5)
