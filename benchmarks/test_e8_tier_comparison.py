"""E8 — buffer/scalability comparison: Host-View [1] vs RelM [6] vs RingNet.

Claims from the paper's related-work discussion:

* "the RelM scheme uses fewer buffers in virtually any system
  configuration in comparison with the Host-View scheme" — the buffer
  burden only bites when a member is slow or disconnected, so each cell
  disconnects one MH for 3 seconds: Host-View's per-MSS
  buffer-until-acked semantics accumulate the whole outage at the edge,
  while RelM caps the exposure with its SH catch-up window and RingNet
  with the MQ retention window (both re-deliver on re-registration).
* Host-View's "global updates necessary with every significant move
  make it inefficient" — control messages per move grow with the view.
* RingNet handoffs cost no wired-core control traffic ("no notion of
  handoff in the wired network").

Expected shape: max per-node buffer Host-View ≫ RelM ≈ RingNet (bounded
by their windows); Host-View control cost grows with N, RingNet stays 0.
"""

import pytest

from repro.baselines.hostview import HostViewProtocol
from repro.baselines.relm import RelMProtocol
from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier

from _common import emit, run_once

DURATION = 8_000.0
RATE = 20.0
SIZES = [8, 24]
OUTAGE = (2_000.0, 5_000.0)  # one member disconnected in this window
WINDOW = 8  # RelM catch-up window == RingNet retention, for fairness


def hostview_cell(n: int) -> dict:
    sim = Simulator(seed=808)
    hv = HostViewProtocol(sim, n_mss=n, rate_per_sec=RATE,
                          update_latency=100.0, mss_max_retries=500)
    for i in range(n):
        hv.add_mobile_host(f"mh:{i}", f"mss:{i}")
    hv.sender.start()
    sim.schedule_at(OUTAGE[0], hv.mobile_hosts["mh:0"].crash)
    sim.schedule_at(OUTAGE[1], hv.mobile_hosts["mh:0"].recover)
    # A few significant moves to exercise the global-update cost.
    for k in range(1, 5):
        sim.schedule_at(2_000 + 500 * k, hv.handoff, f"mh:{k}",
                        f"mss:{(k + 1) % n}")
    sim.run(until=DURATION)
    peaks = hv.peak_buffers()
    return {
        "system": "host-view",
        "N": n,
        "max node buffer": max(peaks["sender_peak"], peaks["mss_peak_max"]),
        "handoff control msgs": peaks["control_messages"],
    }


def relm_cell(n: int) -> dict:
    regions = max(2, n // 8)
    per = n // regions
    sim = Simulator(seed=808)
    relm = RelMProtocol(sim, n_regions=regions, msss_per_region=per,
                        rate_per_sec=RATE, catchup_window=WINDOW)
    i = 0
    for r in range(regions):
        for m in range(per):
            relm.add_mobile_host(f"mh:{i}", f"mss:{r}.{m}")
            i += 1
    relm.source.start()
    mh0 = relm.mobile_hosts["mh:0"]
    sim.schedule_at(OUTAGE[0], mh0.crash)
    sim.schedule_at(OUTAGE[1], mh0.recover)
    # Reconnect = re-register; the SH window serves bounded catch-up.
    sim.schedule_at(OUTAGE[1] + 50, relm.handoff, "mh:0", "mss:0.0")
    for k in range(1, 5):
        sim.schedule_at(2_000 + 500 * k, relm.handoff, f"mh:{k}",
                        f"mss:0.{(k + 1) % per}")
    sim.run(until=DURATION)
    peaks = relm.peak_buffers()
    return {
        "system": "relm",
        "N": regions * per,
        "max node buffer": max(peaks["sh_peak_max"], peaks["mss_peak_max"]),
        "handoff control msgs": 0,  # region-local re-registration only
    }


def ringnet_cell(n: int) -> dict:
    aps_per_ag = max(1, n // 6)
    cfg = ProtocolConfig(mq_retention=WINDOW)
    sim = Simulator(seed=808)
    net = RingNet.build(sim, HierarchySpec(n_br=3, ags_per_br=2,
                                           aps_per_ag=aps_per_ag,
                                           mhs_per_ap=1), cfg=cfg)
    src = net.add_source(corresponding="br:0", rate_per_sec=RATE)
    net.start()
    src.start()
    mh0 = net.mobile_hosts["mh:0.0.0.0"]
    sim.schedule_at(OUTAGE[0], mh0.crash)
    sim.schedule_at(OUTAGE[1], mh0.recover)
    sim.schedule_at(OUTAGE[1] + 50, net.handoff, "mh:0.0.0.0", "ap:0.0.0")
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    for k in range(1, 5):
        sim.schedule_at(2_000 + 500 * k, net.handoff, "mh:1.0.0.0",
                        aps[(k + 1) % len(aps)])
    sim.run(until=DURATION)
    reports = net.buffer_reports()
    per_node = [r["wq_peak"] + r["mq_peak"] for r in reports]
    return {
        "system": "ringnet",
        "N": 3 * 2 * aps_per_ag,
        "max node buffer": max(per_node),
        "handoff control msgs": 0,  # handoff never signals the wired core
    }


def run_sweep() -> list:
    rows = []
    for n in SIZES:
        rows.append(hostview_cell(n))
        rows.append(relm_cell(n))
        rows.append(ringnet_cell(n))
    return rows


@pytest.mark.benchmark(group="e8")
def test_e8_buffer_hierarchy_hostview_relm_ringnet(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E8 two-tier vs three-tier vs RingNet "
         "(3 s member outage; buffer & control cost)",
         rows,
         "paper: RelM fewer buffers than Host-View; RingNet/RelM bound "
         "exposure with windows; RingNet handoffs cost no wired control")
    for n in SIZES:
        hv = next(r for r in rows if r["system"] == "host-view"
                  and r["N"] == n)
        rm = next(r for r in rows if r["system"] == "relm")
        rn = next(r for r in rows if r["system"] == "ringnet")
        # Host-View accumulates the outage at the MSS (~rate × outage);
        # RelM and RingNet stay near their configured windows.
        assert hv["max node buffer"] > 2 * rm["max node buffer"]
        assert hv["max node buffer"] > 2 * rn["max node buffer"]
    # Host-View pays control messages for moves; RingNet none.
    assert all(r["handoff control msgs"] > 0 for r in rows
               if r["system"] == "host-view")
    assert all(r["handoff control msgs"] == 0 for r in rows
               if r["system"] == "ringnet")
    # Host-View's control cost grows with the view size.
    hv_small, hv_large = [r["handoff control msgs"] for r in rows
                          if r["system"] == "host-view"]
    assert hv_large > hv_small
    # RingNet per-node state stays flat with N.
    rn_rows = [r for r in rows if r["system"] == "ringnet"]
    assert rn_rows[-1]["max node buffer"] <= rn_rows[0]["max node buffer"] * 2
