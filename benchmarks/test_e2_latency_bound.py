"""E2 — Theorem 5.1 latency bound.

Claim: "any message will be ordered, forwarded, and delivered within the
message latency bound of Max(T_order, T_transmit) + τ + T_deliver."

The bound is stated *without retransmission*, so links are lossless
here.  We sweep the top-ring size r and the Order-Assignment period τ
and compare the measured maximum end-to-end latency against the analytic
bound.  Expected shape: measured max below the bound everywhere; both
grow with r and τ.
"""

import pytest

from repro.analysis.bounds import bounds_for
from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import LatencyCollector
from repro.net.link import LinkSpec
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

LOSSLESS_WIRED = LinkSpec(latency=2.0, jitter=0.5, loss_prob=0.0)
LOSSLESS_WIRELESS = LinkSpec(latency=5.0, jitter=2.0, loss_prob=0.0)
DURATION = 10_000.0
SWEEP = [(2, 5.0), (4, 5.0), (8, 5.0), (4, 20.0)]


def run_cell(r: int, tau: float) -> dict:
    cfg = ProtocolConfig(tau=tau)
    sim = Simulator(seed=202)
    spec = HierarchySpec(n_br=r, ags_per_br=2, aps_per_ag=1, mhs_per_ap=1)
    net = RingNet.build(sim, spec, cfg=cfg, wired=LOSSLESS_WIRED,
                        wireless=LOSSLESS_WIRELESS)
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=DURATION)
    b = bounds_for(cfg, ring_size=r, n_sources=1, rate_per_sec=20,
                   wired=LOSSLESS_WIRED, wireless=LOSSLESS_WIRELESS,
                   tree_depth=3, lower_ring_size=2)
    s = lat.summary()
    return {
        "r": r,
        "tau (ms)": tau,
        "paper bound (ms)": round(b.latency_bound_ms, 1),
        "corrected (ms)": round(b.latency_bound_corrected_ms, 1),
        "measured max (ms)": round(s["max"], 1),
        "measured p50 (ms)": round(s["p50"], 1),
        "paper holds": "yes" if s["max"] <= b.latency_bound_ms else "NO",
        "corrected holds": ("yes" if s["max"] <= b.latency_bound_corrected_ms
                            else "NO"),
    }


def run_sweep() -> list:
    return [run_cell(r, tau) for r, tau in SWEEP]


@pytest.mark.benchmark(group="e2")
def test_e2_latency_within_bound(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E2 Theorem 5.1 latency bound: max(T_order,T_transmit)+tau+T_deliver",
         rows,
         "reproduction finding: the paper's bound omits the 2nd token\n"
         "rotation a WTSNP entry needs to reach every ring node, so it\n"
         "can be exceeded at larger r; the corrected bound (+T_order)\n"
         "holds everywhere (see EXPERIMENTS.md).")
    # The corrected bound must hold in every cell.
    assert all(r["corrected holds"] == "yes" for r in rows)
    # The paper's bound holds for small rings (its implicit regime).
    small = [r for r in rows if r["r"] <= 4]
    assert all(r["paper holds"] == "yes" for r in small)
    # Shape: the bound (and measured latency) grows with r.
    b = {r["r"]: r["paper bound (ms)"] for r in rows if r["tau (ms)"] == 5.0}
    assert b[2] < b[4] < b[8]
