"""E4 — Remark 3 ablation: ordering off ⇒ lower latency, same delivery.

Claim (Remark 3): "If totally-ordered property is not required, then
multicast using the RingNet hierarchy will be more efficient and message
latency will decrease due to the fact that ordering operations are not
required in the top logical ring."

Same hierarchy, same links, same reliability; only the token/WQ/τ
machinery differs.  Expected shape: unordered latency strictly lower at
every percentile; both variants deliver the identical message set.
"""

import pytest

from repro.baselines.unordered import UnorderedRingNet
from repro.core.protocol import RingNet
from repro.metrics.collectors import LatencyCollector
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

SPEC = HierarchySpec(n_br=4, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)
DURATION = 10_000.0
DRAIN = 16_000.0
RATE = 20.0


def run_ordered() -> dict:
    sim = Simulator(seed=404)
    net = RingNet.build(sim, SPEC)
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=RATE)
    net.start()
    src.start()
    sim.run(until=DURATION)
    src.stop()
    sim.run(until=DRAIN)
    counts = sorted(m.delivered_count for m in net.member_hosts())
    return {"variant": "ordered", "lat": lat.summary(), "sent": src.sent,
            "min_delivered": counts[0], "max_delivered": counts[-1]}


def run_unordered() -> dict:
    sim = Simulator(seed=404)
    net = UnorderedRingNet.build(sim, SPEC)
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=RATE)
    src.start()
    sim.run(until=DURATION)
    src.stop()
    sim.run(until=DRAIN)
    counts = sorted(m.delivered_count for m in net.member_hosts())
    return {"variant": "unordered", "lat": lat.summary(), "sent": src.sent,
            "min_delivered": counts[0], "max_delivered": counts[-1]}


def run_ablation() -> list:
    o, u = run_ordered(), run_unordered()
    rows = []
    for r in (o, u):
        rows.append({
            "variant": r["variant"],
            "p50 (ms)": round(r["lat"]["p50"], 1),
            "p95 (ms)": round(r["lat"]["p95"], 1),
            "max (ms)": round(r["lat"]["max"], 1),
            "sent": r["sent"],
            "delivered/MH": f'{r["min_delivered"]}..{r["max_delivered"]}',
        })
    rows.append({
        "variant": "ordering overhead",
        "p50 (ms)": round(o["lat"]["p50"] - u["lat"]["p50"], 1),
        "p95 (ms)": round(o["lat"]["p95"] - u["lat"]["p95"], 1),
        "max (ms)": round(o["lat"]["max"] - u["lat"]["max"], 1),
        "sent": "-", "delivered/MH": "-",
    })
    return rows, o, u


@pytest.mark.benchmark(group="e4")
def test_e4_unordered_is_faster_same_delivery(benchmark):
    rows, o, u = run_once(benchmark, run_ablation)
    emit("E4 Remark 3: ordered vs unordered RingNet", rows,
         "paper: latency decreases without ordering; throughput identical")
    assert u["lat"]["p50"] < o["lat"]["p50"]
    assert u["lat"]["p95"] < o["lat"]["p95"]
    # Both deliver the complete stream to every member.
    assert o["min_delivered"] == o["sent"]
    assert u["min_delivered"] == u["sent"]
