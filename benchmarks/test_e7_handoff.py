"""E7 — smooth handoff: MMA path reservation on vs off.

Claim (§3): "In most cases, when an MH handoffs, it can immediately
receive multicast messages because either some other members have
already been there, or some reserved path has already been set up in
advance."

Dynamic-path mode (APs join the delivery tree on demand); a directional
walker crosses a corridor of cells at three handoff rates.  Expected
shape: with reservations the post-handoff interruption stays at the
inter-message gap even in the worst case; without them, cold-path
builds blow up the tail (max) interruption.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import InterruptionCollector
from repro.metrics.order_checker import OrderChecker
from repro.mobility.cells import CellGrid
from repro.mobility.handoff import HandoffDriver
from repro.mobility.models import DirectionalWalk
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier

from _common import emit, run_once

DURATION = 20_000.0
RATE = 100.0  # 10 ms cadence makes path-build delays visible
DWELLS = [400.0, 800.0]


def run_cell(smooth: bool, dwell: float, seed: int = 707) -> dict:
    sim = Simulator(seed=seed)
    # Short reservation TTL + a long corridor: without reservations the
    # walker keeps arriving at APs whose paths have gone cold again.
    cfg = ProtocolConfig(smooth_handoff=smooth, reservation_ttl=1_500.0,
                         static_ap_paths=False)
    net = RingNet.build(sim, HierarchySpec(n_br=2, ags_per_br=1,
                                           aps_per_ag=12, mhs_per_ap=0),
                        cfg=cfg)
    checker = OrderChecker(sim.trace)
    inter = InterruptionCollector(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=RATE)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid(len(aps), 1, aps)
    net.add_mobile_host("mh:walker", aps[0])
    driver = HandoffDriver(net, grid,
                           DirectionalWalk(mean_dwell_ms=dwell,
                                           persistence=0.95))
    net.start()
    src.start()
    driver.track("mh:walker", aps[0])
    sim.run(until=DURATION)
    checker.assert_ok()
    mh = net.mobile_hosts["mh:walker"]
    s = inter.summary()
    return {
        "reservation": "on" if smooth else "off",
        "dwell (ms)": dwell,
        "handoffs": mh.handoffs,
        "interrupt p50 (ms)": round(s["p50"], 1),
        "interrupt max (ms)": round(s["max"], 1),
        "tombstoned": mh.tombstones,
    }


def run_sweep() -> list:
    rows = []
    for dwell in DWELLS:
        rows.append(run_cell(True, dwell))
        rows.append(run_cell(False, dwell))
    return rows


@pytest.mark.benchmark(group="e7")
def test_e7_reservation_shrinks_interruption_tail(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E7 smooth handoff: MMA path reservation on/off", rows,
         "paper: with reservations an MH 'immediately' receives after "
         "handoff; cold paths pay the build latency in the tail")
    for dwell in DWELLS:
        on = next(r for r in rows if r["reservation"] == "on"
                  and r["dwell (ms)"] == dwell)
        off = next(r for r in rows if r["reservation"] == "off"
                   and r["dwell (ms)"] == dwell)
        assert on["interrupt max (ms)"] < off["interrupt max (ms)"]
        # With warm paths even the worst case is a few message gaps.
        assert on["interrupt max (ms)"] < 60.0
