"""X2 — sub-tier rings (paper §3 extension): scaling by nesting.

Paper §3: "when considering more complicated scenarios where sub-tiers
of the AGT and BRT tiers are allowed" — and the self-similarity claim
that "if we consider each logical ring as one node, then the RingNet
hierarchy becomes a tree", making the protocol "potentially simple,
efficient, scalable".

Sweep the nesting depth at constant ring size.  Expected shape: the
member population grows geometrically with depth while the median
latency grows only linearly (a bounded number of extra ring/tree hops
per level) and per-node buffers stay flat — scaling by adding tiers,
which is RingNet's whole point versus one big ring (E6).
"""

import pytest

from repro.core.protocol import RingNet
from repro.metrics.collectors import LatencyCollector
from repro.metrics.order_checker import OrderChecker
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.topology.builder import (
    build_deep_hierarchy,
    deep_initial_attachments,
    provision_links,
)

from _common import emit, run_once

DEPTHS = [1, 2, 3, 4]
DURATION = 8_000.0


def run_depth(depth: int) -> dict:
    sim = Simulator(seed=1202)
    fabric = Fabric(sim)
    h = build_deep_hierarchy(n_br=2, ring_size=2, depth=depth,
                             aps_per_ag=1, mhs_per_ap=1)
    provision_links(fabric, h)
    net = RingNet(sim, fabric, h)
    for mh, ap in deep_initial_attachments(h).items():
        net.add_mobile_host(mh, ap)
    checker = OrderChecker(sim.trace)
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=15)
    net.start()
    src.start()
    sim.run(until=DURATION)
    checker.assert_ok()
    peak = max(r["wq_peak"] + r["mq_peak"] for r in net.buffer_reports())
    return {
        "depth": depth,
        "members": len(net.member_hosts()),
        "NEs": len(net.nes),
        "p50 (ms)": round(lat.summary()["p50"], 1),
        "p99 (ms)": round(lat.summary()["p99"], 1),
        "max node buffer": peak,
        "order ok": "yes" if checker.ok else "NO",
    }


def run_sweep() -> list:
    return [run_depth(d) for d in DEPTHS]


@pytest.mark.benchmark(group="x2")
def test_x2_depth_scales_latency_linearly(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("X2 sub-tier rings: population vs latency vs depth", rows,
         "paper: treat each ring as a node and the hierarchy is a tree; "
         "scale by nesting tiers, paying hops linearly")
    assert all(r["order ok"] == "yes" for r in rows)
    p50 = [r["p50 (ms)"] for r in rows]
    members = [r["members"] for r in rows]
    # Population grows geometrically with depth...
    assert members[-1] >= 8 * members[0]
    # ...latency only linearly: bounded increment per added level.
    increments = [b - a for a, b in zip(p50, p50[1:])]
    assert all(inc < 15.0 for inc in increments)
    assert p50[-1] > p50[0]
    # Per-node buffers flat across depths.
    buffers = [r["max node buffer"] for r in rows]
    assert max(buffers) <= min(buffers) + 4
