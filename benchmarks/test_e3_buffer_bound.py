"""E3 — Theorem 5.1 buffer bounds.

Claim: WQ can be sized to s·λ·(max(T_order, T_transmit)+τ) and MQ to
s·λ·T_order.

Lossless links (the bound excludes retransmission) and zero MQ
retention (the bound covers the *backlog*, not the handoff catch-up
reserve, which is a separate engineering choice).  The MQ occupancy in
this implementation additionally includes the in-flight delivery window
awaiting child acknowledgements — the paper's model frees a message on
transmission, ours on acknowledgement — so the MQ check uses a
documented slack of +delivery-window messages.

Expected shape: peaks below bounds; both scale with s·λ.
"""

import pytest

from repro.analysis.bounds import bounds_for
from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import BufferSampler
from repro.net.link import LinkSpec
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

import math

LOSSLESS_WIRED = LinkSpec(latency=2.0, jitter=0.5, loss_prob=0.0)
LOSSLESS_WIRELESS = LinkSpec(latency=5.0, jitter=2.0, loss_prob=0.0)
DURATION = 10_000.0
CELLS = [(1, 20.0), (2, 20.0), (4, 20.0), (4, 50.0), (4, 100.0)]


def run_cell(s: int, lam: float) -> dict:
    cfg = ProtocolConfig(mq_retention=0)
    sim = Simulator(seed=303)
    spec = HierarchySpec(n_br=4, ags_per_br=2, aps_per_ag=1, mhs_per_ap=1)
    net = RingNet.build(sim, spec, cfg=cfg, wired=LOSSLESS_WIRED,
                        wireless=LOSSLESS_WIRELESS)
    sampler = BufferSampler(sim, net.buffer_reports, period=2.0,
                            warmup=2_000.0)
    top = net.hierarchy.top_ring.members
    sources = [net.add_source(corresponding=top[i], rate_per_sec=lam)
               for i in range(s)]
    sampler.start()
    net.start()
    for i, src in enumerate(sources):
        src.start(delay=i * 2.0)
    sim.run(until=DURATION)
    b = bounds_for(cfg, ring_size=4, n_sources=s, rate_per_sec=lam,
                   wired=LOSSLESS_WIRED, wireless=LOSSLESS_WIRELESS,
                   tree_depth=3, lower_ring_size=2)
    wq_peak = sampler.max_wq()
    mq_peak = sampler.max_mq()
    # Discrete-message slack: a fractional bound still admits the one
    # message currently in process per stream; the MQ additionally holds
    # the in-flight delivery window (ack-freed, not transmit-freed).
    wq_limit = math.ceil(b.wq_bound_corrected_msgs) + s
    mq_limit = math.ceil(b.mq_bound_msgs) + cfg.delivery_window
    return {
        "s": s,
        "lambda": lam,
        "wq bound": round(b.wq_bound_msgs, 1),
        "wq limit": wq_limit,
        "wq peak": wq_peak,
        "mq bound": round(b.mq_bound_msgs, 1),
        "mq limit": mq_limit,
        "mq peak": mq_peak,
        "holds": "yes" if (wq_peak <= wq_limit and mq_peak <= mq_limit)
                  else "NO",
    }


def run_sweep() -> list:
    return [run_cell(s, lam) for s, lam in CELLS]


@pytest.mark.benchmark(group="e3")
def test_e3_buffers_within_bound(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit("E3 Theorem 5.1 buffer bounds: WQ <= s*lam*(max(To,Tt)+tau), "
         "MQ <= s*lam*To (+delivery window)",
         rows,
         "paper: 'all the buffers only need limited sizes'; limits add\n"
         "discrete-message and ack-window slack (documented in "
         "EXPERIMENTS.md)")
    assert all(r["holds"] == "yes" for r in rows)
    # Shape: peaks scale with s*lambda.
    assert rows[-1]["wq peak"] >= rows[0]["wq peak"]
