"""A1 — parameter ablations for the design choices DESIGN.md calls out.

Not from the paper's evaluation; these quantify the sensitivity of the
implementation's three main knobs:

* **τ (Order-Assignment period)** — CPU/latency trade: each message
  waits on average τ/2 for the periodic scan after its token entry
  lands, so median latency should rise ~linearly with τ at constant
  throughput.
* **delivery window** — per-child memory/goodput trade: a window of 1
  (stop-and-wait per child) throttles delivery below the source rate;
  windows ≥ 8 reach wire speed at these rates.
* **MQ retention** — AP memory vs handoff catch-up: retention 0 means a
  handed-off MH can never catch up from the new AP's buffer and must
  tombstone; generous retention makes handoffs lossless.
"""

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.metrics.collectors import LatencyCollector, ThroughputCollector
from repro.metrics.order_checker import OrderChecker
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec

from _common import emit, run_once

SPEC = HierarchySpec(n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1)
DURATION = 8_000.0


def tau_cell(tau: float) -> dict:
    sim = Simulator(seed=111)
    net = RingNet.build(sim, SPEC, cfg=ProtocolConfig(tau=tau))
    lat = LatencyCollector(sim.trace, warmup=2_000.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=20)
    net.start()
    src.start()
    sim.run(until=DURATION)
    return {"knob": "tau", "value": tau,
            "p50 latency (ms)": round(lat.summary()["p50"], 1),
            "detail": ""}


def window_cell(window: int) -> dict:
    # 200 msg/s (5 ms cadence) < the ~12 ms per-child ack RTT, so
    # stop-and-wait (window 1) cannot keep up.
    sim = Simulator(seed=112)
    net = RingNet.build(sim, SPEC,
                        cfg=ProtocolConfig(delivery_window=window))
    thr = ThroughputCollector(sim.trace)
    src = net.add_source(corresponding="br:0", rate_per_sec=200)
    net.start()
    src.start()
    sim.run(until=DURATION)
    goodput = thr.goodput(2_000.0, DURATION)
    return {"knob": "delivery_window", "value": window,
            "p50 latency (ms)": float("nan"),
            "detail": f"goodput {goodput:.1f}/200 msg/s"}


def retention_cell(retention: int) -> dict:
    sim = Simulator(seed=113)
    net = RingNet.build(sim, SPEC,
                        cfg=ProtocolConfig(mq_retention=retention,
                                           smooth_handoff=False))
    checker = OrderChecker(sim.trace)
    # Fast stream so messages land inside each handoff's detach→register
    # window; with no retention the new AP has already pruned them.
    src = net.add_source(corresponding="br:0", rate_per_sec=200)
    net.start()
    src.start()
    for k in range(6):
        sim.schedule_at(2_000 + 700 * k, net.handoff, "mh:0.0.0.0",
                        ["ap:1.0.0", "ap:0.0.0"][k % 2])
    sim.run(until=DURATION)
    checker.assert_ok()
    mh = net.mobile_hosts["mh:0.0.0.0"]
    return {"knob": "mq_retention", "value": retention,
            "p50 latency (ms)": float("nan"),
            "detail": f"tombstones {mh.tombstones}, "
                      f"delivered {mh.delivered_count}"}


def run_all() -> list:
    rows = [tau_cell(t) for t in (1.0, 5.0, 20.0, 40.0)]
    rows += [window_cell(w) for w in (1, 4, 16)]
    rows += [retention_cell(r) for r in (0, 8, 256)]
    return rows


@pytest.mark.benchmark(group="a1")
def test_a1_parameter_ablations(benchmark):
    rows = run_once(benchmark, run_all)
    emit("A1 design-choice ablations (tau / delivery window / retention)",
         rows)
    taus = {r["value"]: r["p50 latency (ms)"] for r in rows
            if r["knob"] == "tau"}
    # Latency rises with tau, roughly +tau/2 at the median.
    assert taus[1.0] < taus[20.0] < taus[40.0]
    assert taus[40.0] - taus[1.0] > 10.0
    # Window 1 starves goodput; window >= 16 keeps up at 200 msg/s.
    win = {r["value"]: r["detail"] for r in rows
           if r["knob"] == "delivery_window"}
    w1 = float(win[1].split()[1].split("/")[0])
    w16 = float(win[16].split()[1].split("/")[0])
    assert w1 < 0.9 * 200.0
    assert w16 > 0.95 * 200.0
    # Zero retention forces tombstones on handoff; generous retention
    # keeps handoffs lossless.
    ret = {r["value"]: r["detail"] for r in rows
           if r["knob"] == "mq_retention"}
    t0 = int(ret[0].split()[1].rstrip(","))
    t256 = int(ret[256].split()[1].rstrip(","))
    assert t0 > 0
    assert t256 == 0