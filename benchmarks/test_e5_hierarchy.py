"""E5 — Figure 1: hierarchy construction, self-organization, and churn.

The paper's only figure is the RingNet hierarchy itself.  This
experiment (a) builds spec-driven hierarchies at three scales and
validates every structural invariant (top ring, leader-parent wiring,
candidate tables), and (b) runs membership churn (joins/leaves) with
traffic to show the hierarchy keeps delivering a consistent total order
while members come and go — with the batched-update saving reported.
"""

import pytest

from repro.core.protocol import RingNet
from repro.membership.protocol import MembershipService
from repro.metrics.order_checker import OrderChecker
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec, build_hierarchy
from repro.topology.tiers import Tier
from repro.workloads.churn import ChurnDriver

from _common import emit, run_once

SCALES = [
    HierarchySpec(n_br=2, ags_per_br=2, aps_per_ag=2, mhs_per_ap=1),
    HierarchySpec(n_br=3, ags_per_br=3, aps_per_ag=2, mhs_per_ap=2),
    HierarchySpec(n_br=5, ags_per_br=3, aps_per_ag=3, mhs_per_ap=2),
]


def structure_rows() -> list:
    rows = []
    for spec in SCALES:
        h = build_hierarchy(spec)
        h.validate()
        rows.append({
            "BRs": spec.n_br,
            "AGs": spec.n_ag,
            "APs": spec.n_ap,
            "MHs": spec.n_mh,
            "rings": len(h.rings),
            "top ring": h.top_ring.size,
            "valid": "yes",
        })
    return rows


def churn_run() -> dict:
    sim = Simulator(seed=505)
    net = RingNet.build(sim, SCALES[1])
    checker = OrderChecker(sim.trace)
    svc = MembershipService(net.cfg.gid, sim.trace, batch_interval=100.0)
    src = net.add_source(corresponding="br:0", rate_per_sec=15)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    churn = ChurnDriver(net, aps, mean_interval_ms=250.0, min_members=4)
    net.start()
    src.start()
    churn.start()
    sim.run(until=12_000)
    churn.stop()
    src.stop()
    sim.run(until=16_000)
    checker.assert_ok()
    svc.flush_batches()
    return {
        "joins": churn.joins,
        "leaves": churn.leaves,
        "final members": len(net.member_hosts()),
        "deliveries checked": checker.deliveries_checked,
        "order violations": checker.violation_count,
        "events": svc.updates_without_batching(),
        "batched updates": svc.updates_with_batching(),
    }


@pytest.mark.benchmark(group="e5")
def test_e5_hierarchy_and_churn(benchmark):
    def run():
        return structure_rows(), churn_run()

    s_rows, churn = run_once(benchmark, run)
    emit("E5 Figure 1: hierarchy structure at three scales", s_rows)
    emit("E5 churn: totally-ordered delivery under joins/leaves",
         [churn],
         "paper: membership propagates to the top leader; batching cuts "
         "update traffic")
    assert all(r["valid"] == "yes" for r in s_rows)
    assert churn["order violations"] == 0
    assert churn["joins"] > 10
    assert churn["batched updates"] < churn["events"]
