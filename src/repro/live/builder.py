"""Build a live network service from an :class:`ExperimentSpec`.

:class:`NetworkBuilder` is the config-driven entry point: hand it the
same declarative spec the sim runs (any registry scenario), pick a
fabric, and it instantiates the BR/AG/AP/MH tiers, the workload fleet,
mobility/churn/open-world drivers, and (optionally) the full
:mod:`repro.validation` monitor suite attached to the live trace
stream — then :meth:`NetworkBuilder.build` hands back a
:class:`LiveRun` ready to ``run()`` in wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.experiments.spec import ExperimentSpec
from repro.live.fabric import QueueFabric, UdpFabric
from repro.live.loadgen import LoadGenerator
from repro.live.runtime import LiveRuntime
from repro.metrics.collectors import LatencyCollector, ThroughputCollector
from repro.metrics.order_checker import OrderChecker
from repro.workloads.scenarios import Scenario

FABRICS = ("queue", "udp")


@dataclass
class LiveRun:
    """One built live service: runtime + scenario + instrumentation."""

    runtime: LiveRuntime
    scenario: Scenario
    fabric_kind: str
    loadgen: LoadGenerator
    latency: LatencyCollector
    throughput: ThroughputCollector
    order: Optional[OrderChecker] = None
    suite: Optional[object] = None  # MonitorSuite when monitors attached
    spec: Optional[ExperimentSpec] = None

    def run(self) -> None:
        """Execute the scenario for its spec duration, in wall time."""
        self.scenario.run()
        if self.suite is not None:
            self.suite.finish(net=self.scenario.net,
                              end_time=self.runtime.now)

    def violations(self) -> list:
        """Monitor violations (empty when no suite was attached)."""
        return [] if self.suite is None else self.suite.all_violations()

    def report(self) -> Dict[str, object]:
        """Machine-readable run summary (metrics + loop health)."""
        spec = self.spec
        t0 = spec.warmup_ms if spec is not None else 0.0
        t1 = spec.duration_ms if spec is not None else self.runtime.now
        net = self.scenario.net
        return {
            "backend": "live",
            "fabric": self.fabric_kind,
            "name": spec.name if spec is not None else "",
            "seed": self.runtime.seed,
            "duration_ms": t1,
            "sent": self.scenario.fleet.total_sent,
            "delivered": net.total_app_deliveries(),
            "goodput": self.throughput.goodput(t0, t1),
            "sent_rate": self.throughput.sent_rate(t0, t1),
            "latency": self.latency.summary(),
            "order_violations": (self.order.violation_count
                                 if self.order is not None else 0),
            "monitor_violations": self.violations(),
            "loadgen": self.loadgen.report(),
            "lag": self.runtime.lag_report(),
        }

    def obs_report(self) -> Dict[str, object]:
        """``OBS_*``-style run report readable by ``python -m repro.obs``.

        The live loop's lag/drift accounting becomes registry gauges
        (``live.max_lag_ms``, ``live.mean_lag_ms``, ...) next to any
        counters protocol code accumulated through ``runtime.obs``, so
        ``repro.obs summarize`` works on live-run telemetry the same
        way it does on sim runs.
        """
        from repro.obs.registry import MetricsRegistry  # lazy: optional
        from repro.obs.session import OBS_SCHEMA

        reg = self.runtime.obs
        if reg is None:
            reg = MetricsRegistry()
        lag = self.runtime.lag_report()
        reg.set_gauge("live.max_lag_ms", lag["max_lag_ms"])
        reg.set_gauge("live.mean_lag_ms", lag["mean_lag_ms"])
        reg.set_gauge("live.time_scale", lag["time_scale"])
        reg.set_gauge("live.events", lag["events"])
        spec = self.spec
        return {
            "schema": OBS_SCHEMA,
            "name": spec.name if spec is not None else "live",
            "backend": "live",
            "fabric": self.fabric_kind,
            "horizon_ms": (spec.duration_ms if spec is not None
                           else self.runtime.now),
            "window_ms": 0.0,
            "windows": 0,
            "events": self.runtime.events_processed,
            "registry": reg.snapshot(),
        }


class NetworkBuilder:
    """Instantiate the protocol tiers from a spec, live.

    Parameters
    ----------
    spec:
        Any :class:`ExperimentSpec` with ``system == "ringnet"``.
    fabric:
        ``"queue"`` (in-process asyncio queues) or ``"udp"`` (loopback
        sockets).  UDP requires a static population — no open-world
        arrivals.
    time_scale:
        Wall seconds per logical second (see :class:`LiveRuntime`).
    monitors:
        Attach the standard :mod:`repro.validation` suite to the live
        trace stream (before construction, so build-time joins are
        observed).
    """

    def __init__(self, spec: ExperimentSpec, fabric: str = "queue",
                 time_scale: float = 1.0, monitors: bool = False):
        if fabric not in FABRICS:
            raise ValueError(
                f"unknown fabric {fabric!r}; choose from {FABRICS}")
        if spec.system != "ringnet":
            raise ValueError(
                f"the live backend runs the ringnet system, "
                f"not {spec.system!r}")
        self.spec = spec
        self.fabric_kind = fabric
        self.time_scale = time_scale
        self.monitors = monitors

    def build(self) -> LiveRun:
        """Construct runtime, fabric, tiers, workload, and monitors."""
        # Lazy: runner imports a wide slice of the repo.
        from repro.experiments.runner import build_scenario
        from repro.validation.suite import standard_suite

        spec = self.spec
        runtime = LiveRuntime(seed=spec.seed, time_scale=self.time_scale)
        # Give the live loop a metrics registry up front: protocol code
        # reaches it through ``sim.obs`` exactly as under an ObsSession,
        # and obs_report() folds the lag gauges in after the run.
        from repro.obs.registry import MetricsRegistry  # lazy: optional
        runtime.obs = MetricsRegistry()
        suite = None
        if self.monitors:
            suite = standard_suite(spec.system)
            suite.attach(runtime.trace)
            # The suite already carries the total-order checker; reuse
            # it rather than double-subscribing a second one.
            order = next((m for m in suite if m.name == "total_order"),
                         None)
        else:
            order = OrderChecker(runtime.trace)
        # Collectors subscribe before construction too, mirroring
        # observed_scenario's ordering rule.
        latency = LatencyCollector(runtime.trace, warmup=spec.warmup_ms)
        throughput = ThroughputCollector(runtime.trace)
        if self.fabric_kind == "udp":
            fabric = UdpFabric(runtime)
        else:
            fabric = QueueFabric(runtime)
        scenario = build_scenario(spec, sim=runtime, fabric=fabric)
        return LiveRun(runtime=runtime, scenario=scenario,
                       fabric_kind=self.fabric_kind,
                       loadgen=LoadGenerator(scenario, runtime),
                       latency=latency, throughput=throughput,
                       order=order, suite=suite, spec=spec)
