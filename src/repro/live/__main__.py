"""CLI for the live backend.

Usage::

    python -m repro.live run quickstart --fabric queue --time-scale 0.2
    python -m repro.live run quickstart --fabric udp --duration 1500
    python -m repro.live diff quickstart --out diff-report.json
    python -m repro.live udp-smoke

``run`` executes a registry scenario on the wall-clock backend with
validation monitors attached; ``diff`` runs the sim-vs-live
differential harness; ``udp-smoke`` is the loopback socket round-trip
check CI gates on.

The ``REPRO_LIVE_DURATION_MS`` environment variable overrides every
duration (the CI hook, mirroring ``REPRO_EXAMPLE_DURATION_MS`` in the
examples); ``--duration`` wins over both.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.experiments import registry

ENV_DURATION = "REPRO_LIVE_DURATION_MS"


def _resolve_spec(name: str, duration: Optional[float], seed: Optional[int]):
    overrides = {}
    env = os.environ.get(ENV_DURATION)
    if duration is None and env is not None:
        duration = float(env)
    if duration is not None:
        overrides["duration_ms"] = duration
        if registry.entry(name).factory().warmup_ms >= duration:
            overrides["warmup_ms"] = 0.0
    if seed is not None:
        overrides["seed"] = seed
    return registry.get(name, **overrides)


def _write_out(payload: dict, out: Optional[str], quiet: bool) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True, default=list)
    if out:
        with open(out, "w") as fh:
            fh.write(text + "\n")
        if not quiet:
            print(f"report written to {out}")
    elif not quiet:
        print(text)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.live.builder import NetworkBuilder

    spec = _resolve_spec(args.scenario, args.duration, args.seed)
    builder = NetworkBuilder(spec, fabric=args.fabric,
                             time_scale=args.time_scale,
                             monitors=not args.no_monitors)
    run = builder.build()
    if not args.quiet:
        n_nodes = len(run.scenario.net.fabric.nodes)
        print(f"live run: {spec.name} fabric={args.fabric} "
              f"nodes={n_nodes} duration={spec.duration_ms:.0f}ms "
              f"time_scale={args.time_scale}")
    run.run()
    report = run.report()
    _write_out(report, args.out, args.quiet)
    if args.obs is not None:
        from repro.obs.session import write_artifacts
        paths = write_artifacts(run.obs_report(), [], out_dir=args.obs,
                                name=spec.name)
        if not args.quiet:
            print(f"obs report written to {paths['report']}")
    violations = report["monitor_violations"]
    order = report["order_violations"]
    if not args.quiet:
        print(f"delivered={report['delivered']} "
              f"goodput={report['goodput']:.2f}/s "
              f"p50={report['latency'].get('p50', 0.0):.1f}ms "
              f"max_lag={report['lag']['max_lag_ms']:.1f}ms")
        for v in violations:
            print(f"VIOLATION: {v}", file=sys.stderr)
    if violations or order:
        print(f"FAIL: {len(violations)} monitor violation(s), "
              f"{order} order violation(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print("ok: zero violations")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.live.diff import diff_spec

    spec = _resolve_spec(args.scenario, args.duration, args.seed)
    tolerances = {}
    if args.latency_rel is not None:
        tolerances["latency_rel"] = args.latency_rel
    if args.rate_rel is not None:
        tolerances["rate_rel"] = args.rate_rel
    report = diff_spec(spec, fabric=args.fabric,
                       time_scale=args.time_scale,
                       tolerances=tolerances or None)
    # The per-MH delivery logs make reports huge; groups carry the
    # verdicts, so the raw sequences stay out of the artifact.
    _write_out(report, args.out, args.quiet)
    if not args.quiet:
        worst = min((g["agreement"] for g in report["groups"]), default=1.0)
        print(f"diff {spec.name}: envelopes "
              f"{sum(e['ok'] for e in report['envelopes'])}"
              f"/{len(report['envelopes'])} ok, "
              f"worst group agreement {worst:.3f}")
        for env in report["envelopes"]:
            flag = "ok " if env["ok"] else "FAIL"
            print(f"  [{flag}] {env['metric']}: sim={env['sim']:.3f} "
                  f"live={env['live']:.3f} (limit ±{env['limit']:.3f})")
        delta = (report.get("span_stages") or {}).get("delta")
        if delta:
            from repro.obs.critpath import render_stage_delta
            print("per-stage latency attribution (live vs sim):")
            print(render_stage_delta(delta, "live", "sim"))
    if not report["ok"]:
        print("FAIL: sim and live disagree beyond tolerance",
              file=sys.stderr)
        return 1
    if not args.quiet:
        print("ok: sim and live agree within tolerance")
    return 0


def cmd_udp_smoke(args: argparse.Namespace) -> int:
    from repro.live.builder import NetworkBuilder

    spec = _resolve_spec("quickstart", args.duration, None)
    builder = NetworkBuilder(spec, fabric="udp",
                             time_scale=args.time_scale, monitors=False)
    run = builder.build()
    run.run()
    fabric = run.scenario.net.fabric
    delivered = run.scenario.net.total_app_deliveries()
    if not args.quiet:
        print(f"udp-smoke: {fabric.messages_delivered} fabric deliveries, "
              f"{delivered} app deliveries, "
              f"{fabric.bytes_on_wire} bytes on the wire, "
              f"{run.report()['order_violations']} order violations")
    if fabric.messages_delivered == 0 or delivered == 0:
        print("FAIL: no traffic crossed the loopback", file=sys.stderr)
        return 1
    if not args.quiet:
        print("ok: loopback UDP round trips verified")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="wall-clock asyncio backend for the protocol stack")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, scenario: bool = True) -> None:
        if scenario:
            p.add_argument("scenario", help="registry scenario name")
            p.add_argument("--seed", type=int, default=None)
        p.add_argument("--duration", type=float, default=None, metavar="MS",
                       help=f"override duration_ms (or set {ENV_DURATION})")
        p.add_argument("--time-scale", type=float, default=1.0,
                       help="wall seconds per logical second "
                            "(default 1.0 = real time)")
        p.add_argument("--out", default=None, metavar="FILE",
                       help="write the JSON report here")
        p.add_argument("--quiet", action="store_true")

    p = sub.add_parser("run", help="run a scenario live, with monitors")
    common(p)
    p.add_argument("--fabric", choices=("queue", "udp"), default="queue")
    p.add_argument("--no-monitors", action="store_true",
                   help="skip the validation monitor suite")
    p.add_argument("--obs", nargs="?", const=".", default=None,
                   metavar="DIR",
                   help="write an OBS_<name>.json run report (lag "
                        "accounting as gauges, protocol counters) to DIR "
                        "for python -m repro.obs summarize")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("diff", help="sim-vs-live differential harness")
    common(p)
    p.add_argument("--fabric", choices=("queue", "udp"), default="queue")
    p.add_argument("--latency-rel", type=float, default=None,
                   help="relative latency tolerance band")
    p.add_argument("--rate-rel", type=float, default=None,
                   help="relative goodput/sent-rate tolerance band")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("udp-smoke",
                       help="loopback UDP round-trip check (quickstart)")
    common(p, scenario=False)
    p.set_defaults(fn=cmd_udp_smoke)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
