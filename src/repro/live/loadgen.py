"""Wall-time load generation over the existing workload fleets.

The workload machinery (:class:`~repro.workloads.generators.SourceFleet`
and the mobility/churn/open-world drivers) schedules everything through
the runtime seam, so it drives a live run unmodified — the generators
*are* the load generator.  :class:`LoadGenerator` adds the service-side
accounting a wall-clock run wants: offered vs achieved rate, live
progress sampling, and a machine-readable report.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.live.runtime import LiveRuntime
from repro.workloads.scenarios import Scenario


class LoadGenerator:
    """Live accounting for a scenario's traffic fleet.

    Samples cumulative sends on a periodic runtime timer (so samples
    are on the logical clock, comparable across time scales) and
    reports offered rate, achieved rate, and wall-clock efficiency.
    """

    def __init__(self, scenario: Scenario, runtime: LiveRuntime,
                 sample_ms: float = 250.0):
        self.scenario = scenario
        self.runtime = runtime
        self.samples: List[Dict[str, float]] = []
        self._wall_start = time.perf_counter()
        runtime.schedule(sample_ms, self._sample, sample_ms, owner=None)

    def _sample(self, period: float) -> None:
        self.samples.append({
            "t_ms": self.runtime.now,
            "sent": self.scenario.fleet.total_sent,
            "wall_s": time.perf_counter() - self._wall_start,
        })
        self.runtime.schedule(period, self._sample, period, owner=None)

    @property
    def offered_rate_per_sec(self) -> float:
        """The fleet's configured aggregate rate (s·λ)."""
        return self.scenario.fleet.aggregate_rate_per_sec

    def achieved_rate_per_sec(self) -> float:
        """Messages actually emitted per logical second so far."""
        t = self.runtime.now
        if t <= 0:
            return 0.0
        return self.scenario.fleet.total_sent / (t / 1000.0)

    def report(self) -> Dict[str, object]:
        return {
            "offered_rate_per_sec": self.offered_rate_per_sec,
            "achieved_rate_per_sec": round(self.achieved_rate_per_sec(), 3),
            "total_sent": self.scenario.fleet.total_sent,
            "samples": len(self.samples),
        }
