"""Sim-vs-live differential harness (``python -m repro.live diff``).

Run the same spec — same seed-derived workload — once on the
discrete-event engine and once on the live asyncio backend, then
compare:

* **per-group delivery order**: messages are identified by
  ``(source, local_seq)``; for every MH the harness takes the messages
  delivered in *both* runs and measures order agreement as
  ``1 − inversions / pairs`` (Kendall-style).  Concurrent messages may
  legitimately order differently across backends — total order is a
  *within*-run guarantee — so agreement is a band, not an equality.
* **delivered-set overlap** per MH (horizon-edge effects trim a few
  tail messages on either side).
* **metric envelopes**: latency mean/p50/p95, goodput, and sent rate
  within relative tolerance plus an absolute floor.
* **conformance**: zero order violations in both runs, zero monitor
  violations in the live run.

The result is a machine-readable report whose shape is pinned by the
committed schema fixture ``tests/data/live_diff_report.schema.json``
(validated by :func:`validate_report` — a dependency-free structural
checker, not a full JSON-Schema engine).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.spec import ExperimentSpec
from repro.metrics.collectors import LatencyCollector, ThroughputCollector
from repro.metrics.order_checker import OrderChecker
from repro.sim.trace import TraceBus, TraceRecord

#: Default tolerance bands.
DEFAULT_TOLERANCES = {
    "latency_rel": 0.35,       # relative band on latency stats
    "latency_abs_ms": 20.0,    # absolute floor (live adds loop lag)
    "rate_rel": 0.25,          # goodput / sent-rate band
    "order_agreement_min": 0.95,
    "overlap_min": 0.85,
}


class DeliveryLog:
    """Per-MH delivery sequences keyed by message identity.

    Subscribes to ``mh.deliver`` and records, per MH, the ordered list
    of ``(source, local_seq)`` identities — the cross-backend-stable
    message names (gseq numbering is an artifact of each run's token
    arrival order).
    """

    def __init__(self, trace: TraceBus):
        self.by_mh: Dict[str, List[Tuple[str, int]]] = {}
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_deliver(self, rec: TraceRecord) -> None:
        key = (rec["source"], rec["local_seq"])
        self.by_mh.setdefault(rec["mh"], []).append(key)


def _count_inversions(order: List[int]) -> int:
    """Number of out-of-order pairs, by merge sort (O(n log n))."""
    n = len(order)
    if n < 2:
        return 0
    work = list(order)
    buf = [0] * n
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if work[i] <= work[j]:
                    buf[k] = work[i]
                    i += 1
                else:
                    buf[k] = work[j]
                    j += 1
                    inversions += mid - i
                k += 1
            buf[k:hi] = work[i:mid] if i < mid else work[j:hi]
            work[lo:hi] = buf[lo:hi]
        width *= 2
    return inversions


def order_agreement(sim_seq: List[Tuple[str, int]],
                    live_seq: List[Tuple[str, int]]) -> Tuple[float, int, int]:
    """Agreement between two delivery sequences on their common set.

    Returns ``(agreement, common, inversions)`` where agreement is
    ``1 − inversions/pairs`` over the messages present in both
    sequences (1.0 when fewer than two are common).
    """
    live_index = {key: i for i, key in enumerate(live_seq)}
    common = [live_index[key] for key in sim_seq if key in live_index]
    m = len(common)
    pairs = m * (m - 1) // 2
    if pairs == 0:
        return 1.0, m, 0
    inversions = _count_inversions(common)
    return 1.0 - inversions / pairs, m, inversions


# ----------------------------------------------------------------------
# The two runs
# ----------------------------------------------------------------------
def _span_stage_means(events) -> Dict[str, float]:
    from repro.obs.critpath import critpath_summary, stage_means
    from repro.obs.spans import assemble

    return stage_means(critpath_summary(assemble(events)))


def _run_sim(spec: ExperimentSpec) -> Dict[str, Any]:
    from repro.experiments.runner import build_scenario
    from repro.obs.spans import SpanCollector
    from repro.sim.engine import Simulator

    sim = Simulator(seed=spec.seed)
    log = DeliveryLog(sim.trace)
    latency = LatencyCollector(sim.trace, warmup=spec.warmup_ms)
    throughput = ThroughputCollector(sim.trace)
    order = OrderChecker(sim.trace)
    spans = SpanCollector()
    spans.attach(sim.trace, sim=sim)
    scenario = build_scenario(spec, sim=sim)
    scenario.run()
    spans.detach()
    t0, t1 = spec.warmup_ms, spec.duration_ms
    return {
        "backend": "sim",
        "sent": scenario.fleet.total_sent,
        "delivered": scenario.net.total_app_deliveries(),
        "goodput": throughput.goodput(t0, t1),
        "sent_rate": throughput.sent_rate(t0, t1),
        "latency": latency.summary(),
        "order_violations": order.violation_count,
        "deliveries": log.by_mh,
        "span_stages": _span_stage_means(spans.events),
    }


def _run_live(spec: ExperimentSpec, fabric: str = "queue",
              time_scale: float = 1.0) -> Dict[str, Any]:
    from repro.live.builder import NetworkBuilder
    from repro.obs.spans import SpanCollector

    builder = NetworkBuilder(spec, fabric=fabric, time_scale=time_scale,
                             monitors=True)
    run = builder.build()
    log = DeliveryLog(run.runtime.trace)
    spans = SpanCollector()
    spans.attach(run.runtime.trace, sim=run.runtime)
    run.run()
    spans.detach()
    report = run.report()
    report["deliveries"] = log.by_mh
    report["span_stages"] = _span_stage_means(spans.events)
    return report


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _envelope(metric: str, sim_value: float, live_value: float,
              rel: float, abs_floor: float = 0.0) -> Dict[str, Any]:
    diff = abs(live_value - sim_value)
    limit = max(abs(sim_value) * rel, abs_floor)
    return {
        "metric": metric,
        "sim": round(float(sim_value), 6),
        "live": round(float(live_value), 6),
        "abs_diff": round(float(diff), 6),
        "limit": round(float(limit), 6),
        "ok": bool(diff <= limit),
    }


def diff_spec(spec: ExperimentSpec, fabric: str = "queue",
              time_scale: float = 1.0,
              tolerances: Optional[Dict[str, float]] = None) -> Dict[str, Any]:
    """Run ``spec`` in sim and live and compare; returns the report."""
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol.update(tolerances)

    sim = _run_sim(spec)
    live = _run_live(spec, fabric=fabric, time_scale=time_scale)

    # Per-group (per-MH) order agreement on the common delivered set.
    groups = []
    mhs = sorted(set(sim["deliveries"]) | set(live["deliveries"]))
    for mh in mhs:
        s = sim["deliveries"].get(mh, [])
        l = live["deliveries"].get(mh, [])
        agreement, common, inversions = order_agreement(s, l)
        overlap = common / max(len(s), len(l)) if (s or l) else 1.0
        groups.append({
            "mh": mh,
            "sim_delivered": len(s),
            "live_delivered": len(l),
            "common": common,
            "inversions": inversions,
            "agreement": round(agreement, 6),
            "overlap": round(overlap, 6),
            "ok": bool(agreement >= tol["order_agreement_min"]
                       and overlap >= tol["overlap_min"]),
        })

    envelopes = [
        _envelope("latency.mean", sim["latency"].get("mean", 0.0),
                  live["latency"].get("mean", 0.0),
                  tol["latency_rel"], tol["latency_abs_ms"]),
        _envelope("latency.p50", sim["latency"].get("p50", 0.0),
                  live["latency"].get("p50", 0.0),
                  tol["latency_rel"], tol["latency_abs_ms"]),
        _envelope("latency.p95", sim["latency"].get("p95", 0.0),
                  live["latency"].get("p95", 0.0),
                  tol["latency_rel"], tol["latency_abs_ms"]),
        _envelope("goodput", sim["goodput"], live["goodput"],
                  tol["rate_rel"]),
        _envelope("sent_rate", sim["sent_rate"], live["sent_rate"],
                  tol["rate_rel"]),
    ]

    # Per-stage latency attribution on both backends (informational —
    # the verdict comes from envelopes/groups, but when an envelope
    # fails this names the stage the divergence lives in).
    from repro.obs.critpath import stage_delta
    span_stages = {
        "sim": sim.get("span_stages") or {},
        "live": live.get("span_stages") or {},
        "delta": stage_delta(live.get("span_stages") or {},
                             sim.get("span_stages") or {}),
    }

    conformance = {
        "sim_order_violations": sim["order_violations"],
        "live_order_violations": live["order_violations"],
        "live_monitor_violations": list(live.get("monitor_violations", [])),
    }
    ok = (all(g["ok"] for g in groups)
          and all(e["ok"] for e in envelopes)
          and conformance["sim_order_violations"] == 0
          and conformance["live_order_violations"] == 0
          and not conformance["live_monitor_violations"])

    return {
        "kind": "live_diff_report",
        "name": spec.name,
        "seed": spec.seed,
        "duration_ms": spec.duration_ms,
        "fabric": fabric,
        "time_scale": time_scale,
        "tolerances": tol,
        "sim": {k: sim[k] for k in
                ("sent", "delivered", "goodput", "sent_rate", "latency",
                 "order_violations")},
        "live": {k: live[k] for k in
                 ("sent", "delivered", "goodput", "sent_rate", "latency",
                  "order_violations", "lag")},
        "groups": groups,
        "envelopes": envelopes,
        "span_stages": span_stages,
        "conformance": conformance,
        "ok": bool(ok),
    }


# ----------------------------------------------------------------------
# Report schema validation (dependency-free structural check)
# ----------------------------------------------------------------------
_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate_report(report: Any, schema: Dict[str, Any],
                    path: str = "$") -> List[str]:
    """Check ``report`` against a minimal JSON-Schema-style ``schema``.

    Supports the subset the committed fixture uses: ``type``,
    ``required``, ``properties``, and ``items``.  Returns a list of
    human-readable problems (empty = valid).
    """
    problems: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        py = _TYPES[expected]
        if expected == "number" and isinstance(report, bool):
            problems.append(f"{path}: expected number, got bool")
            return problems
        if not isinstance(report, py) or (
                expected == "integer" and isinstance(report, bool)):
            problems.append(
                f"{path}: expected {expected}, got {type(report).__name__}")
            return problems
    if isinstance(report, dict):
        for key in schema.get("required", ()):
            if key not in report:
                problems.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in report:
                problems.extend(
                    validate_report(report[key], sub, f"{path}.{key}"))
    if isinstance(report, list) and "items" in schema:
        for i, item in enumerate(report):
            problems.extend(
                validate_report(item, schema["items"], f"{path}[{i}]"))
    return problems
