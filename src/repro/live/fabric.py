"""Live transmission substrates: asyncio queues and UDP sockets.

Both fabrics inherit the full link model from
:class:`~repro.net.fabric.Fabric` — link lookup, fault overlay, loss
and jitter draws, bandwidth delay — and override only the dispatch
point, so a live run models exactly the network the sim modelled and
then adds a real data path on top:

* :class:`QueueFabric` — each node owns an ``asyncio.Queue`` rx queue
  drained by a pump task; the arrival deadline rides along with the
  message, so deliveries execute with the same logical timestamps the
  sim would assign.  The single-host multi-tier configuration.
* :class:`UdpFabric` — each node binds a real UDP socket on the
  loopback; messages are pickled onto the wire after their modelled
  link delay and delivered when the peer's socket actually receives
  them.  Real kernel scheduling, real serialization, real reordering.
"""

from __future__ import annotations

import asyncio
import pickle
from typing import Dict, Optional, Tuple

from repro.live.runtime import LiveRuntime
from repro.net.address import NodeId
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec
from repro.net.message import Message
from repro.net.node import NetNode


class QueueFabric(Fabric):
    """In-process fabric: per-node ``asyncio.Queue`` rx queues.

    The send path computes the modelled delay as usual; at the arrival
    deadline the message is enqueued on the destination's rx queue, and
    that node's pump task re-injects it into the deadline heap at the
    arrival time — so deliveries execute with the same logical
    timestamps the sim would assign, while the data still flows through
    real asyncio machinery.
    """

    def __init__(self, runtime: LiveRuntime,
                 default_spec: Optional[LinkSpec] = None):
        super().__init__(runtime, default_spec)
        self._queues: Dict[NodeId, asyncio.Queue] = {}
        self._pumps: Dict[NodeId, asyncio.Task] = {}
        self._running = False
        runtime.add_service(self)

    # -- Fabric overrides ----------------------------------------------
    def register(self, node: NetNode) -> None:
        super().register(node)
        if self._running:
            # Nodes materialized mid-run (catchment activation) get
            # their rx pump immediately.
            self._ensure_pump(node.id)

    def _dispatch(self, dst: NodeId, msg: Message, delay: float) -> None:
        self.sim.schedule(delay, self._enqueue, dst, msg, owner=dst)

    def _enqueue(self, dst: NodeId, msg: Message) -> None:
        queue = self._queues.get(dst)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[dst] = queue
        queue.put_nowait((self.sim.now, msg))

    # -- service lifecycle ---------------------------------------------
    async def start(self) -> None:
        self._running = True
        for node_id in list(self.nodes):
            self._ensure_pump(node_id)

    async def stop(self) -> None:
        self._running = False
        # Drain anything already enqueued before tearing the pumps down,
        # so messages in flight at the horizon are not silently lost.
        for node_id, queue in self._queues.items():
            while not queue.empty():
                at, msg = queue.get_nowait()
                self.sim.run_inline(node_id, at, self._arrive, node_id, msg)
        for task in self._pumps.values():
            task.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps.values(),
                                 return_exceptions=True)
        self._pumps.clear()

    def _ensure_pump(self, node_id: NodeId) -> None:
        if node_id in self._pumps:
            return
        queue = self._queues.get(node_id)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[node_id] = queue
        self._pumps[node_id] = asyncio.get_running_loop().create_task(
            self._pump(node_id, queue))

    async def _pump(self, node_id: NodeId, queue: asyncio.Queue) -> None:
        while True:
            at, msg = await queue.get()
            # Re-inject through the deadline heap rather than calling
            # _arrive inline: the arrival then interleaves with other
            # work at the same logical time in deterministic heap
            # order, instead of landing wherever the pump task happened
            # to get scheduled.
            self.sim.schedule_at(at, self._arrive, node_id, msg,
                                 owner=node_id)


class _UdpEndpoint(asyncio.DatagramProtocol):
    """One node's receive protocol: unpickle and deliver inline."""

    def __init__(self, fabric: "UdpFabric", node_id: NodeId):
        self.fabric = fabric
        self.node_id = node_id

    def datagram_received(self, data: bytes, addr) -> None:
        msg = pickle.loads(data)
        rt: LiveRuntime = self.fabric.sim
        # Receives happen at the wall instant the kernel hands them up.
        rt.run_inline(self.node_id, rt.now, self.fabric._arrive,
                      self.node_id, msg)


class UdpFabric(Fabric):
    """Loopback UDP fabric: one real socket per node.

    Messages traverse pickle → kernel UDP → unpickle, so a run
    exercises real serialization and real socket scheduling on top of
    the modelled link delay.  The node population must be complete
    before the run starts: sockets are bound (to OS-assigned loopback
    ports) in :meth:`start`, and late registration raises rather than
    silently dropping traffic.
    """

    def __init__(self, runtime: LiveRuntime,
                 default_spec: Optional[LinkSpec] = None,
                 host: str = "127.0.0.1"):
        super().__init__(runtime, default_spec)
        self.host = host
        self._ports: Dict[NodeId, int] = {}
        self._transports: Dict[NodeId, asyncio.DatagramTransport] = {}
        self._running = False
        self.bytes_on_wire = 0
        runtime.add_service(self)

    # -- Fabric overrides ----------------------------------------------
    def register(self, node: NetNode) -> None:
        if self._running:
            raise RuntimeError(
                f"UdpFabric cannot add node {node.id!r} after start: "
                "sockets bind at startup (use QueueFabric for open-world "
                "populations)")
        super().register(node)

    def _dispatch(self, dst: NodeId, msg: Message, delay: float) -> None:
        # The modelled link delay elapses before the wire; the socket
        # then adds whatever the kernel really takes.
        self.sim.schedule(delay, self._transmit, msg.src, dst, msg,
                          owner=msg.src)

    def _transmit(self, src: NodeId, dst: NodeId, msg: Message) -> None:
        transport = self._transports.get(src)
        port = self._ports.get(dst)
        if transport is None or port is None:
            self.messages_dropped += 1
            return
        data = pickle.dumps(msg)
        self.bytes_on_wire += len(data)
        transport.sendto(data, (self.host, port))

    # -- service lifecycle ---------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for node_id in sorted(self.nodes):
            transport, _ = await loop.create_datagram_endpoint(
                lambda nid=node_id: _UdpEndpoint(self, nid),
                local_addr=(self.host, 0))
            self._transports[node_id] = transport
            self._ports[node_id] = transport.get_extra_info("sockname")[1]
        self._running = True

    async def stop(self) -> None:
        self._running = False
        for transport in self._transports.values():
            transport.close()
        # Let the loop process the close callbacks.
        await asyncio.sleep(0)
        self._transports.clear()
        self._ports.clear()
