"""The wall-clock :class:`~repro.runtime.api.Runtime` over asyncio.

Timing model
------------
Deadlines are *logical milliseconds since run start*, mapped onto the
event loop's monotonic clock by ``wall = start + deadline·time_scale``.
``time_scale`` is wall seconds per logical second: ``1.0`` is real time,
``0.1`` replays the same logical schedule ten times faster (useful for
CI smoke runs — logical timestamps, and therefore every trace record
and metric, are unchanged).

Drift correction: while a scheduled callback executes, :attr:`now`
reads the callback's *scheduled deadline*, not the (slightly later)
wall instant it actually ran at.  A :class:`~repro.runtime.timers.
PeriodicTimer` that re-arms with ``schedule(period)`` therefore ticks
on the absolute grid ``phase + k·period`` — lateness of one tick never
leaks into the next, matching the sim engine's semantics exactly.  The
wall lateness itself is tracked (:attr:`max_lag_ms`, :attr:`lag_sum_ms`)
so a run report can show how far behind the loop fell.

Outside callbacks, :attr:`now` is the wall-derived logical time.
Services (socket fabrics, queue pumps) injecting work from their own
tasks use :meth:`run_inline` so protocol code still executes with a
consistent frozen clock and owner context.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.runtime.api import _INHERIT, Runtime
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceBus


class LiveHandle:
    """A scheduled live callback; satisfies the seam's handle contract
    (a ``cancelled`` attribute is all the timers inspect)."""

    __slots__ = ("time", "fn", "args", "owner", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple,
                 owner: Optional[str]):
        self.time = time
        self.fn = fn
        self.args = args
        self.owner = owner
        self.cancelled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<LiveHandle t={self.time:.6g} {name} {state}>"


class LiveRuntime(Runtime):
    """Wall-clock runtime: logical-deadline heap paced by asyncio.

    Parameters
    ----------
    seed:
        Master seed for the named random streams — the same derivation
        as the sim engine, so a live run draws the same per-stream
        sequences the sim would (the differential harness depends on
        this).
    time_scale:
        Wall seconds per logical second (default 1.0 = real time).
    trace:
        Optional pre-built :class:`TraceBus`.
    """

    def __init__(self, seed: int = 0, time_scale: float = 1.0,
                 trace: Optional[TraceBus] = None):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.seed = seed
        self.time_scale = time_scale
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else TraceBus()
        self.trace._sim = self
        self._heap: List[Tuple[float, int, LiveHandle]] = []
        self._seq = 0
        self._ctx_owner: Optional[str] = None
        #: Scheduled deadline of the executing callback (None outside).
        self._frozen: Optional[float] = None
        #: Logical clock before the loop starts / after it finishes.
        self._now = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wall0 = 0.0
        self._wake: Optional[asyncio.Event] = None
        self._stopped = False
        self._services: List[Any] = []
        # Run accounting.
        self.events_processed = 0
        self.max_lag_ms = 0.0
        self.lag_sum_ms = 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Logical time (ms): frozen deadline inside callbacks,
        wall-derived between them, last horizon when not running."""
        if self._frozen is not None:
            return self._frozen
        if self._loop is None:
            return self._now
        return (self._loop.time() - self._wall0) * 1000.0 / self.time_scale

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 owner: Any = _INHERIT) -> LiveHandle:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args, owner=owner)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    owner: Any = _INHERIT) -> LiveHandle:
        """Schedule at an absolute logical time.

        Unlike the sim engine, a deadline already in the past is not an
        error — wall clocks drift, so it simply runs as soon as the loop
        gets to it.
        """
        if owner is _INHERIT:
            owner = self._ctx_owner
        handle = LiveHandle(time, fn, args, owner)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        if self._wake is not None:
            # A new earliest deadline must interrupt the loop's sleep.
            self._wake.set()
        return handle

    def cancel(self, handle: LiveHandle) -> None:
        handle.cancelled = True

    @property
    def pending(self) -> int:
        """Number of non-cancelled callbacks still queued."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    # ------------------------------------------------------------------
    # Deterministic services / contexts
    # ------------------------------------------------------------------
    def rng(self, name: str):
        return self.streams.get(name)

    def call_owned(self, owner: Any, fn: Callable[..., Any], *args: Any):
        saved = self._ctx_owner
        self._ctx_owner = owner
        try:
            return fn(*args)
        finally:
            self._ctx_owner = saved

    @property
    def current_owner(self) -> Optional[str]:
        return self._ctx_owner

    def run_inline(self, owner: Optional[str], at: float,
                   fn: Callable[..., Any], *args: Any):
        """Execute ``fn(*args)`` immediately with ``now`` frozen at
        ``at`` and the owner context set.

        The entry point for service tasks (queue pumps, datagram
        receivers) handing work to protocol code: everything the
        callback emits or schedules sees a consistent clock, exactly as
        if it had been dispatched from the deadline heap.
        """
        saved_owner = self._ctx_owner
        saved_frozen = self._frozen
        self._ctx_owner = owner
        self._frozen = at
        try:
            return fn(*args)
        finally:
            self._frozen = saved_frozen
            self._ctx_owner = saved_owner

    # ------------------------------------------------------------------
    # Services (fabrics with async setup/teardown)
    # ------------------------------------------------------------------
    def add_service(self, service: Any) -> None:
        """Register an object with async ``start()``/``stop()`` hooks,
        awaited around the run loop (socket binding, pump tasks)."""
        self._services.append(service)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Blocking entry point — runs :meth:`arun` in a fresh loop.

        Mirrors ``Simulator.run(until=...)`` so an armed
        :class:`~repro.workloads.scenarios.Scenario` runs unmodified on
        this backend.  ``max_events`` is accepted for signature parity.
        """
        asyncio.run(self.arun(until=until, max_events=max_events))

    async def arun(self, until: Optional[float] = None,
                   max_events: Optional[int] = None) -> None:
        """Run the deadline loop until ``until`` logical ms.

        ``until`` is inclusive, like the sim engine: callbacks scheduled
        exactly at the horizon fire, and ``now`` ends at the horizon.
        With ``until=None`` the loop exits when the heap drains — only
        sensible without socket services that may inject new work.
        """
        if self._loop is not None:
            raise RuntimeError("runtime is already running")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._wake = asyncio.Event()
        self._stopped = False
        self._wall0 = loop.time()
        for svc in self._services:
            await svc.start()
        try:
            await self._loop_until(until, max_events)
        finally:
            for svc in self._services:
                await svc.stop()
            end = (loop.time() - self._wall0) * 1000.0 / self.time_scale
            if until is not None:
                end = min(end, until)
            self._now = max(self._now, end)
            self._loop = None
            self._wake = None

    async def _loop_until(self, until: Optional[float],
                          max_events: Optional[int]) -> None:
        loop = self._loop
        heap = self._heap
        scale = self.time_scale / 1000.0
        processed = 0
        while not self._stopped:
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
            next_time = heap[0][0] if heap else None
            if next_time is None or (until is not None and next_time > until):
                if until is None:
                    break  # heap drained, no horizon: done
                # Nothing left before the horizon: sleep toward it, but
                # stay interruptible — a service may inject new work.
                dt = (self._wall0 + until * scale) - loop.time()
                if dt > 0 and await self._interruptible_sleep(dt):
                    continue
                break
            dt = (self._wall0 + next_time * scale) - loop.time()
            if dt > 0:
                if await self._interruptible_sleep(dt):
                    continue  # woken early: re-evaluate the heap top
            # Execute everything due at the current wall instant,
            # yielding after each callback so service tasks (queue
            # pumps, datagram receivers) can re-inject arrivals at
            # their correct logical position before the loop advances
            # past them — even when the loop is lagging the wall clock.
            wall_ms = (loop.time() - self._wall0) / scale
            horizon = wall_ms if until is None else min(wall_ms, until)
            while heap and not self._stopped:
                t, _, handle = heap[0]
                if handle.cancelled:
                    heapq.heappop(heap)
                    continue
                if t > horizon:
                    break
                heapq.heappop(heap)
                self._execute(handle, wall_ms)
                processed += 1
                if max_events is not None and processed >= max_events:
                    return
                await asyncio.sleep(0)

    async def _interruptible_sleep(self, dt_wall: float) -> bool:
        """Sleep up to ``dt_wall`` seconds; True when woken early."""
        self._wake.clear()
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=dt_wall)
            return True
        except asyncio.TimeoutError:
            return False

    def _execute(self, handle: LiveHandle, wall_ms: float) -> None:
        lag = wall_ms - handle.time
        if lag > self.max_lag_ms:
            self.max_lag_ms = lag
        if lag > 0:
            self.lag_sum_ms += lag
        saved_owner = self._ctx_owner
        self._ctx_owner = handle.owner
        self._frozen = handle.time
        try:
            handle.fn(*handle.args)
        finally:
            self._frozen = None
            self._ctx_owner = saved_owner
        if handle.time > self._now:
            self._now = handle.time
        self.events_processed += 1

    def stop(self) -> None:
        """Request the loop to stop after the current callback."""
        self._stopped = True
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------------
    def lag_report(self) -> dict:
        """Wall-lateness accounting for the finished (or running) run."""
        n = self.events_processed
        return {
            "events": n,
            "max_lag_ms": round(self.max_lag_ms, 3),
            "mean_lag_ms": round(self.lag_sum_ms / n, 3) if n else 0.0,
            "time_scale": self.time_scale,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveRuntime t={self.now:.6g} pending={self.pending} "
                f"processed={self.events_processed} seed={self.seed}>")
