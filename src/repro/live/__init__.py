"""Wall-clock asyncio backend: the protocol stack as a runnable service.

The discrete-event engine (:mod:`repro.sim`) is the correctness oracle;
this package binds the exact same protocol code — via the
:class:`~repro.runtime.api.Runtime` seam — to real time:

* :class:`LiveRuntime` — loop-based timers with drift correction
  (callbacks observe their *scheduled* deadline, so periodic work ticks
  on absolute deadlines and never accumulates drift);
* :class:`QueueFabric` / :class:`UdpFabric` — transmission over
  per-node ``asyncio.Queue`` rx queues (single-host multi-tier runs)
  or real UDP sockets on the loopback;
* :class:`NetworkBuilder` — BR/AG/AP/MH tiers from an existing
  :class:`~repro.experiments.spec.ExperimentSpec`, with the
  :mod:`repro.validation` monitors attached to the live trace stream;
* :class:`LoadGenerator` — the existing workload fleets driven in wall
  time, with live send/delivery rate accounting;
* :func:`diff_spec` — the sim-vs-live differential harness behind
  ``python -m repro.live diff``.
"""

from repro.live.builder import LiveRun, NetworkBuilder
from repro.live.fabric import QueueFabric, UdpFabric
from repro.live.loadgen import LoadGenerator
from repro.live.runtime import LiveRuntime

__all__ = [
    "LiveRuntime",
    "QueueFabric",
    "UdpFabric",
    "NetworkBuilder",
    "LiveRun",
    "LoadGenerator",
]
