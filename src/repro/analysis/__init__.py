"""Analytic side of the reproduction: Theorem 5.1 bounds and comparisons.

:mod:`repro.analysis.bounds` computes the paper's closed-form bounds
from protocol/topology parameters; :mod:`repro.analysis.compare` builds
the paper-vs-measured rows that EXPERIMENTS.md records.
"""

from repro.analysis.bounds import TheoremBounds, bounds_for
from repro.analysis.compare import bound_check_row
from repro.analysis.retransmission import RetransmissionModel

__all__ = ["TheoremBounds", "bounds_for", "bound_check_row",
           "RetransmissionModel"]
