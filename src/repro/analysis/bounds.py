"""Theorem 5.1's closed-form bounds, computed from run parameters.

The theorem (paper §5), for a top ring of ``r ≥ 2`` nodes and ``s ≤ r``
sources each sending λ messages per time unit, **without** token
processing overheads and retransmission:

* throughput of the ordered protocol equals the unordered protocol's:
  ``s·λ`` messages per time unit;
* every message is ordered, forwarded, and delivered within
  ``max(T_order, T_transmit) + τ + T_deliver``;
* buffer sizes suffice at
  ``|WQ| ≤ s·λ·(max(T_order, T_transmit) + τ)`` and
  ``|MQ| ≤ s·λ·T_order``.

``T_order`` is the maximal token round-trip, ``T_transmit`` the maximal
message round-trip along the top ring, and ``T_deliver`` the maximal
time for an ordered message to be transmitted and tagged delivered to
the children.  In the simulated substrate these resolve to:

* per-hop ring time = link latency (+ max jitter) and, for the token,
  + the configured hold time;
* ``T_deliver`` = (tree depth below the top ring) × per-hop delivery
  time, including the wireless hop and one ack (delivery is "tagged
  delivered" on acknowledgement).

The bound helpers deliberately use *worst-case* per-hop values (latency
plus full jitter) because the theorem is stated as a maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.net.link import LinkSpec


@dataclass(frozen=True)
class TheoremBounds:
    """The three quantities Theorem 5.1 bounds, in ms / messages."""

    t_order: float
    t_transmit: float
    t_deliver: float
    tau: float
    #: Aggregate source rate in messages per millisecond (s·λ / 1000).
    rate_per_ms: float

    @property
    def latency_bound_ms(self) -> float:
        """The paper's bound: max(T_order, T_transmit) + τ + T_deliver."""
        return max(self.t_order, self.t_transmit) + self.tau + self.t_deliver

    @property
    def ordering_bound_ms(self) -> float:
        """The paper's ordering term: max(T_order, T_transmit) + τ."""
        return max(self.t_order, self.t_transmit) + self.tau

    # -- corrected variants (reproduction finding) ---------------------
    #
    # Theorem 5.1 treats "ordered within T_order" as if the assignment
    # were simultaneously visible at every ring node.  In the actual
    # protocol a message waits up to one rotation for the token to reach
    # its corresponding node (≤ T_order), and the resulting WTSNP entry
    # then needs up to one MORE rotation to reach every other node's
    # snapshot.  The measured worst case therefore tracks
    # max(T_order, T_transmit) + T_order + τ (+ T_deliver), which our
    # experiments confirm; the paper's stated bound is mildly optimistic
    # for larger rings (see EXPERIMENTS.md, E2).

    @property
    def ordering_bound_corrected_ms(self) -> float:
        """Corrected ordering term: max(T_order, T_transmit) + T_order + τ."""
        return max(self.t_order, self.t_transmit) + self.t_order + self.tau

    @property
    def latency_bound_corrected_ms(self) -> float:
        """Corrected latency bound (adds the second token rotation)."""
        return self.ordering_bound_corrected_ms + self.t_deliver

    @property
    def wq_bound_corrected_msgs(self) -> float:
        """WQ bound with the corrected ordering residency."""
        return self.rate_per_ms * self.ordering_bound_corrected_ms

    @property
    def wq_bound_msgs(self) -> float:
        """s·λ·(max(T_order, T_transmit) + τ)."""
        return self.rate_per_ms * self.ordering_bound_ms

    @property
    def mq_bound_msgs(self) -> float:
        """s·λ·T_order."""
        return self.rate_per_ms * self.t_order

    @property
    def throughput_msgs_per_sec(self) -> float:
        """The theorem's throughput: s·λ (per second)."""
        return self.rate_per_ms * 1000.0


def ring_hop_ms(spec: LinkSpec) -> float:
    """Worst-case one-hop ring time for a link spec."""
    return spec.latency + spec.jitter


def bounds_for(
    cfg: ProtocolConfig,
    ring_size: int,
    n_sources: int,
    rate_per_sec: float,
    wired: LinkSpec,
    wireless: LinkSpec,
    tree_depth: int = 3,
    lower_ring_size: int = 1,
    include_source_hop: bool = True,
) -> TheoremBounds:
    """Assemble Theorem 5.1 bounds for a concrete configuration.

    Parameters
    ----------
    ring_size:
        r, the top-ring size.
    n_sources, rate_per_sec:
        s and λ (per source, messages/second).
    tree_depth:
        Hops from a top-ring node down to an MH (BR→AG, AG→AP, AP→MH
        = 3 in the standard hierarchy).
    lower_ring_size:
        Largest non-top ring; ring forwarding adds (size-1) hops to
        delivery reach in the worst case.
    include_source_hop:
        The paper's clock starts when the corresponding node receives
        the message; this repo measures from source emission, one wired
        hop earlier.  True (default) folds that hop into T_deliver so
        measured latencies compare against a like-for-like bound.
    """
    if ring_size < 1:
        raise ValueError("ring_size must be >= 1")
    hop = ring_hop_ms(wired)
    t_order = ring_size * (cfg.token_hold_time + hop)
    t_transmit = ring_size * hop
    # Delivery: down-tree hops (wired) + wireless hop, each with an ack
    # on the way back (delivered = acknowledged), plus worst-case ring
    # forwarding within the lower ring before the last member delivers.
    wired_down = (tree_depth - 1) * 2 * hop
    wireless_down = 2 * (wireless.latency + wireless.jitter)
    ring_extra = max(0, lower_ring_size - 1) * hop
    t_deliver = wired_down + wireless_down + ring_extra
    if include_source_hop:
        t_deliver += hop
    rate_per_ms = n_sources * rate_per_sec / 1000.0
    return TheoremBounds(
        t_order=t_order,
        t_transmit=t_transmit,
        t_deliver=t_deliver,
        tau=cfg.tau,
        rate_per_ms=rate_per_ms,
    )
