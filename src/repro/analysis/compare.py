"""Paper-vs-measured comparison rows for EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.bounds import TheoremBounds


def bound_check_row(
    name: str,
    bound: float,
    measured: float,
    unit: str = "ms",
    within_factor: float = 1.0,
) -> Dict[str, object]:
    """One table row: does ``measured`` respect ``bound``?

    ``within_factor`` loosens the check for effects the theorem excludes
    (retransmission, token processing overhead) — the paper itself notes
    buffers and latency "may be larger to accommodate retransmission".
    """
    ok = measured <= bound * within_factor
    return {
        "quantity": name,
        "bound": round(bound, 3),
        "measured": round(measured, 3),
        "unit": unit,
        "holds": "yes" if ok else "NO",
    }


def theorem_rows(bounds: TheoremBounds,
                 measured_latency_max: float,
                 measured_wq_peak: float,
                 measured_mq_peak: float,
                 measured_throughput: float,
                 slack: float = 1.0) -> list:
    """The full Theorem 5.1 check: latency, WQ, MQ, throughput."""
    rows = [
        bound_check_row("latency_max", bounds.latency_bound_ms,
                        measured_latency_max, "ms", slack),
        bound_check_row("wq_peak", bounds.wq_bound_msgs,
                        measured_wq_peak, "msgs", slack),
        bound_check_row("mq_peak", bounds.mq_bound_msgs,
                        measured_mq_peak, "msgs", slack),
    ]
    # Throughput is an equality claim (within sampling noise), not a bound.
    thr = bounds.throughput_msgs_per_sec
    rel_err = abs(measured_throughput - thr) / thr if thr else 0.0
    rows.append({
        "quantity": "throughput",
        "bound": round(thr, 3),
        "measured": round(measured_throughput, 3),
        "unit": "msg/s",
        "holds": "yes" if rel_err <= 0.05 else "NO",
    })
    return rows
