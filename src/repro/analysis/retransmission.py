"""Retransmission analysis — the paper's stated future work.

Paper §5 closes with: "retransmission will occur in unreliable
communications environment ... buffer sizes of WQ and MQ of each node
may be larger and message latency may be larger to accommodate
retransmission.  **We will do more analysis in our future work
regarding retransmission.**"

This module supplies that analysis for the implemented transport
(per-link stop-and-go retransmission with timeout ``rto`` and at most
``k`` retries over an i.i.d. loss channel with loss probability ``p``),
and the benchmark ``benchmarks/test_x1_retransmission_analysis.py``
validates it empirically.

Model
-----
One transmission succeeds with probability ``q = 1 - p``.  With at most
``k`` retries (``k+1`` attempts total):

* **delivery probability**  ``P_deliver = 1 - p^(k+1)`` — only the
  *data* transmissions matter (no data ⇒ no ack ⇒ every attempt is
  made, so non-delivery means all k+1 data copies were lost);
* **expected attempts**: the sender stops on a successful *round trip*
  (data AND ack through, probability ``s = (1-p)·(1-p_ack)``), so
  ``E[A] = (1 - (1-s)^(k+1)) / s`` — lost acks cause retransmissions of
  already-delivered data, which the duplicate filter absorbs;
* **expected extra latency** for a *delivered* message: the message is
  delivered on attempt ``i`` (0-based) with probability
  ``p^i q / P_deliver`` and then waited ``i·rto`` beyond the one-way
  time, so ``E[extra] = rto · E[i | delivered]``;
* **tail latency** for a delivered message: at most ``k·rto`` beyond
  the lossless bound — Theorem 5.1's latency bound therefore inflates
  additively per lossy hop, not multiplicatively;
* **buffer inflation**: a sender-side slot stays occupied for the full
  retransmission conversation, so expected occupancy multiplies by
  ``(1 + E[extra]/T_hold)`` where ``T_hold`` is the lossless holding
  time of that slot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetransmissionModel:
    """Closed-form predictions for one lossy reliable hop."""

    loss_prob: float
    rto: float
    max_retries: int
    #: Ack-direction loss probability; None ⇒ same as the data direction
    #: (symmetric link, the repo's default).
    ack_loss_prob: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if self.ack_loss_prob is not None and not 0.0 <= self.ack_loss_prob < 1.0:
            raise ValueError("ack_loss_prob must be in [0, 1)")
        if self.rto <= 0:
            raise ValueError("rto must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    # ------------------------------------------------------------------
    @property
    def p_ack(self) -> float:
        """Effective ack-direction loss probability."""
        return self.loss_prob if self.ack_loss_prob is None else self.ack_loss_prob

    @property
    def round_trip_success(self) -> float:
        """P(one attempt completes data + ack) = (1-p)(1-p_ack)."""
        return (1.0 - self.loss_prob) * (1.0 - self.p_ack)

    @property
    def delivery_probability(self) -> float:
        """P(message delivered within k+1 attempts) = 1 - p^(k+1)."""
        return 1.0 - self.loss_prob ** (self.max_retries + 1)

    @property
    def expected_attempts(self) -> float:
        """Unconditional mean transmissions per message.

        Attempts stop on the first acked round trip; lost acks trigger
        retransmissions of already-delivered data.
        """
        s = self.round_trip_success
        k = self.max_retries
        return (1.0 - (1.0 - s) ** (k + 1)) / s

    @property
    def expected_retransmissions(self) -> float:
        """Mean retransmissions (attempts beyond the first)."""
        return self.expected_attempts - 1.0

    def expected_attempt_index_given_delivered(self) -> float:
        """E[i | delivered], i = 0-based index of the successful attempt."""
        p, k = self.loss_prob, self.max_retries
        if p == 0.0:
            return 0.0
        q = 1.0 - p
        num = sum(i * (p ** i) * q for i in range(k + 1))
        return num / self.delivery_probability

    @property
    def expected_extra_latency(self) -> float:
        """Mean added latency (ms) for a delivered message."""
        return self.rto * self.expected_attempt_index_given_delivered()

    @property
    def max_extra_latency(self) -> float:
        """Worst added latency for a delivered message: k·rto."""
        return self.max_retries * self.rto

    # ------------------------------------------------------------------
    def end_to_end_delivery_probability(self, hops: int) -> float:
        """Delivery probability across ``hops`` independent lossy hops
        *without* higher-tier recovery (a lower bound for the protocol,
        whose gap-recovery layer re-serves channel give-ups)."""
        if hops < 1:
            raise ValueError("hops must be >= 1")
        return self.delivery_probability ** hops

    def inflated_latency_bound(self, lossless_bound: float,
                               lossy_hops: int) -> float:
        """Theorem 5.1's bound with worst-case retransmission added.

        Additive inflation: each lossy hop can add at most k·rto for a
        message that is still delivered.
        """
        return lossless_bound + lossy_hops * self.max_extra_latency

    def buffer_inflation_factor(self, lossless_hold_ms: float) -> float:
        """Multiplier on expected buffer occupancy at a lossy sender."""
        if lossless_hold_ms <= 0:
            raise ValueError("lossless_hold_ms must be positive")
        return 1.0 + self.expected_extra_latency / lossless_hold_ms

    def rows(self) -> dict:
        """A report row for the X1 benchmark table."""
        return {
            "p": self.loss_prob,
            "retries": self.max_retries,
            "P(deliver)": round(self.delivery_probability, 6),
            "E[attempts]": round(self.expected_attempts, 4),
            "E[extra] (ms)": round(self.expected_extra_latency, 3),
            "max extra (ms)": round(self.max_extra_latency, 1),
        }
