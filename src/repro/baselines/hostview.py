"""The two-tier Host-View scheme of Acharya & Badrinath [1].

"The Host-View consists of a set of MSSs, which represents the aggregate
location information of the group ... in order to deliver a multicast
message to a group of MHs, it suffices to send a copy to only those MSSs
in the group's Host-View."  The known weaknesses the paper cites — and
experiment E8 measures — are:

* the **sender** buffers every message until every MSS in the view acks
  it, and each **MSS** buffers until its local members ack, so buffer
  usage grows with the view size;
* "the global updates necessary with every significant move make it
  inefficient and may cause lengthy breaks in service": a handoff to an
  MSS outside the view blocks delivery to that MH until a *global* view
  update (one control message to every view member plus an update
  latency) completes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.common import (
    BaselineMH,
    Deregister,
    PlainDeliver,
    Register,
)
from repro.net.address import NodeId, make_id
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.sim.engine import Simulator


class ViewJoinRequest(Message):
    """MSS → sender: add me to the group's Host-View."""

    size_bits = 128

    __slots__ = ("mss",)

    def __init__(self, mss: NodeId):
        self.mss = mss


class ViewUpdate(Message):
    """Sender → every view MSS: the Host-View changed (control traffic)."""

    size_bits = 256

    __slots__ = ("view_version",)

    def __init__(self, view_version: int):
        self.view_version = view_version


class HostViewSender(NetNode):
    """The multicast sender holding the group's Host-View."""

    def __init__(self, fabric: Fabric, node_id: NodeId,
                 rate_per_sec: float = 10.0, pattern: str = "cbr",
                 update_latency: float = 100.0,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.rate_per_sec = rate_per_sec
        self.pattern = pattern
        self.update_latency = update_latency
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries,
                                    on_ack=self._on_ack)
        self.view: Set[NodeId] = set()
        self.view_version = 0
        self.local_seq = 0
        self.sent = 0
        self.control_messages = 0
        #: local_seq -> set of MSSs still owing an ack (the send buffer).
        self._unacked: Dict[int, Set[NodeId]] = {}
        self.peak_buffer = 0
        self._timer = self.timer(self._emit)
        self._running = False

    # ------------------------------------------------------------------
    def start(self, delay: float = 0.0) -> None:
        """Begin emitting."""
        if not self._running:
            self._running = True
            self._timer.start(delay + self._next_gap())

    def stop(self) -> None:
        """Stop emitting."""
        self._running = False
        self._timer.stop()

    def _next_gap(self) -> float:
        if self.pattern == "cbr":
            return 1000.0 / self.rate_per_sec
        return float(self.sim.rng(f"source.{self.id}")
                     .exponential(1000.0 / self.rate_per_sec))

    def _emit(self) -> None:
        if not self._running:
            return
        seq = self.local_seq
        msg_view = set(self.view)
        if msg_view:
            self._unacked[seq] = set(msg_view)
            for mss in msg_view:
                self.chan.send(mss, PlainDeliver(self.id, seq, seq,
                                                 (self.id, seq), self.now))
        self.sim.trace.emit(self.now, "source.send", source=self.id,
                            local_seq=seq, corresponding="<view>")
        self.local_seq += 1
        self.sent += 1
        self.peak_buffer = max(self.peak_buffer, len(self._unacked))
        self._timer.start(self._next_gap())

    def _on_ack(self, dst: NodeId, payload: Message) -> None:
        if isinstance(payload, PlainDeliver):
            owing = self._unacked.get(payload.local_seq)
            if owing is not None:
                owing.discard(dst)
                if not owing:
                    del self._unacked[payload.local_seq]

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, ViewJoinRequest):
            self._view_change(add=payload.mss)

    def _view_change(self, add: Optional[NodeId] = None,
                     remove: Optional[NodeId] = None) -> None:
        """A 'significant move': global update to every view member."""
        self.view_version += 1
        version = self.view_version

        def apply() -> None:
            if add is not None:
                self.view.add(add)
            if remove is not None:
                self.view.discard(remove)
            # Global notification: one control message per view member.
            for mss in self.view:
                self.chan.send(mss, ViewUpdate(version))
                self.control_messages += 1

        self.sim.schedule(self.update_latency, apply)


class HostViewMSS(NetNode):
    """A Mobile Support Station: buffers for, and serves, local members."""

    def __init__(self, fabric: Fabric, node_id: NodeId, sender: NodeId,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.sender = sender
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries,
                                    on_ack=self._on_ack)
        self.members: Set[NodeId] = set()
        self.in_view = False
        #: (local_seq) -> members still owing an ack (the MSS buffer).
        self._unacked: Dict[int, Set[NodeId]] = {}
        self.peak_buffer = 0

    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            if self.members:
                self._unacked[payload.local_seq] = set(self.members)
                for mh in self.members:
                    self.chan.send(mh, PlainDeliver(
                        payload.source, payload.local_seq, payload.seq,
                        payload.payload, payload.created_at))
                self.peak_buffer = max(self.peak_buffer, len(self._unacked))
        elif isinstance(payload, Register):
            self.members.add(payload.mh)
            if not self.in_view:
                # Ask the sender for a (global) view update.
                self.chan.send(self.sender, ViewJoinRequest(self.id))
        elif isinstance(payload, Deregister):
            self.members.discard(payload.mh)
            for owing in self._unacked.values():
                owing.discard(payload.mh)
            self._gc()
        elif isinstance(payload, ViewUpdate):
            self.in_view = True

    def _on_ack(self, dst: NodeId, payload: Message) -> None:
        if isinstance(payload, PlainDeliver):
            owing = self._unacked.get(payload.local_seq)
            if owing is not None:
                owing.discard(dst)
            self._gc()

    def _gc(self) -> None:
        done = [s for s, owing in self._unacked.items() if not owing]
        for s in done:
            del self._unacked[s]


class HostViewProtocol:
    """Facade: sender + MSSs + MHs, mirroring the RingNet surface."""

    def __init__(self, sim: Simulator, n_mss: int,
                 rate_per_sec: float = 10.0, update_latency: float = 100.0,
                 wired: LinkSpec = WIRED, wireless: LinkSpec = WIRELESS,
                 mss_max_retries: int = 5):
        self.sim = sim
        self.fabric = Fabric(sim)
        self.wireless = wireless
        self.sender = HostViewSender(self.fabric, "hv-sender:0",
                                     rate_per_sec=rate_per_sec,
                                     update_latency=update_latency)
        self.msss: Dict[NodeId, HostViewMSS] = {}
        for i in range(n_mss):
            mss_id = make_id("mss", i)
            # Host-View semantics: the MSS buffers a message until every
            # local member acknowledged it — patient retransmission
            # (large max_retries) models that per-MSS buffering burden.
            self.msss[mss_id] = HostViewMSS(self.fabric, mss_id,
                                            self.sender.id,
                                            max_retries=mss_max_retries)
            self.fabric.connect(self.sender.id, mss_id, wired)
        self.mobile_hosts: Dict[NodeId, BaselineMH] = {}

    def start(self) -> None:
        """Present for API parity with RingNet."""

    def add_mobile_host(self, mh_id: NodeId, mss_id: NodeId,
                        join: bool = True) -> BaselineMH:
        """Create an MH attached at an MSS."""
        mh = BaselineMH(self.fabric, mh_id)
        self.fabric.connect(mh_id, mss_id, self.wireless)
        self.mobile_hosts[mh_id] = mh
        if join:
            mh.join(mss_id)
        return mh

    def handoff(self, mh_id: NodeId, new_mss: NodeId) -> None:
        """Move an MH to a new MSS (a 'significant move')."""
        mh = self.mobile_hosts[mh_id]
        if self.fabric.link(mh_id, new_mss) is None:
            self.fabric.connect(mh_id, new_mss, self.wireless)
        mh.handoff_to(new_mss)

    def member_hosts(self) -> List[BaselineMH]:
        """All current member MHs."""
        return [m for m in self.mobile_hosts.values() if m.is_member]

    def peak_buffers(self) -> dict:
        """Sender + per-MSS peak buffered messages (the E8 metric)."""
        mss_peaks = [m.peak_buffer for m in self.msss.values()]
        return {
            "sender_peak": self.sender.peak_buffer,
            "mss_peak_max": max(mss_peaks, default=0),
            "total_peak": self.sender.peak_buffer + sum(mss_peaks),
            "control_messages": self.sender.control_messages,
        }
