"""Central-sequencer total order (classic fixed-sequencer comparator).

Not a scheme from the paper's related work, but the canonical
alternative to token-based total ordering (used by e.g. Amoeba and many
GCSs): all sources funnel through one sequencer node that assigns global
sequence numbers and fans the stream out to every access point hosting
members.  It gives the ordering-latency ablation a second reference
point: the token approach pays up to one ring rotation of ordering
delay but has no single hot node; the sequencer orders in one hop but
concentrates all load and is a single point of failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.common import (
    BaselineMH,
    BaselineSource,
    Deregister,
    PlainDeliver,
    Register,
)
from repro.net.address import NodeId, make_id
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.sim.engine import Simulator


class SequencerNode(NetNode):
    """Assigns global sequence numbers and fans out to access points."""

    def __init__(self, fabric: Fabric, node_id: NodeId,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)
        self.next_global_seq = 0
        self.aps: List[NodeId] = []
        self.sequenced = 0

    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            gseq = self.next_global_seq
            self.next_global_seq += 1
            self.sequenced += 1
            for ap in self.aps:
                self.chan.send(ap, PlainDeliver(
                    payload.source, payload.local_seq, gseq,
                    payload.payload, payload.created_at))


class SequencerAP(NetNode):
    """An access point relaying the sequenced stream to its members."""

    def __init__(self, fabric: Fabric, node_id: NodeId,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)
        self.members: Set[NodeId] = set()

    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            for mh in self.members:
                self.chan.send(mh, PlainDeliver(
                    payload.source, payload.local_seq, payload.seq,
                    payload.payload, payload.created_at))
        elif isinstance(payload, Register):
            self.members.add(payload.mh)
        elif isinstance(payload, Deregister):
            self.members.discard(payload.mh)


class SequencerMulticast:
    """Facade: sources → sequencer → APs → MHs."""

    def __init__(self, sim: Simulator, n_aps: int,
                 wired: LinkSpec = WIRED, wireless: LinkSpec = WIRELESS):
        self.sim = sim
        self.fabric = Fabric(sim)
        self.wireless = wireless
        self.sequencer = SequencerNode(self.fabric, "seq:0")
        self.aps: Dict[NodeId, SequencerAP] = {}
        for i in range(n_aps):
            ap_id = make_id("ap", i)
            self.aps[ap_id] = SequencerAP(self.fabric, ap_id)
            self.sequencer.aps.append(ap_id)
            self.fabric.connect(self.sequencer.id, ap_id, wired)
        self.sources: Dict[NodeId, BaselineSource] = {}
        self.mobile_hosts: Dict[NodeId, BaselineMH] = {}

    def start(self) -> None:
        """Present for API parity with RingNet."""

    def add_source(self, source_id: Optional[NodeId] = None,
                   rate_per_sec: float = 10.0,
                   pattern: str = "cbr") -> BaselineSource:
        """Attach a source feeding the sequencer."""
        if source_id is None:
            source_id = make_id("src", len(self.sources))
        src = BaselineSource(self.fabric, source_id, self.sequencer.id,
                             rate_per_sec=rate_per_sec, pattern=pattern)
        self.fabric.connect(source_id, self.sequencer.id, WIRED)
        self.sources[source_id] = src
        return src

    def add_mobile_host(self, mh_id: NodeId, ap_id: NodeId,
                        join: bool = True) -> BaselineMH:
        """Create an MH attached at an AP."""
        mh = BaselineMH(self.fabric, mh_id)
        self.fabric.connect(mh_id, ap_id, self.wireless)
        self.mobile_hosts[mh_id] = mh
        if join:
            mh.join(ap_id)
        return mh

    def handoff(self, mh_id: NodeId, new_ap: NodeId) -> None:
        """Move an MH to a new AP."""
        mh = self.mobile_hosts[mh_id]
        if self.fabric.link(mh_id, new_ap) is None:
            self.fabric.connect(mh_id, new_ap, self.wireless)
        mh.handoff_to(new_ap)

    def member_hosts(self) -> List[BaselineMH]:
        """All current member MHs."""
        return [m for m in self.mobile_hosts.values() if m.is_member]
