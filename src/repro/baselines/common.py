"""Shared pieces for the baseline protocols.

Baselines reuse the RingNet trace vocabulary (``mh.deliver`` with
``latency``, ``mh.handoff``, ``source.send``) so every metrics collector
works unchanged across protocols.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.net.address import NodeId
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel


class PlainDeliver(Message):
    """A data message as delivered by a baseline protocol.

    ``seq`` is whatever ordering handle the baseline has (a global
    sequence for ordered baselines, a per-source sequence otherwise) —
    it feeds the ``gseq`` trace field.
    """

    __slots__ = ("source", "local_seq", "seq", "payload", "created_at")

    def __init__(self, source: NodeId, local_seq: int, seq: int,
                 payload: Any, created_at: float):
        self.source = source
        self.local_seq = local_seq
        self.seq = seq
        self.payload = payload
        self.created_at = created_at


class Register(Message):
    """MH → serving node: start delivering to me."""

    size_bits = 128

    __slots__ = ("mh",)

    def __init__(self, mh: NodeId):
        self.mh = mh


class Deregister(Message):
    """MH → serving node: stop delivering to me."""

    size_bits = 128

    __slots__ = ("mh",)

    def __init__(self, mh: NodeId):
        self.mh = mh


class BaselineMH(NetNode):
    """A mobile host for baseline protocols: deliver-on-arrival.

    Duplicate suppression is by (source, local_seq); ordered baselines
    that need in-sequence delivery layer it on top (see the sequencer).
    """

    def __init__(self, fabric: Fabric, guid: NodeId, rto: float = 30.0,
                 max_retries: int = 5):
        NetNode.__init__(self, fabric, guid)
        self.guid = guid
        self.ap: Optional[NodeId] = None
        self.is_member = False
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)
        self.app_log: List[Tuple[int, Any, float]] = []
        self._seen: set = set()
        self.handoffs = 0

    # ------------------------------------------------------------------
    def join(self, ap: NodeId) -> None:
        """Attach and register at ``ap``."""
        self.ap = ap
        self.is_member = True
        self.chan.send(ap, Register(self.guid))
        self.sim.trace.emit(self.now, "mh.join", mh=self.guid, ap=ap)

    def handoff_to(self, new_ap: NodeId) -> None:
        """Deregister from the old serving node, register at the new."""
        old = self.ap
        if old is not None and old != new_ap:
            # Cancel before sending (not after) so the Deregister keeps
            # its retransmission state on a lossy access link — same fix
            # as MobileHost.handoff_to.
            self.chan.cancel_all(old)
            self.chan.send(old, Deregister(self.guid))
        self.ap = new_ap
        self.handoffs += 1
        self.chan.send(new_ap, Register(self.guid))
        self.sim.trace.emit(self.now, "mh.handoff", mh=self.guid,
                            old=old, new=new_ap, front=-1)

    def leave(self) -> None:
        """Leave the group."""
        if self.ap is not None:
            self.chan.send(self.ap, Deregister(self.guid))
        self.is_member = False
        self.sim.trace.emit(self.now, "mh.leave", mh=self.guid, ap=self.ap)
        self.ap = None

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            self._handle_deliver(payload)

    def _handle_deliver(self, msg: PlainDeliver) -> None:
        if not self.is_member:
            return
        key = (msg.source, msg.local_seq)
        if key in self._seen:
            return
        self._seen.add(key)
        latency = self.now - msg.created_at
        self.app_log.append((msg.seq, msg.payload, latency))
        self.sim.trace.emit(
            self.now, "mh.deliver", mh=self.guid, gseq=msg.seq,
            latency=latency, source=msg.source, local_seq=msg.local_seq,
            created_at=msg.created_at,
        )

    @property
    def delivered_count(self) -> int:
        """Messages delivered to the application."""
        return len(self.app_log)


class BaselineSource(NetNode):
    """CBR/Poisson source for baselines (same cadence as the RingNet one)."""

    def __init__(self, fabric: Fabric, source_id: NodeId, sink: NodeId,
                 rate_per_sec: float = 10.0, pattern: str = "cbr",
                 rto: float = 25.0, max_retries: int = 5):
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        NetNode.__init__(self, fabric, source_id)
        self.sink = sink
        self.rate_per_sec = rate_per_sec
        self.pattern = pattern
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)
        self.local_seq = 0
        self.sent = 0
        self._timer = self.timer(self._emit)
        self._running = False

    @property
    def interval_ms(self) -> float:
        """Mean inter-message gap (ms)."""
        return 1000.0 / self.rate_per_sec

    def _next_gap(self) -> float:
        if self.pattern == "cbr":
            return self.interval_ms
        return float(self.sim.rng(f"source.{self.id}").exponential(self.interval_ms))

    def start(self, delay: float = 0.0) -> None:
        """Begin emitting."""
        if not self._running:
            self._running = True
            self._timer.start(delay + self._next_gap())

    def stop(self) -> None:
        """Stop emitting."""
        self._running = False
        self._timer.stop()

    def _emit(self) -> None:
        if not self._running:
            return
        msg = PlainDeliver(self.id, self.local_seq, self.local_seq,
                           (self.id, self.local_seq), self.now)
        self.chan.send(self.sink, msg)
        self.sim.trace.emit(self.now, "source.send", source=self.id,
                            local_seq=self.local_seq, corresponding=self.sink)
        self.local_seq += 1
        self.sent += 1
        self._timer.start(self._next_gap())

    def on_message(self, msg: Message) -> None:
        self.chan.accept(msg)
