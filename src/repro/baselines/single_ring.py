"""The single-logical-ring reliable multicast of Nikolaidis & Harms [16].

"A logical ring is maintained among all the Base Stations that handle
the multicast traffic of the same multicast group.  A token passing
protocol enforces a consistent view among all the BSs ... Since all the
control information has to be rotated along the ring, it may lead to
large latency and require large buffers when the ring becomes large."

Structurally this is RingNet degenerated to *one* ring containing every
base station, with mobile hosts attached directly to ring members — so
the implementation composes the real protocol stack
(:class:`~repro.core.protocol.RingNet`) over a hand-built single-ring
hierarchy.  That makes the E6 comparison an apples-to-apples measurement
of the *topology*: same ordering token, same reliability machinery, only
the distribution vehicle differs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.net.address import NodeId, make_id
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.sim.engine import Simulator
from repro.topology.builder import provision_links
from repro.topology.hierarchy import Hierarchy
from repro.topology.ring import LogicalRing
from repro.topology.tiers import Tier


class SingleRingMulticast(RingNet):
    """One big token ring of base stations (the [16] distribution vehicle)."""

    @classmethod
    def build_ring(
        cls,
        sim: Simulator,
        n_bs: int,
        mhs_per_bs: int = 1,
        cfg: Optional[ProtocolConfig] = None,
        wired: LinkSpec = WIRED,
        wireless: LinkSpec = WIRELESS,
    ) -> "SingleRingMulticast":
        """Construct a ring of ``n_bs`` base stations with attached MHs.

        Base stations get ids ``bs:0 … bs:{n-1}``; the token ring spans
        all of them (it is the hierarchy's top — and only — ring), and
        every BS serves ``mhs_per_bs`` mobile hosts.
        """
        if n_bs < 1:
            raise ValueError("need at least one base station")
        fabric = Fabric(sim)
        hierarchy = Hierarchy()
        bss = [make_id("bs", i) for i in range(n_bs)]
        ring = LogicalRing("ring:bs", bss, leader=bss[0])
        # BS tier plays the BR role: the single ring is the ordering ring.
        hierarchy.add_ring(ring, Tier.BR, top=True)
        for i, bs in enumerate(bss):
            hierarchy.candidate_neighbors[bs] = [b for b in bss if b != bs]
        # Ring links plus candidate-neighbor fail-over links: after a BS
        # crash the maintenance splice pairs non-adjacent survivors, so
        # the links the repair assumes must exist up front (exactly what
        # provision_links does for the regular hierarchy; hand-wiring
        # only i -> i+1 left crash recovery without a path — found by
        # the validation fuzzer).
        provision_links(fabric, hierarchy, wired=wired, wireless=wireless)
        net = cls(sim, fabric, hierarchy, cfg=cfg, wireless=wireless)
        for i, bs in enumerate(bss):
            for m in range(mhs_per_bs):
                net.add_mobile_host(make_id("mh", i, m), bs)
        return net

    # ------------------------------------------------------------------
    @property
    def base_stations(self) -> List[NodeId]:
        """Ring members in ring order."""
        return self.hierarchy.top_ring.members

    def ring_peak_buffers(self) -> dict:
        """Max per-BS WQ/MQ occupancy — the quantity [16] grows with N."""
        reports = self.buffer_reports()
        return {
            "wq_peak": max(r["wq_peak"] for r in reports),
            "mq_peak": max(r["mq_peak"] for r in reports),
        }
