"""Comparator protocols, all on the same simulator/fabric substrate.

The paper positions RingNet against several prior schemes; its own
comparisons are qualitative, so this package implements executable
versions to make them measurable:

* :mod:`repro.baselines.unordered` — RingNet **without** ordering
  (paper Remark 3): same hierarchy and reliability, no token, deliver on
  arrival.  The Theorem 5.1 throughput-parity and the Remark 3 latency
  ablation run against this.
* :mod:`repro.baselines.single_ring` — the one-big-logical-ring reliable
  multicast of Nikolaidis & Harms [16]: every base station in a single
  token ring.  The paper's criticism — "large latency and large buffers
  when the ring becomes large" — is experiment E6.
* :mod:`repro.baselines.hostview` — the two-tier Host-View scheme of
  Acharya & Badrinath [1]: senders unicast to the set of MSSs hosting
  members; every significant move triggers a global view update.
* :mod:`repro.baselines.relm` — the three-tier RelM scheme of Brown &
  Singh [6]: Supervisor Hosts buffer and route for regions of MSSs.
* :mod:`repro.baselines.sequencer` — a classic central-sequencer total
  order, as an ordering-latency ablation for the token approach.
"""

from repro.baselines.common import BaselineMH, PlainDeliver
from repro.baselines.unordered import UnorderedRingNet
from repro.baselines.single_ring import SingleRingMulticast
from repro.baselines.hostview import HostViewProtocol
from repro.baselines.relm import RelMProtocol
from repro.baselines.sequencer import SequencerMulticast

__all__ = [
    "BaselineMH",
    "PlainDeliver",
    "UnorderedRingNet",
    "SingleRingMulticast",
    "HostViewProtocol",
    "RelMProtocol",
    "SequencerMulticast",
]
