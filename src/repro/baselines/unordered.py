"""RingNet without total ordering (paper Remark 3).

"If totally-ordered property is not required, then multicast using the
RingNet hierarchy will be more efficient and message latency will
decrease due to the fact that ordering operations are not required in
the top logical ring."

Same hierarchy, same links, same reliable channels — but no token, no
WQ/Order-Assignment wait, no in-sequence delivery gating.  Every node
forwards on arrival:

* a top-ring node receiving a source message floods it around the top
  ring (stop before the originating node) and delivers it down;
* lower rings forward leader-injected messages around (stop before the
  leader) and each member delivers down;
* APs deliver to attached member MHs on arrival.

Duplicates are suppressed by (source, local_seq) at every hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.common import (
    BaselineMH,
    BaselineSource,
    Deregister,
    PlainDeliver,
    Register,
)
from repro.net.address import NodeId, make_id, tier_of
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.sim.engine import Simulator
from repro.topology.builder import (
    HierarchySpec,
    build_hierarchy,
    initial_attachments,
    provision_links,
)
from repro.topology.hierarchy import Hierarchy, NeighborView
from repro.topology.tiers import Tier


class RawFlood(Message):
    """A data message circulating a ring / flowing down the tree."""

    __slots__ = ("origin_ring_node", "source", "local_seq", "payload",
                 "created_at")

    def __init__(self, origin_ring_node: NodeId, source: NodeId,
                 local_seq: int, payload, created_at: float):
        self.origin_ring_node = origin_ring_node
        self.source = source
        self.local_seq = local_seq
        self.payload = payload
        self.created_at = created_at


class UnorderedNE(NetNode):
    """A BR/AG/AP in the unordered variant: forward-on-arrival."""

    def __init__(self, fabric: Fabric, node_id: NodeId, view: NeighborView,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.view = view
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)
        self._seen: Set[Tuple[NodeId, int]] = set()
        self.members: Set[NodeId] = set()
        self.buffered_peak = 0

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            # Source injection at a top-ring node.
            self._ingest(RawFlood(self.id, payload.source, payload.local_seq,
                                  payload.payload, payload.created_at),
                         ring_origin=True)
        elif isinstance(payload, RawFlood):
            self._ingest(payload, ring_origin=False)
        elif isinstance(payload, Register):
            self.members.add(payload.mh)
        elif isinstance(payload, Deregister):
            self.members.discard(payload.mh)

    def _ingest(self, msg: RawFlood, ring_origin: bool) -> None:
        key = (msg.source, msg.local_seq)
        if key in self._seen:
            return
        self._seen.add(key)
        if len(self._seen) > self.buffered_peak:
            self.buffered_peak = len(self._seen)
        self._ring_forward(msg)
        self._deliver_down(msg)

    def _ring_forward(self, msg: RawFlood) -> None:
        nxt = self.view.next
        if nxt is None or nxt == self.id:
            return
        if self.view.in_top_ring:
            stop = msg.origin_ring_node  # full circle
        else:
            stop = self.view.leader  # leader injected it
        if nxt == stop:
            return
        self.chan.send(nxt, RawFlood(msg.origin_ring_node, msg.source,
                                     msg.local_seq, msg.payload,
                                     msg.created_at))

    def _deliver_down(self, msg: RawFlood) -> None:
        for child in self.view.children:
            self.chan.send(child, RawFlood(child, msg.source, msg.local_seq,
                                           msg.payload, msg.created_at))
        for mh in self.members:
            self.chan.send(mh, PlainDeliver(msg.source, msg.local_seq,
                                            msg.local_seq, msg.payload,
                                            msg.created_at))


class UnorderedRingNet:
    """Facade mirroring :class:`repro.core.protocol.RingNet`'s surface."""

    def __init__(self, sim: Simulator, fabric: Fabric, hierarchy: Hierarchy,
                 wireless: LinkSpec = WIRELESS, rto: float = 25.0,
                 max_retries: int = 5):
        self.sim = sim
        self.fabric = fabric
        self.hierarchy = hierarchy
        self.wireless = wireless
        self.rto = rto
        self.max_retries = max_retries
        self.nes: Dict[NodeId, UnorderedNE] = {}
        self.sources: Dict[NodeId, BaselineSource] = {}
        self.mobile_hosts: Dict[NodeId, BaselineMH] = {}
        for node_id, tier in sorted(hierarchy.tier_of.items()):
            if tier is Tier.MH:
                continue
            self.nes[node_id] = UnorderedNE(
                fabric, node_id, hierarchy.neighbor_view(node_id),
                rto=rto, max_retries=max_retries,
            )

    @classmethod
    def build(cls, sim: Simulator, spec: HierarchySpec,
              wired: LinkSpec = WIRED, wireless: LinkSpec = WIRELESS,
              attach_mhs: bool = True, rto: float = 25.0,
              max_retries: int = 5) -> "UnorderedRingNet":
        """One-call construction matching ``RingNet.build``."""
        fabric = Fabric(sim)
        hierarchy = build_hierarchy(spec)
        provision_links(fabric, hierarchy, wired=wired, wireless=wireless)
        net = cls(sim, fabric, hierarchy, wireless=wireless, rto=rto,
                  max_retries=max_retries)
        if attach_mhs:
            for mh_id, ap_id in initial_attachments(spec).items():
                net.add_mobile_host(mh_id, ap_id)
        return net

    def start(self) -> None:
        """No periodic machinery to start; present for API parity."""

    def add_source(self, source_id: Optional[NodeId] = None,
                   corresponding: Optional[NodeId] = None,
                   rate_per_sec: float = 10.0,
                   pattern: str = "cbr") -> BaselineSource:
        """Attach a source to a top-ring node."""
        if corresponding is None:
            members = self.hierarchy.top_ring.members
            corresponding = members[len(self.sources) % len(members)]
        if source_id is None:
            source_id = make_id("src", len(self.sources))
        src = BaselineSource(self.fabric, source_id, corresponding,
                             rate_per_sec, pattern,
                             rto=self.rto, max_retries=self.max_retries)
        self.fabric.connect(source_id, corresponding, WIRED)
        self.sources[source_id] = src
        return src

    def add_mobile_host(self, mh_id: NodeId, ap_id: NodeId,
                        join: bool = True) -> BaselineMH:
        """Create an MH attached at ``ap_id``."""
        mh = BaselineMH(self.fabric, mh_id, rto=30.0,
                        max_retries=self.max_retries)
        self.fabric.connect(mh_id, ap_id, self.wireless)
        self.mobile_hosts[mh_id] = mh
        if join:
            mh.join(ap_id)
        return mh

    def handoff(self, mh_id: NodeId, new_ap: NodeId) -> None:
        """Move an MH to a new AP."""
        mh = self.mobile_hosts[mh_id]
        if self.fabric.link(mh_id, new_ap) is None:
            self.fabric.connect(mh_id, new_ap, self.wireless)
        mh.handoff_to(new_ap)

    def member_hosts(self) -> List[BaselineMH]:
        """All current member MHs."""
        return [m for m in self.mobile_hosts.values() if m.is_member]

    def total_app_deliveries(self) -> int:
        """Application deliveries summed over all MHs."""
        return sum(m.delivered_count for m in self.mobile_hosts.values())
