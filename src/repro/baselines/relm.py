"""The three-tier RelM scheme of Brown & Singh [6].

"The bottom tier consists of the MHs ... The middle tier consists of
MSSs ... The top tier consists of groups of MSSs.  Each group of MSSs is
controlled by an assigned supervisor machine called the Supervisor Host
(SH).  The SH is part of the wired network and it handles most of the
routing and protocol details for MHs."  RelM's selling point versus
Host-View is buffer concentration: buffering happens **once per region
at the SH** instead of at every MSS, "using fewer buffers in virtually
any system configuration"; its weakness (which RingNet targets) is that
SHs become bottlenecks as groups grow.

Implementation: the source unicasts each message to every SH; the SH
buffers it until every member-hosting MSS in its region acks, and keeps
a bounded catch-up window for intra-region handoffs; MSSs hold no buffer
beyond channel in-flight state and relay to attached members.  A handoff
re-registers the MH through the new MSS with its SH; intra-region
catch-up is served from the SH window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.common import (
    BaselineMH,
    BaselineSource,
    Deregister,
    PlainDeliver,
    Register,
)
from repro.net.address import NodeId, make_id
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.sim.engine import Simulator


class MemberReport(Message):
    """MSS → SH: my member count changed (hosting / not hosting)."""

    size_bits = 128

    __slots__ = ("mss", "hosting")

    def __init__(self, mss: NodeId, hosting: bool):
        self.mss = mss
        self.hosting = hosting


class CatchUpRequest(Message):
    """MSS → SH: re-send your buffered window to me (post-handoff)."""

    size_bits = 128

    __slots__ = ("mss",)

    def __init__(self, mss: NodeId):
        self.mss = mss


class SupervisorHost(NetNode):
    """The SH: per-region buffering, routing, and catch-up service."""

    def __init__(self, fabric: Fabric, node_id: NodeId,
                 catchup_window: int = 64,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.catchup_window = catchup_window
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries,
                                    on_ack=self._on_ack)
        self.region_msss: List[NodeId] = []
        self.hosting: Set[NodeId] = set()
        #: local_seq -> (message, MSSs still owing an ack).
        self._unacked: Dict[int, tuple] = {}
        #: Recent messages kept for catch-up, by local_seq.
        self._window: Dict[int, PlainDeliver] = {}
        self.peak_buffer = 0

    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            self._route(payload)
        elif isinstance(payload, MemberReport):
            if payload.hosting:
                self.hosting.add(payload.mss)
            else:
                self.hosting.discard(payload.mss)
        elif isinstance(payload, CatchUpRequest):
            for seq in sorted(self._window):
                m = self._window[seq]
                self.chan.send(payload.mss, PlainDeliver(
                    m.source, m.local_seq, m.seq, m.payload, m.created_at))

    def _route(self, msg: PlainDeliver) -> None:
        targets = set(self.hosting)
        if targets:
            self._unacked[msg.local_seq] = (msg, targets)
            for mss in targets:
                self.chan.send(mss, PlainDeliver(
                    msg.source, msg.local_seq, msg.seq, msg.payload,
                    msg.created_at))
        self._window[msg.local_seq] = msg
        if len(self._window) > self.catchup_window:
            del self._window[min(self._window)]
        occupancy = len(self._unacked) + len(self._window)
        self.peak_buffer = max(self.peak_buffer, occupancy)

    def _on_ack(self, dst: NodeId, payload: Message) -> None:
        if isinstance(payload, PlainDeliver):
            entry = self._unacked.get(payload.local_seq)
            if entry is not None:
                entry[1].discard(dst)
                if not entry[1]:
                    del self._unacked[payload.local_seq]


class RelMMSS(NetNode):
    """An MSS: relays SH traffic to attached members (no deep buffer)."""

    def __init__(self, fabric: Fabric, node_id: NodeId, sh: NodeId,
                 rto: float = 25.0, max_retries: int = 5):
        NetNode.__init__(self, fabric, node_id)
        self.sh = sh
        self.chan = ReliableChannel(self, rto=rto, max_retries=max_retries)
        self.members: Set[NodeId] = set()
        self._seen: Set[int] = set()
        self.peak_inflight = 0

    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, PlainDeliver):
            if payload.local_seq in self._seen:
                return
            self._seen.add(payload.local_seq)
            for mh in self.members:
                self.chan.send(mh, PlainDeliver(
                    payload.source, payload.local_seq, payload.seq,
                    payload.payload, payload.created_at))
            self.peak_inflight = max(self.peak_inflight, self.chan.in_flight)
        elif isinstance(payload, Register):
            first = not self.members
            self.members.add(payload.mh)
            if first:
                self.chan.send(self.sh, MemberReport(self.id, hosting=True))
            # Post-handoff catch-up from the SH's window.
            self.chan.send(self.sh, CatchUpRequest(self.id))
        elif isinstance(payload, Deregister):
            self.members.discard(payload.mh)
            if not self.members:
                self.chan.send(self.sh, MemberReport(self.id, hosting=False))


class RelMProtocol:
    """Facade: source → SHs → MSSs → MHs, one SH per region."""

    def __init__(self, sim: Simulator, n_regions: int, msss_per_region: int,
                 rate_per_sec: float = 10.0, catchup_window: int = 64,
                 wired: LinkSpec = WIRED, wireless: LinkSpec = WIRELESS):
        if n_regions < 1 or msss_per_region < 1:
            raise ValueError("need at least one region and one MSS per region")
        self.sim = sim
        self.fabric = Fabric(sim)
        self.wireless = wireless
        self.shs: Dict[NodeId, SupervisorHost] = {}
        self.msss: Dict[NodeId, RelMMSS] = {}
        self.region_of: Dict[NodeId, NodeId] = {}
        for r in range(n_regions):
            sh_id = make_id("sh", r)
            sh = SupervisorHost(self.fabric, sh_id,
                                catchup_window=catchup_window)
            self.shs[sh_id] = sh
            for m in range(msss_per_region):
                mss_id = make_id("mss", r, m)
                self.msss[mss_id] = RelMMSS(self.fabric, mss_id, sh_id)
                self.region_of[mss_id] = sh_id
                sh.region_msss.append(mss_id)
                self.fabric.connect(sh_id, mss_id, wired)
        # The source fans out to every SH.
        self.source = BaselineSource(self.fabric, "src:0",
                                     sink=next(iter(self.shs)),
                                     rate_per_sec=rate_per_sec)
        self._fan_out_source(wired)
        self.mobile_hosts: Dict[NodeId, BaselineMH] = {}

    def _fan_out_source(self, wired: LinkSpec) -> None:
        # Replace the single-sink emit with an SH fan-out.
        for sh_id in self.shs:
            self.fabric.connect(self.source.id, sh_id, wired)
        original_emit = self.source._emit
        source = self.source
        shs = list(self.shs)

        def fan_out_emit() -> None:
            if not source._running:
                return
            seq = source.local_seq
            for sh_id in shs:
                source.chan.send(sh_id, PlainDeliver(
                    source.id, seq, seq, (source.id, seq), source.now))
            source.sim.trace.emit(source.now, "source.send", source=source.id,
                                  local_seq=seq, corresponding="<all-sh>")
            source.local_seq += 1
            source.sent += 1
            source._timer.start(source._next_gap())

        self.source._emit = fan_out_emit  # type: ignore[method-assign]
        self.source._timer.fn = fan_out_emit

    def start(self) -> None:
        """Present for API parity with RingNet."""

    def add_mobile_host(self, mh_id: NodeId, mss_id: NodeId,
                        join: bool = True) -> BaselineMH:
        """Create an MH attached at an MSS."""
        mh = BaselineMH(self.fabric, mh_id)
        self.fabric.connect(mh_id, mss_id, self.wireless)
        self.mobile_hosts[mh_id] = mh
        if join:
            mh.join(mss_id)
        return mh

    def handoff(self, mh_id: NodeId, new_mss: NodeId) -> None:
        """Move an MH to a new MSS."""
        mh = self.mobile_hosts[mh_id]
        if self.fabric.link(mh_id, new_mss) is None:
            self.fabric.connect(mh_id, new_mss, self.wireless)
        mh.handoff_to(new_mss)

    def member_hosts(self) -> List[BaselineMH]:
        """All current member MHs."""
        return [m for m in self.mobile_hosts.values() if m.is_member]

    def peak_buffers(self) -> dict:
        """SH-concentrated buffer usage (the E8 metric)."""
        sh_peaks = [s.peak_buffer for s in self.shs.values()]
        mss_peaks = [m.peak_inflight for m in self.msss.values()]
        return {
            "sh_peak_max": max(sh_peaks, default=0),
            "mss_peak_max": max(mss_peaks, default=0),
            "total_peak": sum(sh_peaks) + sum(mss_peaks),
        }
