"""Trace-bus collectors for the quantities the experiments report."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.report import summarize
from repro.net.address import NodeId
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceBus, TraceRecord


class LatencyCollector:
    """End-to-end delivery latency: source send → MH app delivery.

    Subscribes to ``mh.deliver`` (which carries ``latency``); also keeps
    per-MH samples for fairness checks.
    """

    def __init__(self, trace: TraceBus, warmup: float = 0.0):
        self.warmup = warmup
        self.samples: List[float] = []
        self.by_mh: Dict[NodeId, List[float]] = defaultdict(list)
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_deliver(self, rec: TraceRecord) -> None:
        if rec.time < self.warmup:
            return
        lat = rec["latency"]
        self.samples.append(lat)
        self.by_mh[rec["mh"]].append(lat)

    def summary(self) -> Dict[str, float]:
        """mean/p50/p95/p99/max over all deliveries after warmup."""
        return summarize(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)


class ThroughputCollector:
    """Send and delivery rates over a measurement window.

    * ``sent_rate(t0, t1)`` — source messages per second (aggregate).
    * ``goodput(t0, t1)`` — per-MH average app deliveries per second;
      for the Theorem 5.1 check this should match the aggregate source
      rate ``s·λ`` when ordering keeps up.
    """

    def __init__(self, trace: TraceBus):
        self.sends: List[float] = []
        self.deliveries: Dict[NodeId, List[float]] = defaultdict(list)
        trace.subscribe("source.send", self._on_send)
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_send(self, rec: TraceRecord) -> None:
        self.sends.append(rec.time)

    def _on_deliver(self, rec: TraceRecord) -> None:
        self.deliveries[rec["mh"]].append(rec.time)

    @staticmethod
    def _rate(times: Sequence[float], t0: float, t1: float) -> float:
        n = sum(1 for t in times if t0 <= t < t1)
        span_s = (t1 - t0) / 1000.0
        return n / span_s if span_s > 0 else 0.0

    def sent_rate(self, t0: float, t1: float) -> float:
        """Aggregate source rate (msg/s) in [t0, t1)."""
        return self._rate(self.sends, t0, t1)

    def goodput(self, t0: float, t1: float) -> float:
        """Mean per-MH delivery rate (msg/s) in [t0, t1)."""
        if not self.deliveries:
            return 0.0
        rates = [self._rate(ts, t0, t1) for ts in self.deliveries.values()]
        return sum(rates) / len(rates)

    def min_goodput(self, t0: float, t1: float) -> float:
        """Slowest MH's delivery rate (msg/s) in [t0, t1)."""
        if not self.deliveries:
            return 0.0
        return min(self._rate(ts, t0, t1) for ts in self.deliveries.values())


class BufferSampler:
    """Periodic occupancy sampling of protocol buffers (E3).

    ``probe`` is called every ``period`` and must return a list of
    ``{"node": ..., "wq": int, "mq": int, ...}`` dicts
    (``RingNet.buffer_reports`` has this shape).  Peaks are tracked both
    per node and globally.
    """

    def __init__(self, sim: Simulator, probe: Callable[[], List[dict]],
                 period: float = 20.0, warmup: float = 0.0):
        self.sim = sim
        self.probe = probe
        self.warmup = warmup
        self.peak_wq: Dict[NodeId, int] = defaultdict(int)
        self.peak_mq: Dict[NodeId, int] = defaultdict(int)
        self.series: List[Tuple[float, int, int]] = []  # (t, tot wq, tot mq)
        self._timer = PeriodicTimer(sim, period, self._sample)

    def start(self) -> None:
        """Begin sampling."""
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        if self.sim.now < self.warmup:
            return
        reports = self.probe()
        tot_wq = tot_mq = 0
        for r in reports:
            node = r["node"]
            wq, mq = r["wq"], r["mq"]
            tot_wq += wq
            tot_mq += mq
            if wq > self.peak_wq[node]:
                self.peak_wq[node] = wq
            if mq > self.peak_mq[node]:
                self.peak_mq[node] = mq
        self.series.append((self.sim.now, tot_wq, tot_mq))

    def max_wq(self) -> int:
        """Largest per-node WQ occupancy observed."""
        return max(self.peak_wq.values(), default=0)

    def max_mq(self) -> int:
        """Largest per-node MQ occupancy observed."""
        return max(self.peak_mq.values(), default=0)


class TokenRotationCollector:
    """Measured token rotation times (T_order) from ``token.hold``."""

    def __init__(self, trace: TraceBus):
        self._last_hold: Dict[NodeId, float] = {}
        self.rotations: List[float] = []
        trace.subscribe("token.hold", self._on_hold)

    def _on_hold(self, rec: TraceRecord) -> None:
        node = rec["node"]
        prev = self._last_hold.get(node)
        if prev is not None:
            self.rotations.append(rec.time - prev)
        self._last_hold[node] = rec.time

    def summary(self) -> Dict[str, float]:
        """Rotation time distribution (ms)."""
        return summarize(self.rotations)


class InterruptionCollector:
    """Post-handoff service interruption (E7).

    For each ``mh.handoff`` record, the interruption is the gap between
    the handoff instant and that MH's next ``mh.deliver``.  MHs that
    never deliver again before the run ends contribute ``inf``-free
    censored entries counted separately.
    """

    def __init__(self, trace: TraceBus):
        self._pending: Dict[NodeId, float] = {}
        self.interruptions: List[float] = []
        self.censored = 0
        trace.subscribe("mh.handoff", self._on_handoff)
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_handoff(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        if mh in self._pending:
            self.censored += 1  # handed off again before any delivery
        self._pending[mh] = rec.time

    def _on_deliver(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        t0 = self._pending.pop(mh, None)
        if t0 is not None:
            self.interruptions.append(rec.time - t0)

    def summary(self) -> Dict[str, float]:
        """Interruption distribution (ms)."""
        return summarize(self.interruptions)


class ReliabilityCollector:
    """Delivery ratio and loss accounting (E10).

    Counts app deliveries and loss tombstones per MH; the delivery ratio
    for an MH is delivered / (delivered + tombstoned).
    """

    def __init__(self, trace: TraceBus):
        self.delivered: Dict[NodeId, int] = defaultdict(int)
        self.tombstoned: Dict[NodeId, int] = defaultdict(int)
        trace.subscribe("mh.deliver", self._on_deliver)
        trace.subscribe("mh.tombstone", self._on_tombstone)

    def _on_deliver(self, rec: TraceRecord) -> None:
        self.delivered[rec["mh"]] += 1

    def _on_tombstone(self, rec: TraceRecord) -> None:
        self.tombstoned[rec["mh"]] += 1

    def delivery_ratio(self) -> float:
        """Aggregate delivered / (delivered + tombstoned)."""
        d = sum(self.delivered.values())
        t = sum(self.tombstoned.values())
        return d / (d + t) if (d + t) else 1.0

    def worst_mh_ratio(self) -> float:
        """The worst per-MH delivery ratio."""
        ratios = []
        for mh in set(self.delivered) | set(self.tombstoned):
            d, t = self.delivered[mh], self.tombstoned[mh]
            ratios.append(d / (d + t) if (d + t) else 1.0)
        return min(ratios, default=1.0)
