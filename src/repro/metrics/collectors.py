"""Trace-bus collectors for the quantities the experiments report.

Memory model: per-entity state is *aggregated*, not per-delivery.  At
the million-endpoint scale a per-MH list of delivery timestamps or
latency samples dominates the heap, so :class:`LatencyCollector` keeps
one fixed-size :class:`RunningStats` per MH and per time window, and
:class:`ThroughputCollector` buckets events into integer counts per
window — O(windows), not O(messages).  The one unbounded structure left
is the latency collector's global ``samples`` list, kept so the summary
percentiles stay exact (it is the reporting artifact itself, and grows
with total traffic, not with population size).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Tuple

from repro.metrics.report import summarize
from repro.net.address import NodeId
from repro.runtime.api import Runtime
from repro.runtime.timers import PeriodicTimer
from repro.sim.trace import TraceBus, TraceRecord


class RunningStats:
    """Constant-size scalar aggregate: count / sum / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {"count": self.count, "mean": self.mean,
                "min": self.min, "max": self.max}


class LatencyCollector:
    """End-to-end delivery latency: source send → MH app delivery.

    Subscribes to ``mh.deliver`` (which carries ``latency``).  Keeps an
    exact global sample list for the percentile summary, a constant-size
    :class:`RunningStats` per MH for fairness checks, and windowed
    aggregates (``window_ms`` buckets) for time-series views.
    """

    def __init__(self, trace: TraceBus, warmup: float = 0.0,
                 window_ms: float = 100.0):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.warmup = warmup
        self.window_ms = window_ms
        self.samples: List[float] = []
        self.by_mh: Dict[NodeId, RunningStats] = defaultdict(RunningStats)
        self.windows: Dict[int, RunningStats] = defaultdict(RunningStats)
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_deliver(self, rec: TraceRecord) -> None:
        if rec.time < self.warmup:
            return
        lat = rec["latency"]
        self.samples.append(lat)
        self.by_mh[rec["mh"]].add(lat)
        self.windows[int(rec.time // self.window_ms)].add(lat)

    def summary(self) -> Dict[str, float]:
        """mean/p50/p95/p99/max over all deliveries after warmup."""
        return summarize(self.samples)

    def mh_summary(self) -> Dict[NodeId, Dict[str, float]]:
        """Per-MH latency aggregates (count/mean/min/max)."""
        return {mh: stats.as_dict() for mh, stats in self.by_mh.items()}

    def window_series(self) -> List[Tuple[float, Dict[str, float]]]:
        """``(window_start_ms, aggregate)`` pairs in time order."""
        return [(w * self.window_ms, self.windows[w].as_dict())
                for w in sorted(self.windows)]

    @property
    def count(self) -> int:
        return len(self.samples)


class ThroughputCollector:
    """Send and delivery rates over a measurement window.

    * ``sent_rate(t0, t1)`` — source messages per second (aggregate).
    * ``goodput(t0, t1)`` — per-MH average app deliveries per second;
      for the Theorem 5.1 check this should match the aggregate source
      rate ``s·λ`` when ordering keeps up.

    Events are bucketed into integer counts per ``window_ms`` window at
    record time, so per-MH state is O(windows) rather than one float per
    delivery.  Rates over ``[t0, t1)`` count the windows whose *start*
    falls in the interval — exact whenever ``t0``/``t1`` are multiples
    of ``window_ms`` (every measurement interval in the experiments is),
    off by at most one boundary window otherwise.
    """

    def __init__(self, trace: TraceBus, window_ms: float = 100.0):
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.window_ms = window_ms
        self.sends: Dict[int, int] = defaultdict(int)
        self.deliveries: Dict[NodeId, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int))
        trace.subscribe("source.send", self._on_send)
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_send(self, rec: TraceRecord) -> None:
        self.sends[int(rec.time // self.window_ms)] += 1

    def _on_deliver(self, rec: TraceRecord) -> None:
        self.deliveries[rec["mh"]][int(rec.time // self.window_ms)] += 1

    def _rate(self, windows: Dict[int, int], t0: float, t1: float) -> float:
        span_s = (t1 - t0) / 1000.0
        if span_s <= 0:
            return 0.0
        n = sum(c for w, c in windows.items()
                if t0 <= w * self.window_ms < t1)
        return n / span_s

    def sent_rate(self, t0: float, t1: float) -> float:
        """Aggregate source rate (msg/s) in [t0, t1)."""
        return self._rate(self.sends, t0, t1)

    def goodput(self, t0: float, t1: float) -> float:
        """Mean per-MH delivery rate (msg/s) in [t0, t1)."""
        if not self.deliveries:
            return 0.0
        rates = [self._rate(ws, t0, t1) for ws in self.deliveries.values()]
        return sum(rates) / len(rates)

    def min_goodput(self, t0: float, t1: float) -> float:
        """Slowest MH's delivery rate (msg/s) in [t0, t1)."""
        if not self.deliveries:
            return 0.0
        return min(self._rate(ws, t0, t1) for ws in self.deliveries.values())


class BufferSampler:
    """Periodic occupancy sampling of protocol buffers (E3).

    ``probe`` is called every ``period`` and must return a list of
    ``{"node": ..., "wq": int, "mq": int, ...}`` dicts
    (``RingNet.buffer_reports`` has this shape).  Peaks are tracked both
    per node and globally.
    """

    def __init__(self, sim: Runtime, probe: Callable[[], List[dict]],
                 period: float = 20.0, warmup: float = 0.0):
        self.sim = sim
        self.probe = probe
        self.warmup = warmup
        self.peak_wq: Dict[NodeId, int] = defaultdict(int)
        self.peak_mq: Dict[NodeId, int] = defaultdict(int)
        self.series: List[Tuple[float, int, int]] = []  # (t, tot wq, tot mq)
        self._timer = PeriodicTimer(sim, period, self._sample)

    def start(self) -> None:
        """Begin sampling."""
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    def _sample(self) -> None:
        if self.sim.now < self.warmup:
            return
        reports = self.probe()
        tot_wq = tot_mq = 0
        for r in reports:
            node = r["node"]
            wq, mq = r["wq"], r["mq"]
            tot_wq += wq
            tot_mq += mq
            if wq > self.peak_wq[node]:
                self.peak_wq[node] = wq
            if mq > self.peak_mq[node]:
                self.peak_mq[node] = mq
        self.series.append((self.sim.now, tot_wq, tot_mq))

    def max_wq(self) -> int:
        """Largest per-node WQ occupancy observed."""
        return max(self.peak_wq.values(), default=0)

    def max_mq(self) -> int:
        """Largest per-node MQ occupancy observed."""
        return max(self.peak_mq.values(), default=0)


class TokenRotationCollector:
    """Measured token rotation times (T_order) from ``token.hold``."""

    def __init__(self, trace: TraceBus):
        self._last_hold: Dict[NodeId, float] = {}
        self.rotations: List[float] = []
        trace.subscribe("token.hold", self._on_hold)

    def _on_hold(self, rec: TraceRecord) -> None:
        node = rec["node"]
        prev = self._last_hold.get(node)
        if prev is not None:
            self.rotations.append(rec.time - prev)
        self._last_hold[node] = rec.time

    def summary(self) -> Dict[str, float]:
        """Rotation time distribution (ms)."""
        return summarize(self.rotations)


class InterruptionCollector:
    """Post-handoff service interruption (E7).

    For each ``mh.handoff`` record, the interruption is the gap between
    the handoff instant and that MH's next ``mh.deliver``.  MHs that
    never deliver again before the run ends contribute ``inf``-free
    censored entries counted separately.
    """

    def __init__(self, trace: TraceBus):
        self._pending: Dict[NodeId, float] = {}
        self.interruptions: List[float] = []
        self.censored = 0
        trace.subscribe("mh.handoff", self._on_handoff)
        trace.subscribe("mh.deliver", self._on_deliver)

    def _on_handoff(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        if mh in self._pending:
            self.censored += 1  # handed off again before any delivery
        self._pending[mh] = rec.time

    def _on_deliver(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        t0 = self._pending.pop(mh, None)
        if t0 is not None:
            self.interruptions.append(rec.time - t0)

    def summary(self) -> Dict[str, float]:
        """Interruption distribution (ms)."""
        return summarize(self.interruptions)


class ReliabilityCollector:
    """Delivery ratio and loss accounting (E10).

    Counts app deliveries and loss tombstones per MH; the delivery ratio
    for an MH is delivered / (delivered + tombstoned).
    """

    def __init__(self, trace: TraceBus):
        self.delivered: Dict[NodeId, int] = defaultdict(int)
        self.tombstoned: Dict[NodeId, int] = defaultdict(int)
        trace.subscribe("mh.deliver", self._on_deliver)
        trace.subscribe("mh.tombstone", self._on_tombstone)

    def _on_deliver(self, rec: TraceRecord) -> None:
        self.delivered[rec["mh"]] += 1

    def _on_tombstone(self, rec: TraceRecord) -> None:
        self.tombstoned[rec["mh"]] += 1

    def delivery_ratio(self) -> float:
        """Aggregate delivered / (delivered + tombstoned)."""
        d = sum(self.delivered.values())
        t = sum(self.tombstoned.values())
        return d / (d + t) if (d + t) else 1.0

    def worst_mh_ratio(self) -> float:
        """The worst per-MH delivery ratio."""
        ratios = []
        for mh in set(self.delivered) | set(self.tombstoned):
            d, t = self.delivered[mh], self.tombstoned[mh]
            ratios.append(d / (d + t) if (d + t) else 1.0)
        return min(ratios, default=1.0)
