"""Total-order verification.

Totally-ordered multicast requires (for every pair of receivers) that
messages be delivered in the *same relative order*.  With global
sequence numbers the check decomposes into three receiver-local
invariants plus one global one:

1. **Monotonicity** — each MH's delivered global sequences are strictly
   increasing.
2. **Gap accounting** — within an MH's membership span, every skipped
   sequence number corresponds to a recorded loss tombstone (best-effort
   reliability may drop messages, but silently skipping is a bug).
3. **Agreement** — the payload delivered for a given global sequence is
   identical at every MH (no two messages ever share a sequence).
4. **Validity** — every delivered payload was actually sent by a source.

The checker consumes ``mh.deliver`` / ``mh.tombstone`` / ``source.send``
trace records online (no post-processing of big logs needed) and
accumulates violations with enough detail to debug.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set, Tuple

from repro.net.address import NodeId
from repro.sim.trace import Subscriber, TraceBus, TraceRecord
from repro.validation.monitor import Monitor


class OrderChecker(Monitor):
    """Online total-order invariant checker.

    A :class:`~repro.validation.monitor.Monitor`: it detaches cleanly
    (``detach()`` / context manager) and composes into a
    :class:`~repro.validation.monitor.MonitorSuite` alongside the
    protocol-invariant monitors of :mod:`repro.validation.monitors`.
    """

    name = "total_order"

    def __init__(self, trace: Optional[TraceBus] = None,
                 check_validity: bool = True):
        self.check_validity = check_validity
        self._last_seq: Dict[NodeId, int] = {}
        self._expected_next: Dict[NodeId, Optional[int]] = {}
        self._tombstones: Dict[NodeId, Set[int]] = defaultdict(set)
        self._payload_of: Dict[int, Tuple[NodeId, int]] = {}
        self._sent: Set[Tuple[NodeId, int]] = set()
        self.deliveries_checked = 0
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        h: Dict[Optional[str], Subscriber] = {
            "mh.deliver": self._on_deliver,
            "mh.tombstone": self._on_tombstone,
            "mh.member": self._on_member,
        }
        if self.check_validity:
            h["source.send"] = self._on_send
        return h

    # ------------------------------------------------------------------
    def _on_send(self, rec: TraceRecord) -> None:
        self._sent.add((rec["source"], rec["local_seq"]))

    def _on_tombstone(self, rec: TraceRecord) -> None:
        self._tombstones[rec["mh"]].add(rec["gseq"])

    def _on_member(self, rec: TraceRecord) -> None:
        # A (re)join starts a new membership span: messages between the
        # previous span and the new base were legitimately missed, so gap
        # accounting restarts at the new base.
        self._expected_next[rec["mh"]] = rec["base"] + 1

    def _on_deliver(self, rec: TraceRecord) -> None:
        mh, gseq = rec["mh"], rec["gseq"]
        self.deliveries_checked += 1

        # 1. Monotonicity.
        last = self._last_seq.get(mh)
        if last is not None and gseq <= last:
            self.violation(
                f"monotonicity: {mh} delivered gseq {gseq} after {last}"
            )
        self._last_seq[mh] = gseq

        # 2. Gap accounting (only within the membership span).
        expected = self._expected_next.get(mh)
        if expected is not None:
            for missing in range(expected, gseq):
                if missing not in self._tombstones[mh]:
                    self.violation(
                        f"gap: {mh} skipped gseq {missing} with no tombstone"
                    )
        self._expected_next[mh] = gseq + 1

        # 3. Agreement.
        ident = (rec["source"], rec["local_seq"])
        known = self._payload_of.get(gseq)
        if known is None:
            self._payload_of[gseq] = ident
        elif known != ident:
            self.violation(
                f"agreement: gseq {gseq} is {known} at some MH but "
                f"{ident} at {mh}"
            )

        # 4. Validity.
        if self.check_validity and ident not in self._sent:
            self.violation(
                f"validity: {mh} delivered never-sent message {ident}"
            )

    # ------------------------------------------------------------------
    def assert_ok(self) -> None:
        """Raise AssertionError listing the first violations (tests)."""
        if not self.ok:
            head = "; ".join(self.violations[:5])
            raise AssertionError(
                f"{self.violation_count} total-order violations "
                f"({self.deliveries_checked} deliveries checked): {head}"
            )

    def report(self) -> dict:
        """Headline numbers for experiment tables."""
        return {
            "monitor": self.name,
            "deliveries": self.deliveries_checked,
            "distinct_gseqs": len(self._payload_of),
            "violations": self.violation_count,
        }
