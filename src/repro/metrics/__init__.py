"""Measurement layer: collectors, the order checker, and report tables.

Collectors subscribe to the simulator's trace bus, so they work
identically against RingNet and every baseline (all protocols emit the
same ``mh.deliver`` / ``source.send`` / buffer trace vocabulary).
"""

from repro.metrics.collectors import (
    BufferSampler,
    InterruptionCollector,
    LatencyCollector,
    ReliabilityCollector,
    ThroughputCollector,
    TokenRotationCollector,
)
from repro.metrics.order_checker import OrderChecker
from repro.metrics.report import format_table, percentile

__all__ = [
    "LatencyCollector",
    "ThroughputCollector",
    "BufferSampler",
    "TokenRotationCollector",
    "InterruptionCollector",
    "ReliabilityCollector",
    "OrderChecker",
    "format_table",
    "percentile",
]
