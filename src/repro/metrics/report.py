"""Small report helpers: percentiles and fixed-width tables.

The benchmark harness prints paper-style rows with
:func:`format_table`; keeping it dependency-free (no pandas offline)
and deterministic (stable column order) matters more than prettiness.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

try:  # numpy is optional here so experiment workers / the CLI can run
    import numpy as np  # without it (pure-python fallback below).
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None


def _percentile_py(sorted_vals: List[float], q: float) -> float:
    """Linear-interpolation percentile, bit-exact with numpy's default.

    numpy's ``linear`` method lerps as ``b - (b - a) * (1 - t)`` once
    ``t >= 0.5`` (and ``a + (b - a) * t`` below); mirroring both operand
    orders keeps results identical to the last float ulp, so reports
    from numpy-less CI diff clean against numpy-equipped runs.
    """
    n = len(sorted_vals)
    if n == 1:
        return sorted_vals[0]
    pos = (min(max(q, 0.0), 100.0) / 100.0) * (n - 1)
    lo = int(math.floor(pos))
    t = pos - lo
    a = sorted_vals[lo]
    b = sorted_vals[min(lo + 1, n - 1)]
    d = b - a
    if t >= 0.5:
        return b - d * (1.0 - t)
    return a + d * t


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) of ``values``; 0.0 when empty."""
    if not len(values):
        return 0.0
    if np is not None:
        return float(np.percentile(np.asarray(values, dtype=float), q))
    return _percentile_py(sorted(float(v) for v in values), q)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """mean / p50 / p95 / p99 / max summary of a sample."""
    if not len(values):
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    if np is not None:
        arr = np.asarray(values, dtype=float)
        return {
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }
    vals = sorted(float(v) for v in values)
    return {
        "mean": math.fsum(vals) / len(vals),
        "p50": _percentile_py(vals, 50),
        "p95": _percentile_py(vals, 95),
        "p99": _percentile_py(vals, 99),
        "max": vals[-1],
    }


def format_table(rows: Iterable[Dict[str, object]],
                 columns: Sequence[str] | None = None,
                 float_fmt: str = "{:.2f}") -> str:
    """Render dict rows as an aligned text table.

    Column order: ``columns`` if given, else the keys of the first row.
    Floats go through ``float_fmt``; everything else through ``str``.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    rendered = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered))
              for i, c in enumerate(cols)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(cols)))
        for row in rendered
    )
    return f"{header}\n{sep}\n{body}"
