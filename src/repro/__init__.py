"""RingNet: a reliable totally-ordered group multicast protocol for
mobile Internet — a full reproduction of Wang, Cao & Chan (ICPPW 2004).

Package map
-----------
* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.net` — network substrate (links, fabric, reliable transport).
* :mod:`repro.topology` — the RingNet hierarchy (rings + tree).
* :mod:`repro.membership` — group membership bookkeeping.
* :mod:`repro.mobility` — cells, movement models, handoff driving.
* :mod:`repro.core` — **the paper's protocol**: ordering, forwarding,
  delivering, token recovery, MMAs, handoff.
* :mod:`repro.baselines` — unordered / single-ring / Host-View / RelM /
  sequencer comparators.
* :mod:`repro.metrics` — collectors and the total-order checker.
* :mod:`repro.analysis` — Theorem 5.1 bounds.
* :mod:`repro.workloads` — sources, churn, the runnable Scenario bundle.
* :mod:`repro.experiments` — **declarative experiments**: specs, grids,
  the parallel sweep runner, machine-readable results, the scenario
  registry, and the ``python -m repro.experiments`` CLI.
* :mod:`repro.validation` — **machine-checked conformance**: online
  protocol-invariant monitors (token uniqueness/liveness, membership
  consistency, handoff atomicity, buffer boundedness, post-failure
  recovery), deterministic trace record/replay/diff, and a
  scenario-fuzzing harness (``python -m repro.validation``).

Quickstart
----------
>>> from repro.sim import Simulator
>>> from repro.core import RingNet
>>> from repro.topology import HierarchySpec
>>> sim = Simulator(seed=7)
>>> net = RingNet.build(sim, HierarchySpec())
>>> src = net.add_source(rate_per_sec=20)
>>> net.start(); src.start()
>>> sim.run(until=5000)
>>> net.total_app_deliveries() > 0
True

Experiments
-----------
Evaluations are data, not scripts: an
:class:`~repro.experiments.spec.ExperimentSpec` names a hierarchy
shape, protocol knobs, workload, mobility/churn/failure dynamics, and a
duration; it round-trips through JSON, expands over parameter grids
with deterministically derived replication seeds, and runs serially or
across worker processes with identical results either way::

    from repro.experiments import registry, expand_grid, run_sweep, aggregate
    base = registry.get("quickstart")
    points = expand_grid(base, {"hierarchy.n_br": [3, 5, 7],
                                "workload.rate_per_sec": [10, 50, 100]},
                         replications=3)
    rows = aggregate(run_sweep(points, jobs=4))

or, from a shell::

    python -m repro.experiments list
    python -m repro.experiments run quickstart --duration 2000
    python -m repro.experiments sweep --out results.json --jobs 4

Validation
----------
Every run can carry the full protocol-invariant monitor suite — pure
observers, so checked and unchecked runs are byte-identical::

    python -m repro.experiments run failure_drill --check

and randomized-but-seeded conformance campaigns, trace recording,
offline replay, and first-divergence diffing live under
``python -m repro.validation``::

    python -m repro.validation fuzz --budget 50 --duration 3000
    python -m repro.validation record quickstart --out a.jsonl
    python -m repro.validation replay a.jsonl
    python -m repro.validation diff a.jsonl b.jsonl
"""

__version__ = "1.0.0"

from repro.sim import Simulator
from repro.core import ProtocolConfig, RingNet
from repro.topology import HierarchySpec

__all__ = ["Simulator", "RingNet", "ProtocolConfig", "HierarchySpec",
           "__version__"]
