"""RingNet: a reliable totally-ordered group multicast protocol for
mobile Internet — a full reproduction of Wang, Cao & Chan (ICPPW 2004).

Package map
-----------
* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.net` — network substrate (links, fabric, reliable transport).
* :mod:`repro.topology` — the RingNet hierarchy (rings + tree).
* :mod:`repro.membership` — group membership bookkeeping.
* :mod:`repro.mobility` — cells, movement models, handoff driving.
* :mod:`repro.core` — **the paper's protocol**: ordering, forwarding,
  delivering, token recovery, MMAs, handoff.
* :mod:`repro.baselines` — unordered / single-ring / Host-View / RelM /
  sequencer comparators.
* :mod:`repro.metrics` — collectors and the total-order checker.
* :mod:`repro.analysis` — Theorem 5.1 bounds.
* :mod:`repro.workloads` — sources, churn, scenarios.

Quickstart
----------
>>> from repro.sim import Simulator
>>> from repro.core import RingNet
>>> from repro.topology import HierarchySpec
>>> sim = Simulator(seed=7)
>>> net = RingNet.build(sim, HierarchySpec())
>>> src = net.add_source(rate_per_sec=20)
>>> net.start(); src.start()
>>> sim.run(until=5000)
>>> net.total_app_deliveries() > 0
True
"""

__version__ = "1.0.0"

from repro.sim import Simulator
from repro.core import ProtocolConfig, RingNet
from repro.topology import HierarchySpec

__all__ = ["Simulator", "RingNet", "ProtocolConfig", "HierarchySpec",
           "__version__"]
