"""Workload construction: traffic, churn, and canned scenarios.

* :mod:`repro.workloads.generators` — source fleets (uniform /
  heterogeneous rates, CBR / Poisson) attached round-robin to the top
  ring, the shape §5 analyzes (s sources × λ msg/s each).
* :mod:`repro.workloads.churn` — join/leave churn scripts driving MH
  membership over time.
* :mod:`repro.workloads.scenarios` — end-to-end scenario builders used
  by the examples and benchmarks (conference, campus, stress).
"""

from repro.workloads.generators import SourceFleet, uniform_sources
from repro.workloads.churn import ChurnDriver
from repro.workloads.scenarios import Scenario, conference_scenario, campus_scenario

__all__ = [
    "SourceFleet",
    "uniform_sources",
    "ChurnDriver",
    "Scenario",
    "conference_scenario",
    "campus_scenario",
]
