"""Workload construction: traffic, churn, and canned scenarios.

* :mod:`repro.workloads.generators` — source fleets (uniform /
  heterogeneous rates, CBR / Poisson) attached round-robin to the top
  ring, the shape §5 analyzes (s sources × λ msg/s each).
* :mod:`repro.workloads.churn` — join/leave churn scripts driving MH
  membership over time.
* :mod:`repro.workloads.scenarios` — the runnable :class:`Scenario`
  bundle plus compatibility builders (conference, campus); new
  scenarios belong in :mod:`repro.experiments.registry` as declarative
  specs.
"""

from repro.workloads.generators import (SourceFleet, uniform_sources,
                                        weighted_sources)
from repro.workloads.churn import ChurnDriver
from repro.workloads.scenarios import Scenario, conference_scenario, campus_scenario

__all__ = [
    "SourceFleet",
    "uniform_sources",
    "weighted_sources",
    "ChurnDriver",
    "Scenario",
    "conference_scenario",
    "campus_scenario",
]
