"""Open-world membership: Poisson session arrivals over a lazy catchment.

The closed-world scenarios build every MH up front.  Real deployments
look different: a metro-scale catchment of *potential* receivers, of
which only a heavy-tailed fraction is in-session at any instant.  The
:class:`OpenWorldDriver` models that — sessions arrive as a Poisson
process, each picks an idle catchment slot behind a random AP,
materializes it on first use via
:meth:`~repro.core.protocol.RingNet.activate_catchment`, and leaves
after a bounded-Pareto session length (many short sessions, a fat tail
of long-lived listeners).

Shard determinism: every decision draws from the replicated
``openworld`` rng stream inside control-plane (owner-less) events, and
the driver tracks session state itself — it never reads an MH's
``is_member`` flag, which only the owning shard maintains.  Join and
leave run in the MH's ownership section via ``call_owned``, exactly
like :class:`~repro.workloads.churn.ChurnDriver`, but with **no probe**:
unlike churn, no decision here needs globally-gathered state.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.net.address import NodeId


class OpenWorldDriver:
    """Drives session arrivals/departures over registered catchments.

    ``aps`` must list the APs (with catchment already registered on the
    facade) in a deterministic order; arrivals pick an AP uniformly and
    a slot uniformly within its catchment.  An arrival that lands on a
    slot already in session is dropped (counted in ``busy``) — with a
    catchment sized well above the offered load this is rare, and
    dropping keeps the draw sequence identical across shard counts.

    When a :class:`~repro.mobility.handoff.HandoffDriver` is supplied,
    arriving sessions roam: each arrival is handed to the mobility
    driver at its home AP and stops moving (where it stands) when the
    session ends.  Both hooks run inside the same control-plane events
    that already decide the session, so shard determinism is preserved.
    """

    def __init__(self, net, aps: Sequence[NodeId],
                 arrivals_per_sec: float = 50.0,
                 mean_session_ms: float = 1500.0,
                 alpha: float = 1.5,
                 max_session_ms: float = 60_000.0,
                 rng_name: str = "openworld",
                 mobility=None):
        if arrivals_per_sec <= 0:
            raise ValueError("arrivals_per_sec must be positive")
        if mean_session_ms <= 0:
            raise ValueError("mean_session_ms must be positive")
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 (finite mean)")
        self.net = net
        self.sim = net.sim
        self.aps = [ap for ap in aps if net.catchment_size(ap) > 0]
        if not self.aps:
            raise ValueError("no AP with a registered catchment")
        self.arrivals_per_sec = arrivals_per_sec
        self.mean_session_ms = mean_session_ms
        self.alpha = alpha
        self.max_session_ms = max_session_ms
        self.mobility = mobility
        self.rng = self.sim.rng(rng_name)
        self.sessions = 0
        self.departures = 0
        self.busy = 0
        #: Slots currently in session — replicated driver state, the
        #: sole membership authority this driver consults.
        self._in_session: Dict[Tuple[NodeId, int], float] = {}
        #: Slots materialized at least once (re-joins skip creation).
        self._materialized = set()
        self.log: List[Tuple[float, str, NodeId]] = []
        self._running = False

    def start(self) -> None:
        """Begin the arrival process."""
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop generating further arrivals (live sessions still end)."""
        self._running = False

    @property
    def active_sessions(self) -> int:
        """Sessions currently in progress."""
        return len(self._in_session)

    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        gap = float(self.rng.exponential(1000.0 / self.arrivals_per_sec))
        self.sim.schedule(gap, self._arrive)

    def _session_length(self) -> float:
        """Bounded-Pareto session length (ms) with mean ``mean_session_ms``."""
        xm = self.mean_session_ms * (self.alpha - 1.0) / self.alpha
        u = float(self.rng.random())
        x = xm / (1.0 - u) ** (1.0 / self.alpha)
        return max(1.0, min(x, self.max_session_ms))

    def _arrive(self) -> None:
        if not self._running:
            return
        ap = self.aps[int(self.rng.integers(len(self.aps)))]
        idx = int(self.rng.integers(self.net.catchment_size(ap)))
        # Draw the length unconditionally so the rng stream consumed per
        # arrival is fixed — a busy-slot drop must not shift later draws.
        length = self._session_length()
        slot = (ap, idx)
        if slot in self._in_session:
            self.busy += 1
        else:
            mh_id = self.net.catchment_mh_id(ap, idx)
            if slot in self._materialized:
                # The driver itself ended the previous session, so the
                # slot is known-departed; re-join without peeking at the
                # MH's (shard-local) membership flag.
                mh = self.net.mobile_hosts[mh_id]
                self.sim.call_owned(mh_id, mh.join, ap)
            else:
                self.net.activate_catchment(ap, idx)
                self._materialized.add(slot)
            self._in_session[slot] = self.sim.now
            self.sessions += 1
            self.log.append((self.sim.now, "arrive", mh_id))
            if self.mobility is not None:
                self.mobility.track(mh_id, ap)
            self.sim.schedule(length, self._depart, ap, idx)
        self._schedule()

    def _depart(self, ap: NodeId, idx: int) -> None:
        self._in_session.pop((ap, idx), None)
        mh_id = self.net.catchment_mh_id(ap, idx)
        mh = self.net.mobile_hosts[mh_id]
        self.departures += 1
        self.log.append((self.sim.now, "depart", mh_id))
        if self.mobility is not None:
            self.mobility.stop(mh_id)
        self.sim.call_owned(mh_id, mh.leave)
