"""Membership churn: scripted joins and leaves over a run (E5)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.net.address import NodeId, make_id


class ChurnDriver:
    """Drives MH join/leave churn against a RingNet-like facade.

    At exponential intervals (mean ``mean_interval_ms``) the driver
    flips a fair coin: join a new MH at a random AP, or make a random
    current member leave.  A floor of ``min_members`` members is kept so
    the group never empties.
    """

    def __init__(self, net, aps: Sequence[NodeId],
                 mean_interval_ms: float = 500.0, min_members: int = 1,
                 rng_name: str = "churn"):
        if mean_interval_ms <= 0:
            raise ValueError("mean_interval_ms must be positive")
        self.net = net
        self.sim = net.sim
        self.aps = list(aps)
        self.mean_interval_ms = mean_interval_ms
        self.min_members = min_members
        self.rng = self.sim.rng(rng_name)
        self._next_id = 0
        self.joins = 0
        self.leaves = 0
        self.log: List[Tuple[float, str, NodeId]] = []
        self._running = False

    def start(self) -> None:
        """Begin the churn process."""
        self._running = True
        self._schedule()

    def stop(self) -> None:
        """Stop generating further churn."""
        self._running = False

    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        ev = self.sim.schedule(
            float(self.rng.exponential(self.mean_interval_ms)), self._tick)
        shard = self.sim.shard
        if shard is not None:
            # A tick's decision reads global membership, which no single
            # shard knows; register it as a synchronization probe so the
            # runtime pauses every shard here and gathers the bits.
            shard.register_probe(ev, "churn.membership")

    def _members(self):
        """Current members, identically in sequential and sharded runs.

        Sequential: read ``is_member`` directly.  Sharded: the tick runs
        replicated in every shard right after a membership probe, so the
        merged bits stand in for the remote MHs' local state — same
        values, same order (``mobile_hosts`` insertion order is
        replicated).
        """
        shard = self.sim.shard
        if shard is None:
            return self.net.member_hosts()
        bits = shard.consume_probe()
        return [m for mid, m in self.net.mobile_hosts.items()
                if bits.get(mid, False)]

    def _tick(self) -> None:
        if not self._running:
            return
        members = self._members()
        do_join = (len(members) <= self.min_members
                   or self.rng.random() < 0.5)
        if do_join:
            ap = self.aps[int(self.rng.integers(len(self.aps)))]
            mh_id = make_id("churn-mh", self._next_id)
            self._next_id += 1
            self.net.add_mobile_host(mh_id, ap)
            self.joins += 1
            self.log.append((self.sim.now, "join", mh_id))
        else:
            victim = members[int(self.rng.integers(len(members)))]
            self.sim.call_owned(victim.guid, victim.leave)
            self.leaves += 1
            self.log.append((self.sim.now, "leave", victim.guid))
        self._schedule()
