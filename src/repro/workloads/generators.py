"""Source fleets: the s × λ workload of the performance analysis (§5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class SourceFleet:
    """A group of sources managed together."""

    sources: List = field(default_factory=list)

    def start(self, delay: float = 0.0, stagger: float = 0.0) -> None:
        """Start every source; ``stagger`` offsets each by i·stagger ms
        (de-phases CBR sources so the ring isn't hit in bursts).

        Each source starts in its own ownership section so a shard
        worker only arms the sources it hosts."""
        for i, src in enumerate(self.sources):
            src.sim.call_owned(src.id, src.start, delay + i * stagger)

    def stop(self) -> None:
        """Stop every source."""
        for src in self.sources:
            src.stop()

    @property
    def total_sent(self) -> int:
        """Messages emitted across the fleet."""
        return sum(src.sent for src in self.sources)

    @property
    def aggregate_rate_per_sec(self) -> float:
        """The fleet's s·λ in messages per second."""
        return sum(src.rate_per_sec for src in self.sources)

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)


def uniform_sources(net, s: int, rate_per_sec: float,
                    pattern: str = "cbr") -> SourceFleet:
    """Attach ``s`` equal-rate sources round-robin over the top ring.

    Works with any facade exposing ``add_source`` (RingNet and the
    unordered baseline).  The paper assumes s ≤ r (at most one source
    per top-ring node); this helper enforces it.
    """
    return weighted_sources(net, [rate_per_sec] * s, pattern=pattern)


def weighted_sources(net, rates: Sequence[float],
                     pattern: str = "cbr") -> SourceFleet:
    """Attach one source per entry of ``rates``, round-robin over the
    top ring — the heterogeneous/hotspot workload (e.g. one dominant
    sender at 60 msg/s and a tail of 10 msg/s commenters).

    Like :func:`uniform_sources`, enforces the paper's s ≤ r assumption.
    """
    top = net.hierarchy.top_ring.members
    if len(rates) > len(top):
        raise ValueError(
            f"paper §5 assumes s <= r: requested {len(rates)} sources "
            f"for a top ring of {len(top)}"
        )
    fleet = SourceFleet()
    for i, rate in enumerate(rates):
        fleet.sources.append(
            net.add_source(corresponding=top[i], rate_per_sec=rate,
                           pattern=pattern)
        )
    return fleet
