"""Source fleets: the s × λ workload of the performance analysis (§5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class SourceFleet:
    """A group of sources managed together."""

    sources: List = field(default_factory=list)

    def start(self, delay: float = 0.0, stagger: float = 0.0) -> None:
        """Start every source; ``stagger`` offsets each by i·stagger ms
        (de-phases CBR sources so the ring isn't hit in bursts)."""
        for i, src in enumerate(self.sources):
            src.start(delay + i * stagger)

    def stop(self) -> None:
        """Stop every source."""
        for src in self.sources:
            src.stop()

    @property
    def total_sent(self) -> int:
        """Messages emitted across the fleet."""
        return sum(src.sent for src in self.sources)

    @property
    def aggregate_rate_per_sec(self) -> float:
        """The fleet's s·λ in messages per second."""
        return sum(src.rate_per_sec for src in self.sources)

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)


def uniform_sources(net, s: int, rate_per_sec: float,
                    pattern: str = "cbr") -> SourceFleet:
    """Attach ``s`` equal-rate sources round-robin over the top ring.

    Works with any facade exposing ``add_source`` (RingNet and the
    unordered baseline).  The paper assumes s ≤ r (at most one source
    per top-ring node); this helper enforces it.
    """
    top = net.hierarchy.top_ring.members
    if s > len(top):
        raise ValueError(
            f"paper §5 assumes s <= r: requested {s} sources for a "
            f"top ring of {len(top)}"
        )
    fleet = SourceFleet()
    for i in range(s):
        fleet.sources.append(
            net.add_source(corresponding=top[i], rate_per_sec=rate_per_sec,
                           pattern=pattern)
        )
    return fleet
