"""Source fleets: the s × λ workload of the performance analysis (§5).

Beyond the paper's constant-rate fleets, :class:`RateCurve` describes
spec-level *time-varying* load — diurnal sinusoids and flash-crowd
ramps — resolved here into plain ``time → factor`` functions that
:class:`~repro.core.source.MulticastSource` samples at emission times.
Deterministic by construction: a curve is pure arithmetic on simulated
time, so it needs no RNG and cannot perturb trace identity of
constant-rate scenarios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class RateCurve:
    """A deterministic rate-factor curve over simulated time (ms).

    ``kind``:

    * ``constant`` — always ``1.0``.
    * ``diurnal`` — ``1 + amplitude·sin(2π·(t/period_ms + phase))``,
      clamped at 0: the day/night load cycle, compressed to whatever
      period the scenario can afford.
    * ``flash`` — a flash crowd: baseline 1.0 until ``at_ms``, linear
      ramp to ``peak_factor`` over ``ramp_ms``, hold for ``hold_ms``,
      linear decay back over ``decay_ms``.
    """

    kind: str = "constant"
    period_ms: float = 2000.0
    amplitude: float = 0.5
    phase: float = 0.0
    at_ms: float = 0.0
    ramp_ms: float = 200.0
    peak_factor: float = 5.0
    hold_ms: float = 500.0
    decay_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "diurnal", "flash"):
            raise ValueError(f"unknown curve kind {self.kind!r}")
        if self.kind == "diurnal" and self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if self.kind == "flash" and self.peak_factor < 1.0:
            raise ValueError("peak_factor must be >= 1")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RateCurve":
        return cls(**dict(data))

    def factor(self, t: float) -> float:
        """The rate multiplier at simulated time ``t`` (ms)."""
        if self.kind == "diurnal":
            x = 1.0 + self.amplitude * math.sin(
                2.0 * math.pi * (t / self.period_ms + self.phase))
            return x if x > 0.0 else 0.0
        if self.kind == "flash":
            dt = t - self.at_ms
            if dt < 0.0:
                return 1.0
            if dt < self.ramp_ms:
                return 1.0 + (self.peak_factor - 1.0) * (dt / self.ramp_ms)
            dt -= self.ramp_ms
            if dt < self.hold_ms:
                return self.peak_factor
            dt -= self.hold_ms
            if dt < self.decay_ms:
                return self.peak_factor - (self.peak_factor - 1.0) * (
                    dt / self.decay_ms)
            return 1.0
        return 1.0

    def as_fn(self) -> Optional[Callable[[float], float]]:
        """This curve as a source ``rate_fn`` (None when constant)."""
        if self.kind == "constant":
            return None
        return self.factor


@dataclass
class SourceFleet:
    """A group of sources managed together."""

    sources: List = field(default_factory=list)

    def start(self, delay: float = 0.0, stagger: float = 0.0) -> None:
        """Start every source; ``stagger`` offsets each by i·stagger ms
        (de-phases CBR sources so the ring isn't hit in bursts).

        Each source starts in its own ownership section so a shard
        worker only arms the sources it hosts."""
        for i, src in enumerate(self.sources):
            src.sim.call_owned(src.id, src.start, delay + i * stagger)

    def stop(self) -> None:
        """Stop every source."""
        for src in self.sources:
            src.stop()

    @property
    def total_sent(self) -> int:
        """Messages emitted across the fleet."""
        return sum(src.sent for src in self.sources)

    @property
    def aggregate_rate_per_sec(self) -> float:
        """The fleet's s·λ in messages per second."""
        return sum(src.rate_per_sec for src in self.sources)

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self):
        return iter(self.sources)


def uniform_sources(net, s: int, rate_per_sec: float,
                    pattern: str = "cbr", **extra) -> SourceFleet:
    """Attach ``s`` equal-rate sources round-robin over the top ring.

    Works with any facade exposing ``add_source`` (RingNet and the
    unordered baseline).  The paper assumes s ≤ r (at most one source
    per top-ring node); this helper enforces it.
    """
    return weighted_sources(net, [rate_per_sec] * s, pattern=pattern,
                            **extra)


def weighted_sources(net, rates: Sequence[float],
                     pattern: str = "cbr", **extra) -> SourceFleet:
    """Attach one source per entry of ``rates``, round-robin over the
    top ring — the heterogeneous/hotspot workload (e.g. one dominant
    sender at 60 msg/s and a tail of 10 msg/s commenters).

    Extra keyword arguments (``rate_fn``, ``flows``) pass through to
    ``net.add_source`` — only supply them for facades whose sources
    understand them (RingNet).

    Like :func:`uniform_sources`, enforces the paper's s ≤ r assumption.
    """
    top = net.hierarchy.top_ring.members
    if len(rates) > len(top):
        raise ValueError(
            f"paper §5 assumes s <= r: requested {len(rates)} sources "
            f"for a top ring of {len(top)}"
        )
    fleet = SourceFleet()
    for i, rate in enumerate(rates):
        fleet.sources.append(
            net.add_source(corresponding=top[i], rate_per_sec=rate,
                           pattern=pattern, **extra)
        )
    return fleet
