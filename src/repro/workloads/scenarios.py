"""Canned end-to-end scenarios for examples and benchmarks.

A :class:`Scenario` bundles the simulator, the protocol instance, the
traffic fleet, and (optionally) mobility and churn — ready to ``run()``.

Since the :mod:`repro.experiments` subsystem landed, scenarios are built
from declarative :class:`~repro.experiments.spec.ExperimentSpec` objects
by :func:`repro.experiments.runner.build_scenario`; the named builders
here (`conference_scenario`, `campus_scenario`) are thin wrappers that
assemble a spec and delegate, kept for API compatibility and as the
shortest path from "I want a runnable conference" to a `Scenario`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.mobility.cells import CellGrid
from repro.mobility.handoff import HandoffDriver
from repro.mobility.models import MobilityModel
from repro.runtime.api import Runtime
from repro.workloads.churn import ChurnDriver
from repro.workloads.generators import SourceFleet
from repro.workloads.openworld import OpenWorldDriver


@dataclass
class Scenario:
    """A runnable bundle: runtime + protocol + workload + dynamics.

    ``sim`` is any :class:`~repro.runtime.api.Runtime` — the
    discrete-event engine for simulations, a
    :class:`~repro.live.runtime.LiveRuntime` for wall-clock runs; both
    expose the ``run(until=...)`` entry :meth:`run` drives.
    """

    sim: Runtime
    net: RingNet
    fleet: SourceFleet
    grid: Optional[CellGrid] = None
    mobility: Optional[HandoffDriver] = None
    churn: Optional[ChurnDriver] = None
    #: Session arrivals over the lazy catchment, when the spec enables
    #: the open-world workload.
    openworld: Optional[OpenWorldDriver] = None
    #: The scheduled :class:`~repro.faults.driver.FaultDriver` when the
    #: spec carries a fault plan (events are armed at build time).
    faults: Optional[object] = None
    duration_ms: float = 10_000.0
    stagger_ms: float = 3.0

    def start(self) -> None:
        """Arm everything without running the event loop.

        Split out of :meth:`run` so the sharded backend can start the
        scenario and then drive the engine through synchronized windows
        instead of one free-running :meth:`Simulator.run`.
        """
        self.net.start()
        self.fleet.start(stagger=self.stagger_ms)
        if self.mobility is not None:
            for mh_id, mh in self.net.mobile_hosts.items():
                if mh.ap is not None:
                    self.mobility.track(mh_id, mh.ap)
        if self.churn is not None:
            self.churn.start()
        if self.openworld is not None:
            self.openworld.start()

    def run(self, until: Optional[float] = None) -> None:
        """Start everything and run to ``until`` (or the duration)."""
        self.start()
        self.sim.run(until=until if until is not None else self.duration_ms)


def _protocol_overrides(cfg: Optional[ProtocolConfig]) -> dict:
    return {} if cfg is None else asdict(cfg)


def conference_scenario(
    seed: int = 1,
    n_br: int = 3,
    ags_per_br: int = 2,
    aps_per_ag: int = 2,
    mhs_per_ap: int = 3,
    s: int = 2,
    rate_per_sec: float = 20.0,
    cfg: Optional[ProtocolConfig] = None,
    duration_ms: float = 10_000.0,
) -> Scenario:
    """Video-conference-like: a few steady senders, static audience.

    This is the §1 motivating workload ("video conferencing, distance
    learning"): low sender count, every member must see the same totally
    ordered stream.
    """
    from repro.experiments.runner import build_scenario
    from repro.experiments.spec import (ExperimentSpec, HierarchyShape,
                                        WorkloadSpec)

    spec = ExperimentSpec(
        name="conference",
        hierarchy=HierarchyShape(n_br=n_br, ags_per_br=ags_per_br,
                                 aps_per_ag=aps_per_ag,
                                 mhs_per_ap=mhs_per_ap),
        workload=WorkloadSpec(s=s, rate_per_sec=rate_per_sec),
        protocol=_protocol_overrides(cfg),
        duration_ms=duration_ms,
        warmup_ms=0.0,
        seed=seed,
    )
    return build_scenario(spec)


def campus_scenario(
    seed: int = 1,
    n_br: int = 3,
    ags_per_br: int = 3,
    aps_per_ag: int = 3,
    mhs_per_ap: int = 2,
    s: int = 2,
    rate_per_sec: float = 10.0,
    mean_dwell_ms: float = 2000.0,
    model: Optional[MobilityModel] = None,
    cfg: Optional[ProtocolConfig] = None,
    duration_ms: float = 15_000.0,
) -> Scenario:
    """Campus roaming: the same conference traffic plus cell mobility.

    All APs form one grid; MHs random-walk across it, handing off on
    every cell crossing — the paper's "frequent handoff" regime when
    ``mean_dwell_ms`` is small.  Pass a :class:`MobilityModel` instance
    to substitute a custom movement model.
    """
    from repro.experiments.runner import build_scenario
    from repro.experiments.spec import (ExperimentSpec, HierarchyShape,
                                        MobilitySpec, WorkloadSpec)

    spec = ExperimentSpec(
        name="campus",
        hierarchy=HierarchyShape(n_br=n_br, ags_per_br=ags_per_br,
                                 aps_per_ag=aps_per_ag,
                                 mhs_per_ap=mhs_per_ap),
        workload=WorkloadSpec(s=s, rate_per_sec=rate_per_sec),
        mobility=MobilitySpec(enabled=True, model="random_walk",
                              mean_dwell_ms=mean_dwell_ms),
        protocol=_protocol_overrides(cfg),
        duration_ms=duration_ms,
        warmup_ms=0.0,
        seed=seed,
    )
    scenario = build_scenario(spec)
    if model is not None:
        scenario.mobility.model = model
    return scenario
