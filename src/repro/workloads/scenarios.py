"""Canned end-to-end scenarios for examples and benchmarks.

Each builder returns a :class:`Scenario` bundling the simulator, the
protocol instance, the traffic fleet, and (optionally) mobility — ready
to ``run()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.mobility.cells import CellGrid
from repro.mobility.handoff import HandoffDriver
from repro.mobility.models import MobilityModel, RandomWalk
from repro.sim.engine import Simulator
from repro.topology.builder import HierarchySpec
from repro.topology.tiers import Tier
from repro.workloads.generators import SourceFleet, uniform_sources


@dataclass
class Scenario:
    """A runnable bundle: simulator + protocol + workload + mobility."""

    sim: Simulator
    net: RingNet
    fleet: SourceFleet
    grid: Optional[CellGrid] = None
    mobility: Optional[HandoffDriver] = None
    duration_ms: float = 10_000.0

    def run(self, until: Optional[float] = None) -> None:
        """Start everything and run to ``until`` (or the duration)."""
        self.net.start()
        self.fleet.start(stagger=3.0)
        if self.mobility is not None:
            for mh_id, mh in self.net.mobile_hosts.items():
                if mh.ap is not None:
                    self.mobility.track(mh_id, mh.ap)
        self.sim.run(until=until if until is not None else self.duration_ms)


def conference_scenario(
    seed: int = 1,
    n_br: int = 3,
    ags_per_br: int = 2,
    aps_per_ag: int = 2,
    mhs_per_ap: int = 3,
    s: int = 2,
    rate_per_sec: float = 20.0,
    cfg: Optional[ProtocolConfig] = None,
    duration_ms: float = 10_000.0,
) -> Scenario:
    """Video-conference-like: a few steady senders, static audience.

    This is the §1 motivating workload ("video conferencing, distance
    learning"): low sender count, every member must see the same totally
    ordered stream.
    """
    sim = Simulator(seed=seed)
    spec = HierarchySpec(n_br=n_br, ags_per_br=ags_per_br,
                         aps_per_ag=aps_per_ag, mhs_per_ap=mhs_per_ap)
    net = RingNet.build(sim, spec, cfg=cfg)
    fleet = uniform_sources(net, s=s, rate_per_sec=rate_per_sec)
    return Scenario(sim=sim, net=net, fleet=fleet, duration_ms=duration_ms)


def campus_scenario(
    seed: int = 1,
    n_br: int = 3,
    ags_per_br: int = 3,
    aps_per_ag: int = 3,
    mhs_per_ap: int = 2,
    s: int = 2,
    rate_per_sec: float = 10.0,
    mean_dwell_ms: float = 2000.0,
    model: Optional[MobilityModel] = None,
    cfg: Optional[ProtocolConfig] = None,
    duration_ms: float = 15_000.0,
) -> Scenario:
    """Campus roaming: the same conference traffic plus cell mobility.

    All APs form one grid; MHs random-walk across it, handing off on
    every cell crossing — the paper's "frequent handoff" regime when
    ``mean_dwell_ms`` is small.
    """
    sim = Simulator(seed=seed)
    spec = HierarchySpec(n_br=n_br, ags_per_br=ags_per_br,
                         aps_per_ag=aps_per_ag, mhs_per_ap=mhs_per_ap)
    net = RingNet.build(sim, spec, cfg=cfg)
    fleet = uniform_sources(net, s=s, rate_per_sec=rate_per_sec)
    aps = net.hierarchy.nodes_of_tier(Tier.AP)
    grid = CellGrid.square_for(aps)
    mobility = HandoffDriver(net, grid,
                             model or RandomWalk(mean_dwell_ms=mean_dwell_ms))
    return Scenario(sim=sim, net=net, fleet=fleet, grid=grid,
                    mobility=mobility, duration_ms=duration_ms)
