"""Machine-checked protocol conformance.

The paper's claims — total order, reliability across handoffs,
token-based recovery — become executable invariants here:

* :mod:`repro.validation.monitor` — the :class:`Monitor` contract and
  :class:`MonitorSuite` bundling (violation accumulation, scoped trace
  subscriptions, end-of-run state checks).
* :mod:`repro.validation.monitors` — the invariant family: token
  uniqueness & liveness, membership view consistency, handoff
  atomicity, retransmission-buffer boundedness, recovery after failure.
  The total-order checker (:class:`repro.metrics.order_checker.
  OrderChecker`) shares the same base and composes into suites.
* :mod:`repro.validation.record` — deterministic trace record/replay:
  canonical JSONL streams, offline replay through monitors, and
  first-divergence diffing between two runs.
* :mod:`repro.validation.suite` — per-system suite assembly and
  :func:`check_spec`, the one-call checked run.
* :mod:`repro.validation.fuzz` — randomized-but-seeded scenario
  generation and the conformance campaign harness.

Quickstart
----------
Check any registry scenario online::

    python -m repro.experiments run failure_drill --check

Fuzz the protocol over random scenarios (exit code 1 on violations)::

    python -m repro.validation fuzz --budget 50 --duration 3000

Record a run, replay it offline, diff two runs::

    python -m repro.validation record quickstart --out a.jsonl
    python -m repro.validation replay a.jsonl
    python -m repro.validation diff a.jsonl b.jsonl
"""

# The monitor contract and the monitor family are leaf modules
# (importing only repro.sim.trace) and load eagerly; everything that
# reaches toward repro.experiments (record/suite/fuzz) resolves lazily
# via PEP 562 so that `from repro.validation.monitor import Monitor` —
# which core code like repro.metrics.order_checker performs — never
# drags the whole harness in or risks an import cycle.
from repro.validation.monitor import Monitor, MonitorSuite
from repro.validation.monitors import (
    BoundsMonitor,
    HandoffMonitor,
    MembershipMonitor,
    QuiescenceMonitor,
    TokenMonitor,
)

_LAZY = {
    "TraceRecorder": "repro.validation.record",
    "Divergence": "repro.validation.record",
    "first_divergence": "repro.validation.record",
    "read_jsonl": "repro.validation.record",
    "write_jsonl": "repro.validation.record",
    "replay": "repro.validation.record",
    "record_spec": "repro.validation.record",
    "CheckResult": "repro.validation.suite",
    "check_spec": "repro.validation.suite",
    "standard_suite": "repro.validation.suite",
    "suite_for_spec": "repro.validation.suite",
    "FuzzReport": "repro.validation.fuzz",
    "fuzz": "repro.validation.fuzz",
    "random_spec": "repro.validation.fuzz",
}

__all__ = [
    "Monitor", "MonitorSuite",
    "TokenMonitor", "MembershipMonitor", "HandoffMonitor",
    "BoundsMonitor", "QuiescenceMonitor",
    *sorted(_LAZY),
]


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
