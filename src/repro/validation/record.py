"""Deterministic trace record / replay / diff.

A run's :class:`~repro.sim.trace.TraceRecord` stream serializes to
JSONL — one canonical, sorted-key JSON object per record — so that

* two runs of the same :class:`~repro.experiments.spec.ExperimentSpec`
  and seed produce **byte-identical** streams (seed-determinism becomes
  a checked property, not an assumption);
* a recorded stream replays offline through any monitor set
  (:func:`replay`), turning a captured failure into a repeatable unit
  test;
* two streams diff to the **first divergence**
  (:func:`first_divergence`), pinpointing where a refactor changed
  behaviour.

Canonical form: attribute tuples serialize as JSON arrays and load back
as tuples (the trace vocabulary uses tuples — e.g. ``token_id`` — and
never semantically distinguishes list from tuple), keys sort, floats use
``repr`` round-tripping via the stdlib ``json`` module.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, TextIO, Union

# The canonical (de)serialization lives beside the bus in
# ``repro.sim.trace`` (shared with the streaming sink and the shard
# merge); re-exported here because this module is its historical home.
from repro.sim.trace import (StreamingTraceSink, TraceBus, TraceRecord,
                             _canonical, line_to_record, read_trace_lines,
                             record_to_line)


# ----------------------------------------------------------------------
# Online recorder
# ----------------------------------------------------------------------
class TraceRecorder:
    """Subscribe to every record on a bus and keep the canonical lines.

    Use as a context manager (detaches on exit), or via
    :meth:`attach` / :meth:`detach` directly::

        with TraceRecorder(sim.trace) as rec:
            scenario.run()
        rec.write(path)
    """

    def __init__(self, trace: Optional[TraceBus] = None,
                 sink: Optional[TextIO] = None):
        self.lines: List[str] = []
        self.count = 0
        self._sink = sink
        self._trace: Optional[TraceBus] = None
        if trace is not None:
            self.attach(trace)

    def attach(self, trace: TraceBus) -> "TraceRecorder":
        if self._trace is not None:
            raise RuntimeError("recorder is already attached")
        self._trace = trace
        trace.subscribe(None, self._on_record)
        return self

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(None, self._on_record)
            self._trace = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    def _on_record(self, rec: TraceRecord) -> None:
        line = record_to_line(rec)
        self.count += 1
        if self._sink is not None:
            self._sink.write(line + "\n")
        else:
            self.lines.append(line)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The full stream as one string (trailing newline included)."""
        return "".join(line + "\n" for line in self.lines)

    def write(self, path: str) -> None:
        """Write the buffered stream to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())


# ----------------------------------------------------------------------
# File I/O and replay
# ----------------------------------------------------------------------
def write_jsonl(path: str, records: Iterable[TraceRecord]) -> int:
    """Serialize ``records`` to ``path``; returns the record count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(record_to_line(rec) + "\n")
            n += 1
    return n


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load a recorded stream back into memory (``.gz`` transparent)."""
    opener = gzip.open if path.endswith(".gz") else open
    out: List[TraceRecord] = []
    with opener(path, "rt", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(line_to_record(line))
    return out


def replay(records: Sequence[TraceRecord], monitors: Iterable,
           finish: bool = True) -> TraceBus:
    """Re-emit a recorded stream through ``monitors`` offline.

    ``monitors`` is any iterable of :class:`~repro.validation.monitor.
    Monitor` (a :class:`~repro.validation.monitor.MonitorSuite` works).
    End-of-run checks run with ``net=None`` — state-dependent checks
    skip themselves — and ``end_time`` set to the last record's time.
    Monitors are detached before returning.
    """
    bus = TraceBus()
    attached = [m.attach(bus) for m in monitors]
    try:
        for rec in records:
            bus.emit(rec.time, rec.kind, **rec.attrs)
        if finish:
            end = records[-1].time if records else 0.0
            for m in attached:
                m.finish(net=None, end_time=end)
    finally:
        for m in attached:
            m.detach()
    return bus


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """Where two trace streams first disagree."""

    index: int
    left: Optional[str]
    right: Optional[str]

    def describe(self) -> str:
        if self.left is None:
            return (f"record {self.index}: left stream ended, right "
                    f"continues with {self.right}")
        if self.right is None:
            return (f"record {self.index}: right stream ended, left "
                    f"continues with {self.left}")
        return (f"record {self.index}:\n  left:  {self.left}\n"
                f"  right: {self.right}")


def first_divergence(
    left: Sequence[Union[TraceRecord, str]],
    right: Sequence[Union[TraceRecord, str]],
) -> Optional[Divergence]:
    """First index where two streams differ, or None when identical.

    Accepts records or pre-serialized lines; comparison is on the
    canonical line form either way.
    """
    def as_line(item: Union[TraceRecord, str]) -> str:
        return item if isinstance(item, str) else record_to_line(item)

    for i in range(max(len(left), len(right))):
        a = as_line(left[i]) if i < len(left) else None
        b = as_line(right[i]) if i < len(right) else None
        if a != b:
            return Divergence(index=i, left=a, right=b)
    return None


# ----------------------------------------------------------------------
# Convenience: record a spec's full run
# ----------------------------------------------------------------------
def record_spec(spec, stream_path: Optional[str] = None,
                window: int = 4096):
    """Build and run ``spec``, recording the complete trace stream.

    Uses :func:`repro.validation.suite.observed_scenario`, so the
    recorder attaches before construction and build-time records
    (initial MH joins) are part of the stream.

    With the default ``stream_path=None`` the whole stream is held in
    memory: returns the detached :class:`TraceRecorder` (``.lines`` /
    ``.to_jsonl()``).  Given a path, the stream is instead written
    incrementally through a :class:`~repro.sim.trace.StreamingTraceSink`
    (``.gz`` compressed when the path says so) and the closed sink is
    returned — read the lines back with
    :func:`~repro.sim.trace.read_trace_lines`.  Both paths serialize
    through :func:`record_to_line`, so the bytes are identical.
    """
    from repro.validation.suite import observed_scenario
    if stream_path is None:
        rec = TraceRecorder()
        with observed_scenario(spec, rec) as scenario:
            scenario.run()
        return rec
    sink = StreamingTraceSink(stream_path, window=window)
    try:
        with observed_scenario(spec, sink) as scenario:
            scenario.run()
    finally:
        sink.close()
    return sink
