"""Assemble monitor suites and run checked simulations.

:func:`standard_suite` picks the monitors that apply to a system
(``ringnet`` / ``single_ring`` get the full family plus the total-order
checker; ``unordered`` intentionally skips order- and token-dependent
monitors).

:func:`check_spec` is the one-call conformance entry the fuzz harness
and the CLI use: build the scenario, attach the suite, run, finish, and
return a :class:`CheckResult`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.validation.monitor import Monitor, MonitorSuite
from repro.validation.monitors import (
    DEFAULT_RECOVERY_WINDOW_MS,
    BoundsMonitor,
    HandoffMonitor,
    MembershipMonitor,
    PartitionRecoveryMonitor,
    QuiescenceMonitor,
    TokenMonitor,
)

#: Systems whose delivery stream carries true global sequence numbers.
ORDERED_SYSTEMS = ("ringnet", "single_ring")


def _order_checker() -> Monitor:
    # Imported lazily: repro.metrics.order_checker imports the Monitor
    # base from this package, so a module-level import here would make
    # the two packages' import order matter.
    from repro.metrics.order_checker import OrderChecker
    return OrderChecker()


def standard_suite(
    system: str = "ringnet",
    *,
    liveness_window_ms: Optional[float] = None,
    recovery_window_ms: float = DEFAULT_RECOVERY_WINDOW_MS,
    per_peer_limit: Optional[int] = None,
    include_order: bool = True,
) -> MonitorSuite:
    """The monitor set appropriate for ``system``."""
    monitors: List[Monitor] = []
    ordered = system in ORDERED_SYSTEMS
    if ordered:
        monitors.append(TokenMonitor(liveness_window_ms=liveness_window_ms))
        monitors.append(HandoffMonitor())
        if include_order:
            monitors.append(_order_checker())
    monitors.append(MembershipMonitor())
    monitors.append(BoundsMonitor(per_peer_limit=per_peer_limit))
    monitors.append(QuiescenceMonitor(recovery_window_ms=recovery_window_ms))
    monitors.append(PartitionRecoveryMonitor(
        recovery_window_ms=recovery_window_ms))
    return MonitorSuite(monitors)


def suite_for_spec(spec) -> MonitorSuite:
    """The :func:`standard_suite` for a spec's system.

    Attach the result *before* building the scenario so construction-
    time records (initial MH joins) are observed; the token liveness
    window derives itself from the net at finish time.
    """
    return standard_suite(spec.system)


# ----------------------------------------------------------------------
# Observed scenario construction
# ----------------------------------------------------------------------
@contextmanager
def observed_scenario(spec, *observers) -> Iterator[Any]:
    """Build ``spec`` with ``observers`` attached **before** construction.

    The one place that knows the load-bearing ordering rule: initial MH
    joins are emitted while the network is built, so anything with an
    ``attach(trace)`` / ``detach()`` surface (a :class:`MonitorSuite`, a
    single :class:`~repro.validation.monitor.Monitor`, a
    :class:`~repro.validation.record.TraceRecorder`) must subscribe
    before ``build_scenario`` or it silently misses those records.
    Yields the built scenario; observers always detach on exit.
    """
    from repro.experiments.runner import build_scenario  # lazy: no cycle
    from repro.sim.engine import Simulator

    sim = Simulator(seed=spec.seed)
    for obs in observers:
        obs.attach(sim.trace)
    try:
        yield build_scenario(spec, sim=sim)
    finally:
        for obs in observers:
            obs.detach()


# ----------------------------------------------------------------------
# One checked run
# ----------------------------------------------------------------------
@dataclass
class CheckResult:
    """Everything one conformance run reports."""

    name: str
    system: str
    seed: int
    duration_ms: float
    deliveries: int = 0
    violations: List[str] = field(default_factory=list)
    reports: Dict[str, Any] = field(default_factory=dict)
    trace_jsonl: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "system": self.system,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "deliveries": self.deliveries,
            "ok": self.ok,
            "violations": list(self.violations),
            "reports": dict(self.reports),
        }


def check_spec(spec, *, record_trace: bool = False,
               suite: Optional[MonitorSuite] = None) -> CheckResult:
    """Run ``spec`` once with the full monitor suite attached.

    ``record_trace=True`` additionally captures the canonical JSONL
    stream (for failure artifacts / replay debugging).  A custom
    ``suite`` replaces the standard one.
    """
    from repro.validation.record import TraceRecorder

    recorder = TraceRecorder() if record_trace else None
    if suite is None:
        suite = suite_for_spec(spec)
    observers = [suite] if recorder is None else [suite, recorder]
    with observed_scenario(spec, *observers) as scenario:
        scenario.run()
        suite.finish(net=scenario.net, end_time=scenario.sim.now)
    return CheckResult(
        name=spec.name,
        system=spec.system,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        deliveries=scenario.net.total_app_deliveries(),
        violations=suite.all_violations(),
        reports=suite.report(),
        trace_jsonl=recorder.to_jsonl() if recorder is not None else None,
    )
