"""Scenario fuzzing: randomized-but-seeded conformance sweeps.

The fuzzer draws random — but fully seed-determined — experiment specs
over the space the runner supports (hierarchy shape × workload ×
churn/failure/mobility schedules × bounded :mod:`repro.faults` plans:
healing partitions, degradation windows, flapping links, loss bursts),
runs each through the complete monitor suite
(:func:`repro.validation.suite.check_spec`), and reports every
invariant violation with the spec that provoked it.  Because
specs serialize to JSON, any failing case replays exactly from the
report alone.

Entry points: :func:`fuzz` (library) and ``python -m repro.validation
fuzz`` (CLI).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.plan import (Degrade, FaultPlan, Flap, LossBurst,
                               Partition)
from repro.sim.rand import derive_seed
from repro.validation.monitors import DEFAULT_RECOVERY_WINDOW_MS
from repro.validation.suite import CheckResult, check_spec, standard_suite

#: Weighted system choices: the paper's protocol dominates; the ordered
#: single-ring baseline and the unordered ablation keep the monitors
#: honest about system-specific applicability.
_SYSTEM_WEIGHTS = (("ringnet", 6), ("single_ring", 2), ("unordered", 2))

#: Fraction of a case's duration reserved after any injected crash so
#: the campaign's recovery window always fits inside the run.
_RECOVERY_FRACTION = 0.45


def _campaign_recovery_window(duration_ms: float) -> float:
    """The recovery window a campaign of this duration checks with."""
    return min(DEFAULT_RECOVERY_WINDOW_MS,
               duration_ms * _RECOVERY_FRACTION)


def _choice_weighted(rng: random.Random, pairs) -> str:
    total = sum(w for _, w in pairs)
    pick = rng.randrange(total)
    acc = 0
    for value, weight in pairs:
        acc += weight
        if pick < acc:
            return value
    return pairs[-1][0]  # pragma: no cover - unreachable


def random_fault_plan(rng: random.Random, *, n_br: int,
                      duration_ms: float) -> FaultPlan:
    """A random, bounded :class:`~repro.faults.plan.FaultPlan`.

    Every action is constructed so recovery fits the campaign window:
    partitions activate in the first third of the run and heal within
    100–250 ms (short enough that, with the retry budget
    :func:`random_spec` provisions, the ordering token survives the
    outage in retransmission); degradations, flaps, and loss bursts are
    bounded in both span and severity.
    """
    actions: List[Any] = []
    for _ in range(rng.randint(1, 2)):
        at_ms = round(duration_ms * rng.uniform(0.10, 0.35), 1)
        roll = rng.random()
        if roll < 0.35 and n_br >= 2:
            b = rng.randrange(n_br)
            direction = "both" if rng.random() < 0.7 else \
                rng.choice(["a_to_b", "b_to_a"])
            actions.append(Partition(
                at_ms=at_ms,
                heal_at_ms=at_ms + rng.randint(100, 250),
                direction=direction,
                groups=[[f"br:{b}", f"ag:{b}.*", f"ap:{b}.*", f"mh:{b}.*"],
                        ["@rest"]]))
        elif roll < 0.55:
            actions.append(Degrade(
                at_ms=at_ms,
                until_ms=at_ms + rng.randint(300, 900),
                links=[["br:*", "br:*"]] if rng.random() < 0.5
                else [["ap:*", "mh:*"]],
                loss=round(rng.uniform(0.05, 0.30), 2),
                latency_factor=round(rng.uniform(1.0, 3.0), 1)))
        elif roll < 0.75:
            a = rng.randrange(n_br)
            actions.append(Flap(
                at_ms=at_ms,
                until_ms=at_ms + rng.randint(400, 1_000),
                link=[f"br:{a}", f"br:{(a + 1) % n_br}"],
                period_ms=float(rng.randint(80, 200)),
                duty=round(rng.uniform(0.5, 0.8), 2)))
        else:
            actions.append(LossBurst(
                at_ms=at_ms,
                until_ms=at_ms + rng.randint(400, 1_200),
                links=[["ap:*", "mh:*"]],
                p_gb=round(rng.uniform(0.02, 0.10), 3),
                p_bg=round(rng.uniform(0.20, 0.50), 3),
                loss_bad=round(rng.uniform(0.50, 0.90), 2)))
    return FaultPlan(actions=actions)


def random_spec(rng: random.Random, *, index: int, seed: int,
                duration_ms: float = 3_000.0):
    """One random, valid :class:`~repro.experiments.spec.ExperimentSpec`.

    Every constraint the runner enforces is respected by construction:
    ``s <= r`` sources, depth > 1 only for ringnet, mobility only for
    ringnet, crash targets that exist in the generated shape, and
    failures early enough that the recovery window fits the run.
    """
    from repro.experiments.spec import (ChurnSpec, ExperimentSpec,
                                        FailureEvent, HierarchyShape,
                                        MobilitySpec, WorkloadSpec)

    system = _choice_weighted(rng, _SYSTEM_WEIGHTS)

    n_br = rng.randint(2, 4)
    ags_per_br = rng.randint(1, 3)
    aps_per_ag = rng.randint(1, 3)
    mhs_per_ap = rng.randint(1, 3)
    depth = 1
    ring_size = 3
    if system == "ringnet" and rng.random() < 0.15:
        depth = 2
        ring_size = rng.randint(2, 3)
        n_br = 2
    hierarchy = HierarchyShape(n_br=n_br, ags_per_br=ags_per_br,
                               aps_per_ag=aps_per_ag, mhs_per_ap=mhs_per_ap,
                               depth=depth, ring_size=ring_size)

    s = rng.randint(1, n_br)  # the paper's s <= r assumption
    pattern = "poisson" if rng.random() < 0.3 else "cbr"
    workload = WorkloadSpec(s=s, rate_per_sec=float(rng.randint(5, 35)),
                            pattern=pattern)

    mobility = MobilitySpec()
    if system == "ringnet" and depth == 1 and rng.random() < 0.3:
        mobility = MobilitySpec(
            enabled=True,
            model="directional" if rng.random() < 0.5 else "random_walk",
            mean_dwell_ms=float(rng.randint(600, 3_000)),
        )

    churn = ChurnSpec()
    if rng.random() < 0.4:
        churn = ChurnSpec(enabled=True,
                          mean_interval_ms=float(rng.randint(200, 1_000)),
                          min_members=1)

    failures: List[Any] = []
    if rng.random() < 0.4:
        # Early enough that recovery must complete inside the run: the
        # tail after the crash covers the (duration-scaled) recovery
        # window the campaign checks with, so QuiescenceMonitor really
        # verifies every injected crash instead of skipping it.
        at_ms = round(duration_ms * rng.uniform(0.2, 1.0 - _RECOVERY_FRACTION),
                      1)
        if system in ("ringnet", "single_ring") and rng.random() < 0.6:
            failures.append(FailureEvent(at_ms=at_ms,
                                         kind="crash_token_holder"))
        elif system == "ringnet" and depth == 1:
            if ags_per_br > 1 and rng.random() < 0.5:
                # Crash a non-leader AG: ring repair without reparenting
                # the whole subtree through a missing leader.
                br = rng.randrange(n_br)
                failures.append(FailureEvent(
                    at_ms=at_ms, kind="crash",
                    target=f"ag:{br}.{rng.randrange(1, ags_per_br)}"))
            else:
                br = rng.randrange(n_br)
                ag = rng.randrange(ags_per_br)
                ap = rng.randrange(aps_per_ag)
                failures.append(FailureEvent(
                    at_ms=at_ms, kind="crash",
                    target=f"ap:{br}.{ag}.{ap}"))

    faults = FaultPlan()
    protocol: Dict[str, Any] = {}
    if system == "ringnet" and depth == 1 and rng.random() < 0.35:
        faults = random_fault_plan(rng, n_br=n_br, duration_ms=duration_ms)
        # No maintenance event fires for a network fault, so the token
        # must ride out any outage in retransmission: widen the retry
        # budget past the longest partition/flap-down span the generator
        # can produce (12 x 25 ms rto > 250 ms).
        protocol["max_retries"] = 12

    return ExperimentSpec(
        name=f"fuzz-{index:04d}",
        description="randomized conformance scenario",
        system=system,
        hierarchy=hierarchy,
        protocol=protocol,
        workload=workload,
        mobility=mobility,
        churn=churn,
        failures=failures,
        faults=faults,
        duration_ms=float(duration_ms),
        warmup_ms=0.0,
        seed=seed,
    )


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Machine-readable outcome of one fuzz campaign."""

    budget: int
    base_seed: int
    duration_ms: float
    cases: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return sum(len(c["violations"]) for c in self.cases)

    @property
    def failed_cases(self) -> List[Dict[str, Any]]:
        return [c for c in self.cases if c["violations"]]

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.validation.fuzz/v1",
            "budget": self.budget,
            "base_seed": self.base_seed,
            "duration_ms": self.duration_ms,
            "ok": self.ok,
            "total_violations": self.total_violations,
            "n_failed_cases": len(self.failed_cases),
            "cases": list(self.cases),
        }


def _case_payload(spec, result: CheckResult) -> Dict[str, Any]:
    payload = result.to_dict()
    # The full spec travels with every failing case so it replays from
    # the report alone; passing cases keep the report compact.
    if result.violations:
        payload["spec"] = spec.to_dict()
    return payload


def run_case(spec, *, record_trace: bool = False) -> CheckResult:
    """Check one generated spec (thin wrapper kept for workers/tests)."""
    return check_spec(spec, record_trace=record_trace)


def fuzz(
    budget: int = 20,
    base_seed: int = 0,
    duration_ms: float = 3_000.0,
    progress: Optional[Any] = None,
    save_traces_dir: Optional[str] = None,
) -> FuzzReport:
    """Generate and check ``budget`` random scenarios.

    Spec shapes derive from ``base_seed`` alone; each case's simulation
    seed is independently derived via
    :func:`repro.sim.rand.derive_seed`, so a campaign is reproducible
    end-to-end from ``(budget, base_seed, duration_ms)``.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    report = FuzzReport(budget=budget, base_seed=base_seed,
                        duration_ms=duration_ms)
    shape_rng = random.Random(derive_seed(base_seed, "fuzz-shapes"))
    window = _campaign_recovery_window(duration_ms)
    for index in range(budget):
        seed = derive_seed(base_seed, "fuzz-case", index)
        spec = random_spec(shape_rng, index=index, seed=seed,
                           duration_ms=duration_ms)
        suite = standard_suite(spec.system, recovery_window_ms=window)
        result = check_spec(spec, suite=suite)
        if result.violations and save_traces_dir is not None:
            # Re-run the failing case with recording on: traces are too
            # big to capture speculatively for every passing case.
            result = check_spec(
                spec, record_trace=True,
                suite=standard_suite(spec.system, recovery_window_ms=window))
            _save_failure(save_traces_dir, spec, result)
        report.cases.append(_case_payload(spec, result))
        if progress is not None:
            progress(index, budget, result)
    return report


def _save_failure(dirpath: str, spec, result: CheckResult) -> None:
    import os
    os.makedirs(dirpath, exist_ok=True)
    base = os.path.join(dirpath, spec.name)
    with open(base + ".spec.json", "w", encoding="utf-8") as fh:
        fh.write(spec.to_json() + "\n")
    if result.trace_jsonl is not None:
        with open(base + ".trace.jsonl", "w", encoding="utf-8") as fh:
            fh.write(result.trace_jsonl)
