"""The protocol-invariant monitor family.

Each monitor checks one family of claims the paper makes about RingNet,
online, from :class:`~repro.sim.trace.TraceRecord` streams:

* :class:`TokenMonitor` — **token uniqueness and liveness**: at most one
  OrderingToken lineage mints any global sequence number (checked at the
  ``ordered`` records every top-ring NE emits), a lineage's
  ``NextGlobalSeqNo`` never regresses, a destroyed token never
  circulates again, and — when a liveness window is configured — the
  token keeps rotating until the end of the run.
* :class:`MembershipMonitor` — **membership view consistency**: an MH
  only receives application deliveries while it is a member, and at the
  end of a run the per-AP registration tables (each NE's WT) agree with
  the set of member MHs — every member is registered at exactly one
  live AP, modulo in-flight handoffs and crashed attachment points.
* :class:`HandoffMonitor` — **handoff atomicity**: across a cell
  switch advertising ``MaxDeliveredSeqNo = F``, delivery resumes at
  exactly ``F + 1`` (no silent gap) and nothing at or below ``F`` is
  delivered again (no duplicate).
* :class:`BoundsMonitor` — **bounded retransmission state**: every
  reliable channel's per-peer unacked-segment population stays within
  the configuration-derived ceiling — the delivery window, plus the MQ
  retention a gap-request catch-up may replay unwindowed, plus a
  control-traffic allowance — and WQ/MQ occupancy respects any
  configured capacity.  The claim is that channel state is bounded by
  *configuration*, never by run length or group size.
* :class:`QuiescenceMonitor` — **recovery after failure**: after an NE
  crash the ordering token resumes rotating and application deliveries
  resume within a recovery window (for members with a live attachment
  point).
* :class:`PartitionRecoveryMonitor` — **re-convergence after a
  partition heals** (``fault.partition`` / ``fault.heal`` records from
  :mod:`repro.faults`): post-heal, application delivery and token
  rotation resume within a recovery window, every scheduled heal
  actually happened, and memberships initiated before the heal reach
  confirmation instead of staying wedged.

All monitors are pure observers (see :mod:`repro.validation.monitor`):
they never mutate protocol state, so checked and unchecked runs are
byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.trace import Subscriber, TraceRecord
from repro.validation.monitor import Monitor

#: Default recovery window after a crash before quiescence checks fire.
DEFAULT_RECOVERY_WINDOW_MS = 3_000.0

#: Default settle window: state inconsistencies younger than this at the
#: end of a run are treated as in-flight, not violations.
DEFAULT_SETTLE_MS = 500.0

#: Default slack above the delivery window for control traffic
#: (token passes, gap requests, membership relays) on one channel.
DEFAULT_PER_PEER_SLACK = 64

#: Floor for the derived token liveness window: crash recovery needs
#: several membership-maintenance signal rounds before regeneration.
MIN_LIVENESS_WINDOW_MS = 1_500.0


def derived_liveness_window(net: Any) -> Optional[float]:
    """A safe token-liveness window from the net's actual top ring."""
    top = getattr(net, "top_ring_nes", None)
    if top is None:
        return None
    nes = top()
    if not nes:
        return None
    rotation = max(ne.expected_token_rotation() for ne in nes)
    return max(MIN_LIVENESS_WINDOW_MS, 25.0 * rotation)


class TokenMonitor(Monitor):
    """Token uniqueness & liveness (paper §4.2.1).

    Parameters
    ----------
    liveness_window_ms:
        :meth:`finish` requires the last ``token.hold`` to fall within
        this many ms of the end of the run (given any hold was ever
        seen).  Default None derives a window from the net's ring
        geometry when a net is available, and skips the liveness check
        otherwise (e.g. offline replay of a truncated trace).
    """

    name = "token"

    def __init__(self, trace=None, liveness_window_ms: Optional[float] = None):
        self.liveness_window_ms = liveness_window_ms
        self.holds = 0
        self.last_hold_time: float = -1.0
        self._next_gseq_of: Dict[Any, int] = {}
        self._destroyed: Set[Any] = set()
        self._identity_of_gseq: Dict[int, Tuple[Any, int]] = {}
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        return {
            "token.hold": self._on_hold,
            "token.destroyed": self._on_destroyed,
            "ordered": self._on_ordered,
        }

    # ------------------------------------------------------------------
    def _on_hold(self, rec: TraceRecord) -> None:
        self.holds += 1
        self.last_hold_time = rec.time
        tid = rec.get("token_id")
        if tid is None:
            return
        if tid in self._destroyed:
            self.violation(
                f"destroyed token {tid} held again at {rec['node']} "
                f"(t={rec.time:.1f})"
            )
        g = rec["next_gseq"]
        last = self._next_gseq_of.get(tid)
        if last is not None and g < last:
            self.violation(
                f"token {tid} NextGlobalSeqNo regressed {last} -> {g} "
                f"at {rec['node']} (t={rec.time:.1f})"
            )
        self._next_gseq_of[tid] = g

    def _on_destroyed(self, rec: TraceRecord) -> None:
        tid = rec.get("token_id")
        if tid is not None:
            self._destroyed.add(tid)

    def _on_ordered(self, rec: TraceRecord) -> None:
        # Every top-ring NE emits `ordered` for every message it moves
        # into its MQ; two live tokens minting the same gseq for
        # different messages surface here before any MH delivers.
        gseq = rec["gseq"]
        ident = (rec["ordering_node"], rec["local_seq"])
        known = self._identity_of_gseq.get(gseq)
        if known is None:
            self._identity_of_gseq[gseq] = ident
        elif known != ident:
            self.violation(
                f"uniqueness: gseq {gseq} minted for {known} and for "
                f"{ident} (seen at {rec['node']}, t={rec.time:.1f})"
            )

    # ------------------------------------------------------------------
    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        window = self.liveness_window_ms
        if window is None and net is not None:
            window = derived_liveness_window(net)
        if window is not None and end_time is not None and self.holds:
            if end_time - self.last_hold_time > window:
                self.violation(
                    f"liveness: no token.hold in the last "
                    f"{end_time - self.last_hold_time:.0f} ms of the run "
                    f"(window {window:.0f} ms, "
                    f"last hold t={self.last_hold_time:.1f})"
                )

    def report(self) -> Dict[str, Any]:
        return {
            "monitor": self.name,
            "holds": self.holds,
            "lineages": len(self._next_gseq_of),
            "destroyed": len(self._destroyed),
            "distinct_gseqs": len(self._identity_of_gseq),
            "violations": self.violation_count,
        }


class MembershipMonitor(Monitor):
    """Membership view consistency across NEs."""

    name = "membership"

    def __init__(self, trace=None, settle_ms: float = DEFAULT_SETTLE_MS):
        self.settle_ms = settle_ms
        #: mh -> "joined" | "member" | "left"
        self._status: Dict[Any, str] = {}
        self._regs: Dict[Any, Set[Any]] = {}
        self._last_event: Dict[Any, float] = {}
        self._dead_nodes: Set[Any] = set()
        self._last_time: float = 0.0
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        return {
            "mh.join": self._on_join,
            "mh.member": self._on_member,
            "mh.leave": self._on_leave,
            "mh.handoff": self._on_handoff,
            "mh.deliver": self._on_deliver,
            "ap.register": self._on_register,
            "ap.detach": self._on_detach,
            "fault.crash": self._on_crash,
        }

    # ------------------------------------------------------------------
    def _touch(self, mh: Any, t: float) -> None:
        self._last_event[mh] = t
        self._last_time = max(self._last_time, t)

    def _on_join(self, rec: TraceRecord) -> None:
        self._status[rec["mh"]] = "joined"
        self._touch(rec["mh"], rec.time)

    def _on_member(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        if self._status.get(mh) not in ("joined", "member"):
            self.violation(
                f"{mh} confirmed as member without a preceding join "
                f"(t={rec.time:.1f})"
            )
        self._status[mh] = "member"
        self._touch(mh, rec.time)

    def _on_leave(self, rec: TraceRecord) -> None:
        self._status[rec["mh"]] = "left"
        self._touch(rec["mh"], rec.time)

    def _on_handoff(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        # A handoff by a non-member registers with joining=True — the
        # paper's re-entry path — so it arms membership like a join.
        if self._status.get(mh) != "member":
            self._status[mh] = "joined"
        self._touch(mh, rec.time)

    def _on_deliver(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        status = self._status.get(mh)
        if status == "left":
            self.violation(
                f"{mh} received gseq {rec['gseq']} after leaving the "
                f"group (t={rec.time:.1f})"
            )
        elif status is None:
            self.violation(
                f"{mh} received gseq {rec['gseq']} without ever joining "
                f"(t={rec.time:.1f})"
            )

    def _on_register(self, rec: TraceRecord) -> None:
        self._regs.setdefault(rec["mh"], set()).add(rec["node"])
        self._touch(rec["mh"], rec.time)

    def _on_detach(self, rec: TraceRecord) -> None:
        self._regs.setdefault(rec["mh"], set()).discard(rec["node"])
        self._touch(rec["mh"], rec.time)

    def _on_crash(self, rec: TraceRecord) -> None:
        self._dead_nodes.add(rec["node"])

    # ------------------------------------------------------------------
    def _settled(self, mh: Any, end: float) -> bool:
        """True when the MH's state has had time to converge."""
        return end - self._last_event.get(mh, end) >= self.settle_ms

    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        end = self._last_time if end_time is None else end_time
        if net is None:
            # Event-only view (offline replay): per-MH registration sets.
            for mh, status in self._status.items():
                if status not in ("joined", "member"):
                    continue
                if not self._settled(mh, end):
                    continue
                live = self._regs.get(mh, set()) - self._dead_nodes
                if len(live) > 1:
                    self.violation(
                        f"member {mh} registered at {len(live)} live APs "
                        f"at end of trace: {sorted(map(str, live))}"
                    )
            return

        # Authoritative state view: walk every NE's working table.
        nes = getattr(net, "nes", None)
        mobile_hosts = getattr(net, "mobile_hosts", {})
        if nes is None or not mobile_hosts:
            return
        reg_at: Dict[Any, List[Any]] = {}
        for ne in nes.values():
            if not getattr(ne, "alive", True):
                continue
            wt = getattr(ne, "wt", None)
            if wt is not None:
                children = wt.children
            else:
                # Baselines without a working table keep a plain member
                # set (e.g. the unordered NE, sequencer APs).
                children = getattr(ne, "members", ())
            for child in children:
                if child in mobile_hosts:
                    reg_at.setdefault(child, []).append(ne.id)
        for mh_id, mh in mobile_hosts.items():
            if not getattr(mh, "is_member", False):
                continue
            if not self._settled(mh_id, end):
                continue
            aps = reg_at.get(mh_id, [])
            if len(aps) > 1:
                self.violation(
                    f"member {mh_id} registered at {len(aps)} APs at end "
                    f"of run: {sorted(map(str, aps))}"
                )
            elif not aps:
                # Only an inconsistency when the MH's attachment point is
                # still alive — members stranded behind a crashed AP are
                # a liveness problem (QuiescenceMonitor's beat), not a
                # view inconsistency.
                ap = getattr(mh, "ap", None)
                ap_ne = nes.get(ap) if ap is not None else None
                if ap_ne is not None and getattr(ap_ne, "alive", True) \
                        and ap not in self._dead_nodes:
                    self.violation(
                        f"member {mh_id} attached to live AP {ap} but "
                        f"registered nowhere at end of run"
                    )

    def report(self) -> Dict[str, Any]:
        states = {"joined": 0, "member": 0, "left": 0}
        for s in self._status.values():
            states[s] = states.get(s, 0) + 1
        return {
            "monitor": self.name,
            "hosts_seen": len(self._status),
            **states,
            "violations": self.violation_count,
        }


class HandoffMonitor(Monitor):
    """Handoff atomicity: no delivery gap or duplicate across a switch."""

    name = "handoff"

    def __init__(self, trace=None):
        self.handoffs = 0
        #: mh -> max gseq delivered/tombstoned so far (membership span).
        self._front: Dict[Any, int] = {}
        #: mh -> MaxDeliveredSeqNo advertised by an unresolved handoff.
        self._pending: Dict[Any, int] = {}
        #: MHs that emitted mh.member (RingNet endpoints): only those
        #: get the strict duplicate check, since baselines reuse the
        #: gseq field for per-source sequence numbers.
        self._span_known: Set[Any] = set()
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        return {
            "mh.handoff": self._on_handoff,
            "mh.member": self._on_member,
            "mh.deliver": self._on_deliver,
            "mh.tombstone": self._on_tombstone,
        }

    # ------------------------------------------------------------------
    def _on_member(self, rec: TraceRecord) -> None:
        mh = rec["mh"]
        # A (re)join starts a new span at base+1; forget handoff state.
        self._front[mh] = rec["base"]
        self._pending.pop(mh, None)
        self._span_known.add(mh)

    def _on_handoff(self, rec: TraceRecord) -> None:
        self.handoffs += 1
        mh = rec["mh"]
        front = rec.get("front")
        if front is None or front < 0:
            # Joining handoff or a baseline without resume-point
            # semantics: atomicity is unverifiable, skip this switch.
            self._pending.pop(mh, None)
            return
        self._pending[mh] = front

    def _advance(self, rec: TraceRecord, kind: str) -> None:
        mh, gseq = rec["mh"], rec["gseq"]
        pending = self._pending.pop(mh, None)
        if pending is not None:
            if gseq <= pending:
                self.violation(
                    f"duplicate across handoff: {mh} advertised front "
                    f"{pending} but then {kind}ed gseq {gseq} again "
                    f"(t={rec.time:.1f})"
                )
            elif gseq > pending + 1:
                self.violation(
                    f"gap across handoff: {mh} advertised front {pending} "
                    f"but resumed at gseq {gseq}, skipping "
                    f"{pending + 1}..{gseq - 1} (t={rec.time:.1f})"
                )
        if mh in self._span_known and kind == "deliver":
            last = self._front.get(mh)
            if last is not None and gseq <= last:
                self.violation(
                    f"duplicate delivery: {mh} saw gseq {gseq} again "
                    f"after reaching {last} (t={rec.time:.1f})"
                )
        self._front[mh] = max(self._front.get(mh, gseq - 1), gseq)

    def _on_deliver(self, rec: TraceRecord) -> None:
        self._advance(rec, "deliver")

    def _on_tombstone(self, rec: TraceRecord) -> None:
        self._advance(rec, "tombstone")

    def report(self) -> Dict[str, Any]:
        return {
            "monitor": self.name,
            "handoffs": self.handoffs,
            "unresolved": len(self._pending),
            "violations": self.violation_count,
        }


class BoundsMonitor(Monitor):
    """Retransmission-buffer boundedness (paper §4.2.3 / §5).

    Parameters
    ----------
    per_peer_limit:
        Max unacked segments tolerated per (channel, peer).  Defaults to
        ``delivery_window + mq_retention`` (a gap-request catch-up
        replays up to the retained window unwindowed, §4.2.3) plus
        :data:`DEFAULT_PER_PEER_SLACK` for control traffic, resolved at
        :meth:`finish` from ``net.cfg`` when available.
    """

    name = "bounds"

    def __init__(self, trace=None, per_peer_limit: Optional[int] = None):
        self.per_peer_limit = per_peer_limit
        self.give_ups = 0
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        return {"transport.give_up": self._on_give_up}

    def _on_give_up(self, rec: TraceRecord) -> None:
        # Give-ups are best-effort semantics, not violations; counted so
        # reports show how hard the bounded-retransmission path worked.
        self.give_ups += 1

    # ------------------------------------------------------------------
    def _nodes(self, net: Any):
        for attr in ("nes", "sources", "mobile_hosts", "msss", "shs", "aps"):
            group = getattr(net, attr, None)
            if isinstance(group, dict):
                yield from group.values()

    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        if net is None:
            return
        cfg = getattr(net, "cfg", None)
        window = getattr(cfg, "delivery_window", 16) if cfg else 16
        retention = getattr(cfg, "mq_retention", 256) if cfg else 256
        limit = self.per_peer_limit
        if limit is None:
            limit = window + retention + DEFAULT_PER_PEER_SLACK
        for node in self._nodes(net):
            chan = getattr(node, "chan", None)
            if chan is None:
                continue
            for dst, peak in getattr(chan, "peak_in_flight_by_dst",
                                     {}).items():
                if peak > limit:
                    self.violation(
                        f"{node.id} -> {dst}: peak {peak} unacked segments "
                        f"exceeds limit {limit} (window {window} + "
                        f"retention {retention})"
                    )
        # Configured queue capacities are hard bounds.
        if cfg is not None and hasattr(net, "buffer_reports"):
            for rep in net.buffer_reports():
                if cfg.wq_capacity and rep["wq_peak"] > cfg.wq_capacity:
                    self.violation(
                        f"{rep['node']}: WQ peak {rep['wq_peak']} exceeds "
                        f"capacity {cfg.wq_capacity}"
                    )
                if cfg.mq_capacity and rep["mq_peak"] > cfg.mq_capacity:
                    self.violation(
                        f"{rep['node']}: MQ peak {rep['mq_peak']} exceeds "
                        f"capacity {cfg.mq_capacity}"
                    )

    def report(self) -> Dict[str, Any]:
        return {
            "monitor": self.name,
            "give_ups": self.give_ups,
            "violations": self.violation_count,
        }


class QuiescenceMonitor(Monitor):
    """Recovery after failure: token and deliveries resume post-crash."""

    name = "quiescence"

    def __init__(self, trace=None,
                 recovery_window_ms: float = DEFAULT_RECOVERY_WINDOW_MS):
        self.recovery_window_ms = recovery_window_ms
        #: (crash time, node, holds seen before this crash).
        self._crashes: List[Tuple[float, Any, int]] = []
        self._holds = 0
        self._first_hold_after: Dict[int, float] = {}
        self._first_deliver_after: Dict[int, float] = {}
        #: Crash indices still awaiting their first post-crash hold /
        #: delivery, so the per-record work is O(1) once satisfied.
        self._awaiting_hold: List[int] = []
        self._awaiting_deliver: List[int] = []
        self._last_send: float = -1.0
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        return {
            "fault.crash": self._on_crash,
            "token.hold": self._on_hold,
            "mh.deliver": self._on_deliver,
            "source.send": self._on_send,
        }

    # ------------------------------------------------------------------
    def _on_crash(self, rec: TraceRecord) -> None:
        index = len(self._crashes)
        self._crashes.append((rec.time, rec["node"], self._holds))
        self._awaiting_hold.append(index)
        self._awaiting_deliver.append(index)

    def _on_hold(self, rec: TraceRecord) -> None:
        self._holds += 1
        if self._awaiting_hold:
            for i in self._awaiting_hold:
                self._first_hold_after[i] = rec.time
            self._awaiting_hold.clear()

    def _on_deliver(self, rec: TraceRecord) -> None:
        if self._awaiting_deliver:
            for i in self._awaiting_deliver:
                self._first_deliver_after[i] = rec.time
            self._awaiting_deliver.clear()

    def _on_send(self, rec: TraceRecord) -> None:
        self._last_send = rec.time

    # ------------------------------------------------------------------
    @staticmethod
    def _any_live_attached_member(net: Any) -> bool:
        """Is any member MH attached to a live, still-known AP?"""
        nes = getattr(net, "nes", None)
        if nes is None or not hasattr(net, "member_hosts"):
            return True  # cannot tell: keep the check armed
        for mh in net.member_hosts():
            ap = getattr(mh, "ap", None)
            ne = nes.get(ap) if ap is not None else None
            if ne is not None and getattr(ne, "alive", True):
                return True
        return False

    @staticmethod
    def _any_live_source(net: Any) -> bool:
        """Can traffic still enter the system — does any source feed a
        live NE?  A source whose corresponding node crashed is
        disconnected at the host level (the paper gives no source
        re-attachment mechanism), so deliveries legitimately stop when
        every source is orphaned."""
        nes = getattr(net, "nes", None)
        sources = getattr(net, "sources", None)
        if nes is None or not isinstance(sources, dict) or not sources:
            return True  # cannot tell: keep the check armed
        for src in sources.values():
            target = getattr(src, "corresponding", None)
            if target is None:
                target = getattr(src, "sink", None)
            ne = nes.get(target) if target is not None else None
            if ne is not None and getattr(ne, "alive", True):
                return True
        return False

    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        if not self._crashes or end_time is None:
            return
        window = self.recovery_window_ms
        for i, (t, node, holds_before) in enumerate(self._crashes):
            if end_time - t < window:
                continue  # run ended inside the recovery allowance
            # Only require token resumption when the token was actually
            # rotating before *this* crash (per-crash, so an early
            # pre-token crash doesn't disarm the check for later ones).
            if holds_before:
                hold = self._first_hold_after.get(i)
                if hold is None or hold - t > window:
                    self.violation(
                        f"token did not resume within {window:.0f} ms of "
                        f"the crash of {node} at t={t:.1f}"
                    )
            if self._last_send > t + window:
                # Sources kept talking well past the crash; somebody
                # reachable should be hearing them — unless every member
                # (or every source) lost its attachment point to the
                # crash, in which case silence is the expected outcome.
                deliver = self._first_deliver_after.get(i)
                if (deliver is None or deliver - t > window) and (
                        net is None or (
                            self._any_live_attached_member(net)
                            and self._any_live_source(net))):
                    self.violation(
                        f"deliveries did not resume within {window:.0f} ms "
                        f"of the crash of {node} at t={t:.1f}"
                    )

    def report(self) -> Dict[str, Any]:
        return {
            "monitor": self.name,
            "crashes": len(self._crashes),
            "violations": self.violation_count,
        }


class PartitionRecoveryMonitor(Monitor):
    """Re-convergence after a network partition heals.

    Checks three claims about every healed :mod:`repro.faults`
    partition:

    * **delivery re-converges** — if sources keep talking well past the
      heal, somebody reachable hears them within the recovery window
      (same liveness guards as :class:`QuiescenceMonitor`);
    * **ordering re-converges** — if the token was rotating before the
      partition started, ``token.hold`` records resume within the
      window of the heal;
    * **membership re-converges** — an MH whose join/handoff was still
      unconfirmed when the partition healed reaches ``mh.member``
      within the window instead of staying wedged behind lost
      registrations.

    A partition that advertised a ``heal_at`` but never emitted
    ``fault.heal`` by the end of the run is itself a violation (the
    fault subsystem broke its schedule).
    """

    name = "partition_recovery"

    def __init__(self, trace=None,
                 recovery_window_ms: float = DEFAULT_RECOVERY_WINDOW_MS,
                 settle_ms: float = DEFAULT_SETTLE_MS):
        self.recovery_window_ms = recovery_window_ms
        self.settle_ms = settle_ms
        #: index -> (partition time, advertised heal_at, holds before).
        self._partitions: Dict[int, Tuple[float, Optional[float], int]] = {}
        #: heal order -> (heal time, partition index).
        self._heals: List[Tuple[float, int]] = []
        self._holds = 0
        self._first_hold_after: Dict[int, float] = {}
        self._first_deliver_after: Dict[int, float] = {}
        self._awaiting_hold: List[int] = []
        self._awaiting_deliver: List[int] = []
        self._last_send: float = -1.0
        #: mh -> time of the last unconfirmed join/handoff (dropped on
        #: mh.member / mh.leave).
        self._pending_join: Dict[Any, float] = {}
        super().__init__(trace)

    def handlers(self) -> Dict[Optional[str], Subscriber]:
        return {
            "fault.partition": self._on_partition,
            "fault.heal": self._on_heal,
            "token.hold": self._on_hold,
            "mh.deliver": self._on_deliver,
            "source.send": self._on_send,
            "mh.join": self._on_join,
            "mh.member": self._on_member,
            "mh.leave": self._on_leave,
        }

    # ------------------------------------------------------------------
    def _on_partition(self, rec: TraceRecord) -> None:
        self._partitions[rec["index"]] = (rec.time, rec.get("heal_at"),
                                          self._holds)

    def _on_heal(self, rec: TraceRecord) -> None:
        slot = len(self._heals)
        self._heals.append((rec.time, rec["index"]))
        self._awaiting_hold.append(slot)
        self._awaiting_deliver.append(slot)

    def _on_hold(self, rec: TraceRecord) -> None:
        self._holds += 1
        if self._awaiting_hold:
            for i in self._awaiting_hold:
                self._first_hold_after[i] = rec.time
            self._awaiting_hold.clear()

    def _on_deliver(self, rec: TraceRecord) -> None:
        if self._awaiting_deliver:
            for i in self._awaiting_deliver:
                self._first_deliver_after[i] = rec.time
            self._awaiting_deliver.clear()
        # An application delivery proves the MH's registration path
        # works end-to-end — as good as a membership confirmation.
        if self._pending_join:
            self._pending_join.pop(rec["mh"], None)

    def _on_send(self, rec: TraceRecord) -> None:
        self._last_send = rec.time

    def _on_join(self, rec: TraceRecord) -> None:
        self._pending_join[rec["mh"]] = rec.time

    def _on_member(self, rec: TraceRecord) -> None:
        self._pending_join.pop(rec["mh"], None)

    def _on_leave(self, rec: TraceRecord) -> None:
        self._pending_join.pop(rec["mh"], None)

    # ------------------------------------------------------------------
    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        if not self._partitions or end_time is None:
            return
        window = self.recovery_window_ms
        healed = {index for _, index in self._heals}
        for index, (t, heal_at, _) in sorted(self._partitions.items()):
            if index in healed or heal_at is None:
                continue
            if end_time - heal_at > self.settle_ms:
                self.violation(
                    f"partition {index} (t={t:.1f}) advertised heal at "
                    f"{heal_at:.1f} but never healed by end of run"
                )
        for slot, (h, index) in enumerate(self._heals):
            if end_time - h < window:
                continue  # run ended inside the recovery allowance
            holds_before = self._partitions.get(index, (0.0, None, 0))[2]
            if holds_before:
                hold = self._first_hold_after.get(slot)
                if hold is None or hold - h > window:
                    self.violation(
                        f"token did not resume within {window:.0f} ms of "
                        f"the heal of partition {index} at t={h:.1f}"
                    )
            if self._last_send > h + window:
                deliver = self._first_deliver_after.get(slot)
                if (deliver is None or deliver - h > window) and (
                        net is None or (
                            QuiescenceMonitor._any_live_attached_member(net)
                            and QuiescenceMonitor._any_live_source(net))):
                    self.violation(
                        f"deliveries did not resume within {window:.0f} ms "
                        f"of the heal of partition {index} at t={h:.1f}"
                    )
        if self._heals:
            last_heal = max(h for h, _ in self._heals)
            for mh, joined_at in sorted(self._pending_join.items()):
                if joined_at > last_heal:
                    continue  # initiated after every heal: settle rules
                deadline = max(joined_at, last_heal) + window
                if end_time <= deadline:
                    continue
                if net is not None:
                    # A join wedged behind a *crashed* AP is a liveness
                    # question for QuiescenceMonitor, not partition
                    # recovery.
                    host = getattr(net, "mobile_hosts", {}).get(mh)
                    ap = getattr(host, "ap", None) if host else None
                    nes = getattr(net, "nes", {})
                    ap_ne = nes.get(ap) if ap is not None else None
                    if ap_ne is None or not getattr(ap_ne, "alive", True):
                        continue
                self.violation(
                    f"membership did not re-converge: {mh} joined at "
                    f"t={joined_at:.1f} and was still unconfirmed "
                    f"{window:.0f} ms after the last heal (t={last_heal:.1f})"
                )

    def report(self) -> Dict[str, Any]:
        return {
            "monitor": self.name,
            "partitions": len(self._partitions),
            "heals": len(self._heals),
            "violations": self.violation_count,
        }
