"""The online-monitor contract shared by every protocol invariant check.

A :class:`Monitor` subscribes to :class:`~repro.sim.trace.TraceBus`
records, accumulates human-readable violation strings as the run
unfolds (the style :class:`~repro.metrics.order_checker.OrderChecker`
established), and optionally performs end-of-run state checks in
:meth:`Monitor.finish`.  Monitors are strictly observers: attaching one
never perturbs the simulation, so a checked run produces byte-identical
results to an unchecked one.

:class:`MonitorSuite` bundles several monitors behind one
attach/finish/report surface and doubles as a context manager so
subscriptions always detach (no subscriber leaks across repeated runs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.trace import Subscriber, TraceBus


class Monitor:
    """Base class: violation accumulation + scoped trace subscriptions.

    Subclasses declare their interests by overriding :meth:`handlers`
    and record problems with :meth:`violation`.  State-dependent
    end-of-run checks go in :meth:`finish`, which must tolerate
    ``net=None`` (offline replay has trace records but no simulated
    network to inspect).

    Subclass ``__init__`` methods initialize their own state **first**
    and call ``super().__init__(trace)`` **last**: the base constructor
    attaches immediately when a trace is given, and :meth:`handlers`
    may read subclass configuration.
    """

    #: Short identifier used in reports and combined violation lists.
    name = "monitor"

    #: Violations retained verbatim; beyond this they are only counted
    #: (a pathological run must not balloon memory with strings).
    max_violations = 10_000

    def __init__(self, trace: Optional[TraceBus] = None) -> None:
        self.violations: List[str] = []
        self.suppressed = 0
        self._trace: Optional[TraceBus] = None
        self._subs: List[Tuple[Optional[str], Subscriber]] = []
        if trace is not None:
            self.attach(trace)

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def handlers(self) -> Dict[Optional[str], Subscriber]:
        """``{kind: callback}`` interests (``None`` = every kind)."""
        return {}

    def attach(self, trace: TraceBus) -> "Monitor":
        """Subscribe every handler; returns self for chaining."""
        if self._trace is not None:
            raise RuntimeError(f"{self.name} monitor is already attached")
        self._trace = trace
        for kind, fn in self.handlers().items():
            trace.subscribe(kind, fn)
            self._subs.append((kind, fn))
        return self

    def detach(self) -> None:
        """Remove every subscription this monitor added (idempotent)."""
        if self._trace is None:
            return
        for kind, fn in self._subs:
            self._trace.unsubscribe(kind, fn)
        self._subs.clear()
        self._trace = None

    def __enter__(self) -> "Monitor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Violation accumulation
    # ------------------------------------------------------------------
    def violation(self, msg: str) -> None:
        """Record one invariant violation."""
        if len(self.violations) < self.max_violations:
            self.violations.append(msg)
        else:
            self.suppressed += 1

    @property
    def violation_count(self) -> int:
        """Total violations, including ones suppressed past the cap."""
        return len(self.violations) + self.suppressed

    @property
    def ok(self) -> bool:
        """True when no invariant has been violated so far."""
        return self.violation_count == 0

    def assert_ok(self) -> None:
        """Raise AssertionError listing the first violations (tests)."""
        if not self.ok:
            head = "; ".join(self.violations[:5])
            raise AssertionError(
                f"{self.violation_count} {self.name} violations: {head}"
            )

    # ------------------------------------------------------------------
    # End-of-run hook
    # ------------------------------------------------------------------
    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        """Run end-of-run checks.

        ``net`` is the protocol facade (``RingNet`` or a baseline) for
        state inspection, or None when replaying a recorded trace.
        ``end_time`` is the simulated time the run stopped at.
        """

    def report(self) -> Dict[str, Any]:
        """Headline numbers for experiment tables / fuzz reports."""
        return {"monitor": self.name, "violations": self.violation_count}


class MonitorSuite:
    """A set of monitors driven as one unit."""

    def __init__(self, monitors: List[Monitor]):
        self.monitors = list(monitors)
        names = [m.name for m in self.monitors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate monitor names: {sorted(names)}")

    def __iter__(self):
        return iter(self.monitors)

    def __len__(self) -> int:
        return len(self.monitors)

    def get(self, name: str) -> Monitor:
        """The monitor registered under ``name``."""
        for m in self.monitors:
            if m.name == name:
                return m
        raise KeyError(f"no monitor named {name!r} in suite")

    # ------------------------------------------------------------------
    def attach(self, trace: TraceBus) -> "MonitorSuite":
        for m in self.monitors:
            m.attach(trace)
        return self

    def detach(self) -> None:
        for m in self.monitors:
            m.detach()

    def __enter__(self) -> "MonitorSuite":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def finish(self, net: Any = None, end_time: Optional[float] = None) -> None:
        for m in self.monitors:
            m.finish(net=net, end_time=end_time)

    def all_violations(self) -> List[str]:
        """Every violation across the suite, prefixed by monitor name."""
        out: List[str] = []
        for m in self.monitors:
            out.extend(f"{m.name}: {v}" for v in m.violations)
            if m.suppressed:
                out.append(f"{m.name}: ... {m.suppressed} more suppressed")
        return out

    @property
    def violation_count(self) -> int:
        return sum(m.violation_count for m in self.monitors)

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.monitors)

    def assert_ok(self) -> None:
        if not self.ok:
            head = "; ".join(self.all_violations()[:8])
            raise AssertionError(
                f"{self.violation_count} invariant violations: {head}"
            )

    def report(self) -> Dict[str, Any]:
        """Per-monitor reports keyed by monitor name."""
        return {m.name: m.report() for m in self.monitors}
