"""Command-line entry point: ``python -m repro.validation``.

Subcommands
-----------
* ``fuzz`` — run a randomized-but-seeded conformance campaign; exit
  code 1 when any invariant is violated.
* ``record NAME`` — run a registry scenario and capture its canonical
  JSONL trace stream.
* ``replay FILE`` — re-run the monitors offline over a recorded stream.
* ``diff A B`` — report the first divergence between two streams.

Examples
--------
::

    python -m repro.validation fuzz --budget 20 --duration 2000 \\
        --out fuzz-report.json --save-traces fuzz-failures/
    python -m repro.validation record quickstart --duration 2000 \\
        --out run-a.jsonl
    python -m repro.validation replay run-a.jsonl --system ringnet
    python -m repro.validation diff run-a.jsonl run-b.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.validation.fuzz import fuzz
from repro.validation.record import first_divergence, read_jsonl, replay
from repro.validation.suite import CheckResult, standard_suite


def _print_violations(violations: Sequence[str], limit: int = 20) -> None:
    for v in violations[:limit]:
        print(f"  VIOLATION {v}")
    if len(violations) > limit:
        print(f"  ... and {len(violations) - limit} more")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_fuzz(args: argparse.Namespace) -> int:
    def progress(i: int, total: int, result: CheckResult) -> None:
        if args.quiet:
            return
        status = "ok" if result.ok else f"{len(result.violations)} VIOLATIONS"
        print(f"[{i + 1:3d}/{total}] {result.name:12s} "
              f"system={result.system:11s} seed={result.seed:<20d} "
              f"deliveries={result.deliveries:6d}  {status}", flush=True)
        if not result.ok:
            _print_violations(result.violations)

    report = fuzz(budget=args.budget, base_seed=args.seed,
                  duration_ms=args.duration, progress=progress,
                  save_traces_dir=args.save_traces)
    print(f"\nfuzz: {report.budget} cases, "
          f"{len(report.failed_cases)} failed, "
          f"{report.total_violations} total violations")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0 if report.ok else 1


def cmd_record(args: argparse.Namespace) -> int:
    # One spec-override resolver shared with `repro.experiments`, so
    # --duration/--seed/--set mean exactly the same thing in both CLIs.
    from repro.experiments.__main__ import spec_for_args
    from repro.validation.record import record_spec

    spec = spec_for_args(args)
    rec = record_spec(spec)
    rec.write(args.out)
    print(f"recorded {rec.count} trace records to {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    records = read_jsonl(args.file)
    suite = standard_suite(args.system)
    replay(records, suite)
    print(f"replayed {len(records)} records through "
          f"{len(suite)} monitors")
    for name, rep in suite.report().items():
        detail = " ".join(f"{k}={v}" for k, v in rep.items()
                          if k != "monitor")
        print(f"  {name:12s} {detail}")
    violations = suite.all_violations()
    if violations:
        print(f"{len(violations)} violations:")
        _print_violations(violations)
        return 1
    print("no violations")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    left = read_jsonl(args.left)
    right = read_jsonl(args.right)
    div = first_divergence(left, right)
    if div is None:
        print(f"streams identical ({len(left)} records)")
        return 0
    print("streams diverge at " + div.describe())
    return 1


# ----------------------------------------------------------------------
def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="protocol conformance: fuzz, record, replay, diff",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="randomized conformance campaign")
    p_fuzz.add_argument("--budget", type=int, default=20,
                        help="number of random scenarios (default 20)")
    p_fuzz.add_argument("--duration", type=float, default=3_000.0,
                        metavar="MS", help="per-scenario duration_ms")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign base seed (default 0)")
    p_fuzz.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON campaign report here")
    p_fuzz.add_argument("--save-traces", default=None, metavar="DIR",
                        help="save spec + trace JSONL for failing cases")
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_rec = sub.add_parser("record", help="record a scenario's trace")
    p_rec.add_argument("scenario", nargs="?", default="quickstart",
                       help="registry scenario name (default: quickstart)")
    p_rec.add_argument("--duration", type=float, default=None, metavar="MS")
    p_rec.add_argument("--seed", type=int, default=None)
    p_rec.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="dotted-path spec override, repeatable")
    p_rec.add_argument("--out", required=True, metavar="FILE",
                       help="JSONL output path")
    p_rec.set_defaults(fn=cmd_record)

    p_rep = sub.add_parser("replay", help="replay a trace through monitors")
    p_rep.add_argument("file", help="JSONL trace stream")
    # Validated choices: a typo here would silently select the reduced
    # (orderless) monitor set and report a dirty trace as clean.
    from repro.experiments.spec import SYSTEMS
    p_rep.add_argument("--system", default="ringnet", choices=SYSTEMS,
                       help="system the trace came from (selects monitors)")
    p_rep.set_defaults(fn=cmd_replay)

    p_diff = sub.add_parser("diff", help="first divergence of two traces")
    p_diff.add_argument("left")
    p_diff.add_argument("right")
    p_diff.set_defaults(fn=cmd_diff)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
