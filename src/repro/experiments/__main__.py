"""Command-line entry point: ``python -m repro.experiments``.

Subcommands
-----------
* ``list`` — show the scenario registry.
* ``run NAME`` — run one scenario (optionally replicated) and print a
  result table; ``--out``/``--csv`` write machine-readable artifacts.
* ``sweep [NAME]`` — expand a parameter grid (``--param`` axes, or the
  scenario's default sweep) × ``--reps`` replications, execute it with
  ``--jobs`` worker processes, aggregate mean/std/CI per point, and
  write the JSON artifact.

Examples
--------
::

    python -m repro.experiments list
    python -m repro.experiments run quickstart --duration 2000
    python -m repro.experiments sweep quickstart \\
        --param hierarchy.n_br=3,5,7 --param workload.rate_per_sec=10,50 \\
        --reps 3 --jobs 4 --out results.json --csv results.csv

Exports are deterministic: the same scenario, axes, and ``--seed``
produce byte-identical ``--out`` files run after run (pass ``--timing``
to additionally record wall-clock times, which of course vary).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.grid import expand_grid
from repro.experiments.results import (RunResult, aggregate, export_csv,
                                       export_json)
from repro.experiments.runner import run_sweep
from repro.metrics.report import format_table


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing: booleans/null (Python or JSON
    spelling), then JSON, then bare string."""
    special = {"true": True, "false": False, "null": None, "none": None}
    if text.strip().lower() in special:
        return special[text.strip().lower()]
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_params(items: Optional[Sequence[str]]) -> Dict[str, List[Any]]:
    """``["a.b=1,2", "c=x"] -> {"a.b": [1, 2], "c": ["x"]}``."""
    sweep: Dict[str, List[Any]] = {}
    for item in items or ():
        if "=" not in item:
            raise SystemExit(f"--param needs key=v1,v2,... (got {item!r})")
        key, _, values = item.partition("=")
        sweep[key.strip()] = [_parse_value(v) for v in values.split(",")]
    return sweep


def _parse_sets(items: Optional[Sequence[str]]) -> Dict[str, Any]:
    """``["a.b=5"] -> {"a.b": 5}`` (single-value overrides)."""
    return {k: vs[0] for k, vs in _parse_params(items).items()}


def spec_for_args(args: argparse.Namespace):
    """Resolve a registry scenario plus CLI overrides into a spec.

    Shared by this CLI and ``python -m repro.validation record``, so
    ``--duration`` / ``--seed`` / ``--set`` mean the same thing in both.
    """
    overrides = _parse_sets(getattr(args, "set", None))
    if args.duration is not None:
        overrides["duration_ms"] = args.duration
        if registry.entry(args.scenario).factory().warmup_ms >= args.duration \
                and "warmup_ms" not in overrides:
            overrides["warmup_ms"] = 0.0
    if args.seed is not None:
        overrides["seed"] = args.seed
    return registry.get(args.scenario, **overrides)


def _result_rows(results: Sequence[RunResult]) -> List[Dict[str, Any]]:
    return [{
        "run": r.run_id,
        "system": r.system,
        **{k: v for k, v in sorted(r.params.items())},
        "seed": r.seed,
        "goodput": round(r.goodput, 2),
        "p50_ms": round(r.latency.get("p50", 0.0), 1),
        "p99_ms": round(r.latency.get("p99", 0.0), 1),
        "violations": r.order_violations if r.order_checked else "n/a",
        "retx": r.retransmissions,
        "handoffs": r.handoffs,
        "wall_s": round(r.wall_time_s, 2),
    } for r in results]


def _aggregate_rows(aggs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows = []
    for a in aggs:
        m = a["metrics"]
        rows.append({
            "point": a["point_index"],
            "system": a["system"],
            **{k: v for k, v in sorted(a["params"].items())},
            "n": a["n"],
            "goodput": round(m["goodput"]["mean"], 2),
            "±ci95": round(m["goodput"]["ci95"], 2),
            "p50_ms": round(m["latency_p50"]["mean"], 1),
            "p99_ms": round(m["latency_p99"]["mean"], 1),
            "violations": m["order_violations"]["mean"],
            "retx": round(m["retransmissions"]["mean"], 1),
        })
    return rows


def _write_artifacts(args: argparse.Namespace, results: List[RunResult],
                     meta: Dict[str, Any]) -> None:
    aggs = aggregate(results)
    if args.out:
        export_json(args.out, results, aggs, meta=meta,
                    include_timing=args.timing)
        print(f"wrote {args.out}")
    if args.csv:
        export_csv(args.csv, aggs)
        print(f"wrote {args.csv}")


def _progress(i: int, total: int, result: RunResult) -> None:
    print(f"[{i + 1:3d}/{total}] {result.run_id:30s} "
          f"goodput={result.goodput:8.2f} msg/s  "
          f"wall={result.wall_time_s:6.2f}s", flush=True)


def _report_check(results: Sequence[RunResult]) -> int:
    """Print ``--check`` outcomes; returns the exit code contribution."""
    failed = [r for r in results if r.violations]
    if not failed:
        print(f"check: all {len(results)} runs satisfied every "
              f"protocol invariant")
        return 0
    for r in failed:
        print(f"check: {r.run_id}: {len(r.violations)} violations")
        for v in r.violations[:10]:
            print(f"  VIOLATION {v}")
        if len(r.violations) > 10:
            print(f"  ... and {len(r.violations) - 10} more")
    return 3


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in registry.names():
        e = registry.entry(name)
        sweep = e.default_sweep
        rows.append({
            "scenario": name,
            "description": e.description,
            "default sweep": " × ".join(f"{k}[{len(v)}]"
                                        for k, v in sweep.items())
                             if sweep else "-",
        })
    print(format_table(rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    base = spec_for_args(args)
    points = expand_grid(base, sweep=None, replications=args.reps,
                         root_seed=args.seed)
    results = run_sweep(points, jobs=args.jobs,
                        progress=_progress if not args.quiet else None,
                        check=args.check, obs_dir=args.obs,
                        spans_dir=args.spans)
    print()
    print(format_table(_result_rows(results)))
    _write_artifacts(args, results, meta={
        "command": "run", "scenario": args.scenario,
        "replications": args.reps, "root_seed": base.seed,
    })
    return _report_check(results) if args.check else 0


def cmd_sweep(args: argparse.Namespace) -> int:
    base = spec_for_args(args)
    sweep = _parse_params(args.param)
    if not sweep:
        sweep = registry.default_sweep(args.scenario) or {}
    if not sweep:
        raise SystemExit(
            f"scenario {args.scenario!r} has no default sweep; give axes "
            f"with --param key=v1,v2,...")
    points = expand_grid(base, sweep=sweep, replications=args.reps,
                         root_seed=args.seed)
    print(f"sweep: {len(points)} runs "
          f"({len(points) // args.reps} points × {args.reps} reps, "
          f"jobs={args.jobs})")
    results = run_sweep(points, jobs=args.jobs,
                        progress=_progress if not args.quiet else None,
                        check=args.check, obs_dir=args.obs,
                        spans_dir=args.spans)
    print()
    print(format_table(_aggregate_rows(aggregate(results))))
    _write_artifacts(args, results, meta={
        "command": "sweep", "scenario": args.scenario,
        "sweep": {k: list(v) for k, v in sweep.items()},
        "replications": args.reps, "root_seed": base.seed,
    })
    return _report_check(results) if args.check else 0


# ----------------------------------------------------------------------
def _add_common(p: argparse.ArgumentParser, default_jobs: int) -> None:
    p.add_argument("scenario", nargs="?", default="quickstart",
                   help="registry scenario name (default: quickstart)")
    p.add_argument("--duration", type=float, default=None, metavar="MS",
                   help="override duration_ms (warmup is zeroed if it "
                        "no longer fits)")
    p.add_argument("--seed", type=int, default=None,
                   help="root seed (replication seeds derive from it)")
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="dotted-path spec override, repeatable")
    p.add_argument("--reps", type=int, default=None,
                   help="replications per point")
    p.add_argument("--jobs", type=int, default=default_jobs,
                   help=f"worker processes (default {default_jobs}; "
                        f"1 = serial)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the JSON artifact here")
    p.add_argument("--csv", default=None, metavar="FILE",
                   help="write aggregate rows as CSV here")
    p.add_argument("--check", action="store_true",
                   help="attach the repro.validation monitor suite to "
                        "every run; exit 3 on any invariant violation")
    p.add_argument("--obs", nargs="?", const=".", default=None,
                   metavar="DIR",
                   help="attach out-of-band telemetry (repro.obs) to "
                        "every run and write OBS_<run_id>.json + timeline "
                        "artifacts to DIR (default: cwd)")
    p.add_argument("--spans", nargs="?", const=".", default=None,
                   metavar="DIR",
                   help="attach causal span tracing (repro.obs.spans) to "
                        "every run and write SPANS_<run_id>.jsonl.gz + "
                        "CRITPATH_<run_id>.json artifacts to DIR "
                        "(default: cwd); sample rate via "
                        "REPRO_SPANS_SAMPLE")
    p.add_argument("--timing", action="store_true",
                   help="include wall-clock times in the JSON artifact "
                        "(makes it non-reproducible byte-for-byte)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress lines")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="declarative RingNet experiments: list, run, sweep",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the scenario registry") \
       .set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run one scenario")
    _add_common(p_run, default_jobs=1)
    p_run.set_defaults(fn=cmd_run)

    p_sweep = sub.add_parser("sweep", help="run a parameter grid")
    _add_common(p_sweep, default_jobs=2)
    p_sweep.add_argument("--param", action="append",
                         metavar="KEY=V1,V2,...",
                         help="sweep axis, repeatable; defaults to the "
                              "scenario's default sweep")
    p_sweep.set_defaults(fn=cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if getattr(args, "reps", None) is None:
        args.reps = 2 if args.command == "sweep" else 1
    if args.command == "sweep" and args.out is None:
        args.out = "results.json"
    try:
        return args.fn(args)
    except (KeyError, ValueError) as exc:
        # Spec/registry validation errors carry user-facing messages;
        # show them without a traceback.
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
