"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes one complete simulation run — the
hierarchy shape, the protocol tunables, the traffic workload, mobility,
churn, and injected failures — as plain data.  Specs round-trip through
dicts and JSON, so a sweep definition can live in a file, travel to a
worker process, or be diffed between two experiment campaigns.

The spec layer is deliberately free of simulator imports (and of numpy):
building a runnable scenario from a spec is the job of
:mod:`repro.experiments.runner`.  The only protocol knowledge here is the
set of valid :class:`~repro.core.config.ProtocolConfig` field names,
checked lazily when :meth:`ExperimentSpec.protocol_config` is called.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional

from repro.faults.plan import FaultPlan

#: Systems the runner knows how to build.  ``ringnet`` is the paper's
#: protocol; the others are the comparison baselines.
SYSTEMS = ("ringnet", "unordered", "single_ring")

#: Traffic arrival patterns understood by MulticastSource.  ``flows``
#: is the open-world pattern: Poisson flow arrivals, each flow a
#: bounded-Pareto burst of back-to-back messages (psim's TrafficGen
#: shape).
PATTERNS = ("cbr", "poisson", "flows")

#: Time-varying source-rate curves (spec-level; resolved by the runner
#: into a deterministic rate function of simulated time).
CURVE_KINDS = ("constant", "diurnal", "flash")

#: Mobility models the runner can instantiate.
MOBILITY_MODELS = ("random_walk", "directional")

#: Failure-event kinds the runner can apply.
FAILURE_KINDS = ("crash", "recover", "link_down", "link_up",
                 "crash_token_holder")


def _check_no_unknown_keys(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys {unknown}; valid keys: "
            f"{sorted(known)}"
        )


@dataclass
class HierarchyShape:
    """Shape of the RingNet hierarchy (paper Figure 1, plus §3 nesting).

    ``depth == 1`` is the regular BR/AG/AP shape built by
    ``HierarchySpec``; ``depth > 1`` nests ``depth`` levels of AG rings
    of ``ring_size`` members below every BR (the §3 sub-tier extension),
    in which case ``ags_per_br`` is ignored.
    """

    n_br: int = 3
    ags_per_br: int = 2
    aps_per_ag: int = 2
    mhs_per_ap: int = 2
    depth: int = 1
    ring_size: int = 3
    #: Lazily-materialized idle MHs behind every AP, *in addition to*
    #: the ``mhs_per_ap`` active ones built eagerly.  They cost O(#APs)
    #: memory until an open-world session arrival activates one — this
    #: is how the xxl/metro rungs describe 10^5–10^6-endpoint
    #: populations.
    idle_per_ap: int = 0

    def __post_init__(self) -> None:
        if self.n_br < 1:
            raise ValueError("n_br must be >= 1")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.idle_per_ap < 0:
            raise ValueError("idle_per_ap must be >= 0")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HierarchyShape":
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass
class WorkloadSpec:
    """The s × λ traffic of the §5 analysis, with optional skew.

    ``rates`` (when given) lists an explicit per-source rate for each of
    the sources — the hotspot/heterogeneous case; it overrides ``s`` and
    ``rate_per_sec``.  ``pattern`` is ``cbr`` (Theorem 5.1's workload),
    ``poisson`` (bursty arrivals with the same mean), or ``flows``
    (open-world: Poisson flow arrivals, bounded-Pareto flow sizes).

    ``curve`` makes the rate time-varying: a dict with ``kind`` from
    :data:`CURVE_KINDS` plus kind-specific knobs (see
    :class:`repro.workloads.generators.RateCurve`).  ``flows`` (the
    dict) parameterizes the flow pattern (see
    :class:`repro.core.source.FlowProfile`); ignored for other patterns.
    """

    s: int = 2
    rate_per_sec: float = 20.0
    pattern: str = "cbr"
    rates: Optional[List[float]] = None
    stagger_ms: float = 3.0
    curve: Optional[Dict[str, Any]] = None
    flows: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}")
        if self.rates is None and self.s < 1:
            raise ValueError("need at least one source")
        if self.curve is not None:
            kind = self.curve.get("kind", "constant")
            if kind not in CURVE_KINDS:
                raise ValueError(f"curve kind must be one of {CURVE_KINDS}")

    @property
    def source_rates(self) -> List[float]:
        """The concrete per-source rate list this workload describes."""
        if self.rates is not None:
            return [float(r) for r in self.rates]
        return [float(self.rate_per_sec)] * int(self.s)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass
class MobilitySpec:
    """Cell-grid roaming knobs (only meaningful for the ringnet system)."""

    enabled: bool = False
    model: str = "random_walk"
    mean_dwell_ms: float = 2000.0
    persistence: float = 0.8
    stay_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ValueError(f"model must be one of {MOBILITY_MODELS}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MobilitySpec":
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass
class ChurnSpec:
    """Join/leave churn knobs (see :class:`repro.workloads.ChurnDriver`)."""

    enabled: bool = False
    mean_interval_ms: float = 500.0
    min_members: int = 1

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnSpec":
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass
class OpenWorldSpec:
    """Open-world population dynamics over the lazy catchment.

    When enabled, the runner registers ``hierarchy.idle_per_ap`` idle
    MHs per AP as an un-materialized catchment and an
    :class:`~repro.workloads.openworld.OpenWorldDriver` activates them
    as Poisson session arrivals; each session lives a bounded-Pareto
    (heavy-tailed) duration and then leaves.  The paper's metropolitan
    population, as traffic rather than as pre-built objects.
    """

    enabled: bool = False
    #: Session (member) arrivals per second across the whole network.
    arrivals_per_sec: float = 50.0
    #: Mean session length; actual lengths are bounded Pareto.
    mean_session_ms: float = 1500.0
    #: Pareto tail index for session lengths (1 < alpha; smaller =
    #: heavier tail).
    alpha: float = 1.5
    #: Hard cap on one session length.
    max_session_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.enabled:
            if self.arrivals_per_sec <= 0:
                raise ValueError("arrivals_per_sec must be positive")
            if self.mean_session_ms <= 0:
                raise ValueError("mean_session_ms must be positive")
            if self.alpha <= 1.0:
                raise ValueError("alpha must be > 1 (finite mean)")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OpenWorldSpec":
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass
class FailureEvent:
    """One scheduled fault.

    ``kind`` is one of :data:`FAILURE_KINDS`.  ``target`` names a node
    (``crash``/``recover``), or the first endpoint of a link
    (``link_down``/``link_up``, with ``target2`` the second endpoint).
    ``crash_token_holder`` needs no target: the runner crashes whichever
    top-ring NE holds the OrderingToken at ``at_ms``.
    """

    at_ms: float = 0.0
    kind: str = "crash"
    target: Optional[str] = None
    target2: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"kind must be one of {FAILURE_KINDS}")
        if self.kind in ("crash", "recover") and not self.target:
            raise ValueError(f"{self.kind} needs a target node id")
        if self.kind in ("link_down", "link_up") and not (
                self.target and self.target2):
            raise ValueError(f"{self.kind} needs target and target2")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureEvent":
        _check_no_unknown_keys(cls, data)
        return cls(**data)


@dataclass
class ExperimentSpec:
    """A complete, serializable description of one simulation run."""

    name: str = "experiment"
    description: str = ""
    system: str = "ringnet"
    hierarchy: HierarchyShape = field(default_factory=HierarchyShape)
    protocol: Dict[str, Any] = field(default_factory=dict)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    openworld: OpenWorldSpec = field(default_factory=OpenWorldSpec)
    failures: List[FailureEvent] = field(default_factory=list)
    faults: FaultPlan = field(default_factory=FaultPlan)
    duration_ms: float = 10_000.0
    warmup_ms: float = 2_000.0
    seed: int = 1
    #: When True the runner replaces ``protocol.mq_retention`` with the
    #: Theorem 5.1 MQ bound computed by :mod:`repro.analysis.bounds` for
    #: this spec's shape and workload — delivered history past the
    #: theorem's sufficiency bound is spilled instead of retained.
    #: Opt-in: it changes pruning behaviour, hence trace bytes.
    bound_retention: bool = False

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"system must be one of {SYSTEMS}")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if not 0 <= self.warmup_ms < self.duration_ms:
            raise ValueError("need 0 <= warmup_ms < duration_ms")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready, stable key order)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild from :meth:`to_dict` output (partial dicts allowed:
        omitted sections keep their defaults)."""
        _check_no_unknown_keys(cls, data)
        kwargs: Dict[str, Any] = dict(data)
        if "hierarchy" in kwargs:
            kwargs["hierarchy"] = HierarchyShape.from_dict(kwargs["hierarchy"])
        if "workload" in kwargs:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        if "mobility" in kwargs:
            kwargs["mobility"] = MobilitySpec.from_dict(kwargs["mobility"])
        if "churn" in kwargs:
            kwargs["churn"] = ChurnSpec.from_dict(kwargs["churn"])
        if "openworld" in kwargs:
            kwargs["openworld"] = OpenWorldSpec.from_dict(kwargs["openworld"])
        if "failures" in kwargs:
            kwargs["failures"] = [FailureEvent.from_dict(f)
                                  for f in kwargs["failures"]]
        if "faults" in kwargs:
            kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
        if "protocol" in kwargs:
            kwargs["protocol"] = dict(kwargs["protocol"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """JSON form (sorted keys, so equal specs serialize identically)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def copy(self) -> "ExperimentSpec":
        """An independent deep copy."""
        return copy.deepcopy(self)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentSpec":
        """A new spec with dotted-path overrides applied.

        Paths address nested sections: ``{"hierarchy.n_br": 5,
        "workload.rate_per_sec": 50.0, "protocol.tau": 2.0,
        "system": "unordered"}``.  The original spec is not modified;
        values are validated by reconstructing the dataclasses.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            node: Any = data
            parts = path.split(".")
            for part in parts[:-1]:
                if isinstance(node, list):
                    node = node[int(part)]
                elif part in node:
                    node = node[part]
                else:
                    raise KeyError(f"no such spec section {part!r} "
                                   f"(in override {path!r})")
                if not isinstance(node, (dict, list)):
                    raise KeyError(f"cannot descend into scalar {part!r} "
                                   f"(in override {path!r})")
            leaf = parts[-1]
            if isinstance(node, list):
                node[int(leaf)] = value
            else:
                # `protocol` is an open dict (any ProtocolConfig field);
                # everywhere else the key must already exist.
                if leaf not in node and parts[:-1] != ["protocol"]:
                    raise KeyError(f"unknown spec field {path!r}")
                node[leaf] = value
        return type(self).from_dict(data)

    def protocol_config(self):
        """The :class:`~repro.core.config.ProtocolConfig` this spec's
        ``protocol`` overrides describe (defaults elsewhere)."""
        from repro.core.config import ProtocolConfig  # late: keep spec.py light
        valid = {f.name for f in fields(ProtocolConfig)}
        unknown = sorted(set(self.protocol) - valid)
        if unknown:
            raise ValueError(
                f"unknown ProtocolConfig fields {unknown}; valid: "
                f"{sorted(valid)}"
            )
        return ProtocolConfig(**self.protocol)
