"""Build scenarios from specs and execute sweeps, serially or in parallel.

* :func:`build_scenario` — turn an :class:`ExperimentSpec` into a
  runnable :class:`~repro.workloads.scenarios.Scenario` (any system:
  the RingNet protocol, the unordered flooding baseline, or the one-big
  single-ring baseline of [16]).
* :func:`run_point` — execute one run with the standard collector set
  attached and distill a :class:`RunResult`.
* :func:`run_sweep` — execute a list of :class:`RunPoint`\\ s; ``jobs > 1``
  fans runs out to ``multiprocessing`` worker processes (each run is an
  independent single-threaded simulation, so this is embarrassingly
  parallel), ``jobs == 1`` is the serial fallback for debugging.
  Results come back in submission order either way, and — because every
  run's randomness is fully determined by its spec's seed — serial and
  parallel execution produce identical results.

Workers receive plain dicts (via ``RunPoint.to_dict``) and return plain
dicts, so the pool works under both fork and spawn start methods.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from contextlib import nullcontext
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.bounds import bounds_for
from repro.experiments.grid import RunPoint
from repro.faults.driver import FaultDriver
from repro.experiments.results import RunResult
from repro.experiments.spec import ExperimentSpec
from repro.baselines.single_ring import SingleRingMulticast
from repro.baselines.unordered import UnorderedRingNet
from repro.core.config import ProtocolConfig
from repro.core.protocol import RingNet
from repro.core.source import FlowProfile
from repro.metrics.collectors import LatencyCollector, ThroughputCollector
from repro.metrics.order_checker import OrderChecker
from repro.mobility.cells import CellGrid
from repro.mobility.handoff import HandoffDriver
from repro.mobility.models import DirectionalWalk, RandomWalk
from repro.net.fabric import Fabric
from repro.net.failure import FailureInjector
from repro.net.link import WIRED, WIRELESS
from repro.sim.engine import Simulator
from repro.topology.builder import (HierarchySpec, build_deep_hierarchy,
                                    deep_initial_attachments,
                                    provision_links)
from repro.topology.tiers import Tier
from repro.workloads.churn import ChurnDriver
from repro.workloads.generators import RateCurve, weighted_sources
from repro.workloads.openworld import OpenWorldDriver
from repro.workloads.scenarios import Scenario


# ----------------------------------------------------------------------
# Spec -> Scenario
# ----------------------------------------------------------------------
def _bounded_cfg(cfg: ProtocolConfig,
                 spec: ExperimentSpec) -> ProtocolConfig:
    """Pin ``mq_retention`` to the Theorem 5.1 MQ sufficiency bound.

    The theorem says s·λ·T_order messages of retained history suffice;
    keeping more only serves handoff catch-up beyond the bound, so the
    memory-bounded rungs spill everything past it.  Heterogeneous rate
    lists use the max per-source rate, keeping the bound conservative.
    """
    shape = spec.hierarchy
    rates = spec.workload.source_rates
    bounds = bounds_for(
        cfg,
        ring_size=shape.n_br,
        n_sources=len(rates),
        rate_per_sec=max(rates),
        wired=WIRED,
        wireless=WIRELESS,
        # Standard hierarchy: BR→AG, AG→AP, AP→MH = 3 hops below the
        # top ring; a depth-d generalized hierarchy adds d-1 ring tiers
        # between BR and AP.
        tree_depth=3 if shape.depth == 1 else shape.depth + 2,
    )
    return replace(cfg,
                   mq_retention=max(1, math.ceil(bounds.mq_bound_msgs)))


def _build_net(sim: Simulator, spec: ExperimentSpec,
               fabric: Optional[Fabric] = None):
    shape = spec.hierarchy
    cfg = spec.protocol_config()
    if fabric is not None and spec.system != "ringnet":
        raise ValueError(
            "a custom fabric (live backend) requires the ringnet system, "
            f"not {spec.system!r}")
    if spec.bound_retention:
        if spec.system != "ringnet":
            raise ValueError(
                "bound_retention applies Theorem 5.1 to the ringnet "
                f"top ring; it has no meaning for {spec.system!r}")
        cfg = _bounded_cfg(cfg, spec)
    if spec.system == "single_ring":
        n_bs = shape.n_br * shape.ags_per_br * shape.aps_per_ag
        return SingleRingMulticast.build_ring(
            sim, n_bs=n_bs, mhs_per_bs=shape.mhs_per_ap, cfg=cfg)
    if spec.system == "unordered":
        if shape.depth > 1:
            raise ValueError("the unordered baseline only supports depth=1")
        # The baseline has no ordering machinery, so only the shared
        # reliability knobs apply; anything else would be silently
        # ignored — reject instead so comparisons stay apples-to-apples.
        unsupported = sorted(set(spec.protocol) - {"rto", "max_retries"})
        if unsupported:
            raise ValueError(
                f"protocol overrides {unsupported} have no effect on the "
                f"unordered baseline (supported: rto, max_retries)")
        return UnorderedRingNet.build(
            sim, HierarchySpec(n_br=shape.n_br, ags_per_br=shape.ags_per_br,
                               aps_per_ag=shape.aps_per_ag,
                               mhs_per_ap=shape.mhs_per_ap),
            rto=cfg.rto, max_retries=cfg.max_retries)
    if shape.depth > 1:
        if fabric is None:
            fabric = Fabric(sim)
        h = build_deep_hierarchy(n_br=shape.n_br, ring_size=shape.ring_size,
                                 depth=shape.depth,
                                 aps_per_ag=shape.aps_per_ag,
                                 mhs_per_ap=shape.mhs_per_ap)
        provision_links(fabric, h)
        net = RingNet(sim, fabric, h, cfg=cfg)
        for mh, ap in deep_initial_attachments(h).items():
            net.add_mobile_host(mh, ap)
        return net
    return RingNet.build(
        sim, HierarchySpec(n_br=shape.n_br, ags_per_br=shape.ags_per_br,
                           aps_per_ag=shape.aps_per_ag,
                           mhs_per_ap=shape.mhs_per_ap),
        cfg=cfg, fabric=fabric)


def _mobility_model(spec: ExperimentSpec):
    m = spec.mobility
    if m.model == "directional":
        return DirectionalWalk(mean_dwell_ms=m.mean_dwell_ms,
                               persistence=m.persistence)
    return RandomWalk(mean_dwell_ms=m.mean_dwell_ms, stay_prob=m.stay_prob)


def _schedule_failures(sim: Simulator, net, spec: ExperimentSpec) -> None:
    injector = FailureInjector(net.fabric)

    def crash_token_holder() -> None:
        # "Who holds the token" is data-plane state scattered across
        # shards; under the sharded backend this event runs right after
        # a synchronization probe gathered the holder set, so every
        # shard picks the same victim the sequential engine would.
        if sim.shard is not None:
            holding = set(sim.shard.consume_probe())
            holder_id = next((n for n in net.hierarchy.top_ring.members
                              if n in holding), None)
        else:
            holder = next((ne for ne in net.top_ring_nes()
                           if ne.held_token is not None), None)
            holder_id = holder.id if holder is not None else None
        victim = holder_id if holder_id is not None \
            else net.hierarchy.top_ring.members[-1]
        net.crash_ne(victim)

    for ev in spec.failures:
        if ev.kind == "crash":
            if hasattr(net, "crash_ne"):
                sim.schedule_at(ev.at_ms, net.crash_ne, ev.target)
            else:
                sim.schedule_at(ev.at_ms, injector.crash_node, ev.target)
        elif ev.kind == "recover":
            if hasattr(net, "crash_ne"):
                # A token-passing crash removes the NE from the topology
                # (maintenance re-forms the rings around it); flipping
                # fabric state back would NOT rejoin it, so a "recover"
                # would silently measure a permanent crash.
                raise ValueError(
                    "recover is not supported for token-passing systems: "
                    "crash permanently removes the NE from the topology")
            sim.schedule_at(ev.at_ms, injector.recover_node, ev.target)
        elif ev.kind == "link_down":
            sim.schedule_at(ev.at_ms, injector.link_down, ev.target,
                            ev.target2)
        elif ev.kind == "link_up":
            sim.schedule_at(ev.at_ms, injector.link_up, ev.target, ev.target2)
        elif ev.kind == "crash_token_holder":
            if not hasattr(net, "top_ring_nes"):
                raise ValueError(
                    "crash_token_holder requires a token-passing system")
            event = sim.schedule_at(ev.at_ms, crash_token_holder)
            if sim.shard is not None:
                sim.shard.register_probe(event, "token.holders")


def build_scenario(spec: ExperimentSpec,
                   sim: Optional[Simulator] = None,
                   fabric: Optional[Fabric] = None) -> Scenario:
    """Materialize a spec: runtime, protocol, workload, dynamics.

    Pass a pre-created ``sim`` (seeded with ``spec.seed``) to observe
    construction-time trace records — initial MH joins happen while the
    network is built, so monitors that care must subscribe before this
    call.  ``sim`` may be any :class:`~repro.runtime.api.Runtime`; the
    live backend passes a :class:`~repro.live.runtime.LiveRuntime`
    together with a queue- or socket-backed ``fabric`` (ringnet only).
    """
    if sim is None:
        sim = Simulator(seed=spec.seed)
    elif sim.seed != spec.seed:
        raise ValueError(
            f"pre-built simulator seed {sim.seed} != spec seed {spec.seed}")
    net = _build_net(sim, spec, fabric=fabric)

    wl = spec.workload
    extra: Dict[str, Any] = {}
    if wl.curve is not None:
        rate_fn = RateCurve.from_dict(wl.curve).as_fn()
        if rate_fn is not None:
            extra["rate_fn"] = rate_fn
    if wl.flows is not None and wl.pattern == "flows":
        extra["flows"] = FlowProfile(**wl.flows)
    if spec.system != "ringnet" and (extra or wl.pattern == "flows"):
        raise ValueError(
            "time-varying curves and the flows pattern require the "
            f"ringnet system, not {spec.system!r}")
    fleet = weighted_sources(net, wl.source_rates, pattern=wl.pattern,
                             **extra)

    if spec.hierarchy.idle_per_ap > 0:
        if spec.system != "ringnet":
            raise ValueError(
                f"idle_per_ap requires the ringnet system, "
                f"not {spec.system!r}")
        for ap in net.hierarchy.nodes_of_tier(Tier.AP):
            net.register_catchment(ap, spec.hierarchy.idle_per_ap)

    grid = mobility = None
    if spec.mobility.enabled:
        if spec.system != "ringnet":
            raise ValueError(
                f"mobility requires the ringnet system, not {spec.system!r}")
        aps = net.hierarchy.nodes_of_tier(Tier.AP)
        if not aps:
            raise ValueError("mobility needs at least one AP in the shape")
        grid = CellGrid.square_for(aps)
        mobility = HandoffDriver(net, grid, _mobility_model(spec))

    churn = None
    if spec.churn.enabled:
        aps = net.hierarchy.nodes_of_tier(Tier.AP) or \
            net.hierarchy.top_ring.members
        churn = ChurnDriver(net, aps,
                            mean_interval_ms=spec.churn.mean_interval_ms,
                            min_members=spec.churn.min_members)

    openworld = None
    if spec.openworld.enabled:
        if spec.system != "ringnet":
            raise ValueError(
                f"openworld requires the ringnet system, "
                f"not {spec.system!r}")
        ow = spec.openworld
        openworld = OpenWorldDriver(
            net, net.hierarchy.nodes_of_tier(Tier.AP),
            arrivals_per_sec=ow.arrivals_per_sec,
            mean_session_ms=ow.mean_session_ms,
            alpha=ow.alpha,
            max_session_ms=ow.max_session_ms,
            mobility=mobility)

    if spec.failures:
        _schedule_failures(sim, net, spec)

    faults = None
    if spec.faults:
        faults = FaultDriver(sim, net, spec.faults)
        faults.schedule()

    return Scenario(sim=sim, net=net, fleet=fleet, grid=grid,
                    mobility=mobility, churn=churn, openworld=openworld,
                    faults=faults, duration_ms=spec.duration_ms,
                    stagger_ms=spec.workload.stagger_ms)


# ----------------------------------------------------------------------
# One run
# ----------------------------------------------------------------------
def _total_retransmissions(net) -> int:
    total = 0
    for group in (net.nes.values(), net.mobile_hosts.values(),
                  net.sources.values()):
        for node in group:
            chan = getattr(node, "chan", None)
            if chan is not None:
                total += chan.stats.retransmitted
    return total


def _peak_buffer(net) -> int:
    reports = getattr(net, "buffer_reports", None)
    if reports is None:
        return 0
    return max((r["wq_peak"] + r["mq_peak"] for r in reports()), default=0)


def run_point(point: Union[RunPoint, ExperimentSpec],
              check: bool = False,
              obs_dir: Optional[str] = None,
              spans_dir: Optional[str] = None) -> RunResult:
    """Execute one run and distill its :class:`RunResult`.

    Accepts either a grid :class:`RunPoint` or a bare spec (treated as a
    single point, replication 0).  ``check=True`` attaches the full
    :mod:`repro.validation` monitor suite to the same run — monitors are
    pure observers, so every metric stays byte-identical to an
    unchecked run — and fills ``RunResult.violations``.

    ``obs_dir`` attaches an out-of-band :class:`~repro.obs.session.
    ObsSession` (another pure observer — metrics stay byte-identical)
    and writes ``OBS_<run_id>.json`` + timeline artifacts there.

    ``spans_dir`` attaches a :class:`~repro.obs.spans.SpanCollector`
    (also a pure observer) and writes ``SPANS_<run_id>.jsonl.gz`` plus
    a ``CRITPATH_<run_id>.json`` latency-attribution report there.
    """
    if isinstance(point, ExperimentSpec):
        point = RunPoint(spec=point, params={}, seed=point.seed)
    spec = point.spec

    wall_start = time.perf_counter()
    suite = None
    if check:
        # Lazy import: validation is an optional layer over experiments.
        from repro.validation.suite import observed_scenario, suite_for_spec
        suite = suite_for_spec(spec)
        # observed_scenario attaches the suite before construction, so
        # build-time records (initial MH joins) are observed too.
        scenario_cm = observed_scenario(spec, suite)
    else:
        scenario_cm = nullcontext(build_scenario(spec))

    with scenario_cm as scenario:
        session = None
        if obs_dir is not None:
            from repro.obs.session import ObsSession  # lazy: optional layer
            session = ObsSession(scenario.sim, horizon_ms=spec.duration_ms,
                                 name=point.run_id)
        trace = scenario.sim.trace
        collector = None
        if spans_dir is not None:
            from repro.obs.spans import SpanCollector  # lazy: optional layer
            collector = SpanCollector()
            collector.attach(trace, sim=scenario.sim)
        if suite is not None:
            # The suite already carries a total-order checker for
            # ordered systems; reuse it, don't attach a second one.
            order = next((m for m in suite if m.name == "total_order"),
                         None)
        else:
            order = OrderChecker(trace) if spec.system != "unordered" \
                else None
        latency = LatencyCollector(trace, warmup=spec.warmup_ms)
        throughput = ThroughputCollector(trace)
        counters = {"mh.handoff": 0, "mh.tombstone": 0}
        for topic in counters:
            trace.subscribe(
                topic,
                lambda rec, t=topic: counters.__setitem__(t, counters[t] + 1))

        scenario.run()

        if session is not None:
            session.finish()
            session.write(obs_dir)
        if collector is not None:
            collector.detach()
            _write_span_artifacts(spans_dir, point.run_id, collector.events)
        net = scenario.net
        violations = None
        if suite is not None:
            suite.finish(net=net, end_time=scenario.sim.now)
            violations = suite.all_violations()
    t0, t1 = spec.warmup_ms, spec.duration_ms
    return RunResult(
        run_id=point.run_id,
        name=spec.name,
        system=spec.system,
        params=dict(point.params),
        point_index=point.point_index,
        replication=point.replication,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
        sent=scenario.fleet.total_sent,
        delivered=net.total_app_deliveries(),
        goodput=throughput.goodput(t0, t1),
        sent_rate=throughput.sent_rate(t0, t1),
        min_goodput=throughput.min_goodput(t0, t1),
        latency=latency.summary(),
        order_checked=order is not None,
        order_violations=order.violation_count if order is not None else 0,
        retransmissions=_total_retransmissions(net),
        handoffs=counters["mh.handoff"],
        tombstones=counters["mh.tombstone"],
        members=len(net.member_hosts()),
        peak_buffer=_peak_buffer(net),
        wall_time_s=time.perf_counter() - wall_start,
        violations=violations,
    )


def _write_span_artifacts(out_dir: str, run_id: str, events) -> None:
    import json

    from repro.obs.critpath import critpath_summary
    from repro.obs.spans import assemble, write_span_events

    os.makedirs(out_dir, exist_ok=True)
    write_span_events(os.path.join(out_dir, f"SPANS_{run_id}.jsonl.gz"),
                      events)
    summary = critpath_summary(assemble(events))
    path = os.path.join(out_dir, f"CRITPATH_{run_id}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def _run_point_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry: dict in, dict out (picklable under fork and spawn)."""
    check = payload.pop("check", False)
    obs_dir = payload.pop("obs_dir", None)
    spans_dir = payload.pop("spans_dir", None)
    return run_point(RunPoint.from_dict(payload), check=check,
                     obs_dir=obs_dir, spans_dir=spans_dir).to_dict()


def resolve_jobs(jobs: int) -> int:
    """Effective sweep worker count.

    ``REPRO_SWEEP_JOBS`` (when set to a valid positive integer)
    overrides the requested value; the result is clamped to the
    machine's ``os.cpu_count()`` so oversubscribed requests degrade to
    full-but-not-thrashing parallelism.  Raises ``ValueError`` for a
    non-positive request, matching the old contract.
    """
    env = os.environ.get("REPRO_SWEEP_JOBS")
    if env is not None:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_SWEEP_JOBS must be an integer, got {env!r}")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return min(jobs, max(1, os.cpu_count() or 1))


def run_sweep(
    points: Sequence[RunPoint],
    jobs: int = 1,
    progress: Optional[Callable[[int, int, RunResult], None]] = None,
    check: bool = False,
    obs_dir: Optional[str] = None,
    spans_dir: Optional[str] = None,
) -> List[RunResult]:
    """Execute every point; returns results in submission order.

    ``jobs > 1`` uses a ``multiprocessing.Pool`` of that many worker
    processes.  ``progress`` (serial mode and parallel mode alike) is
    called as ``progress(i, total, result)`` as finished results are
    collected, in submission order.  ``check=True`` runs every point
    with the validation monitor suite attached (see :func:`run_point`);
    ``obs_dir`` writes per-run ``OBS_*`` telemetry artifacts there and
    ``spans_dir`` per-run ``SPANS_*`` / ``CRITPATH_*`` span artifacts.

    The ``REPRO_SWEEP_JOBS`` environment variable overrides ``jobs``
    (handy in CI, where the caller cannot edit every invocation), and
    the effective worker count is clamped to ``os.cpu_count()`` so an
    oversubscribed request degrades gracefully instead of thrashing.
    """
    points = list(points)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(points) <= 1:
        results = []
        for i, point in enumerate(points):
            result = run_point(point, check=check, obs_dir=obs_dir,
                               spans_dir=spans_dir)
            results.append(result)
            if progress is not None:
                progress(i, len(points), result)
        return results

    payloads = [dict(p.to_dict(), check=check, obs_dir=obs_dir,
                     spans_dir=spans_dir)
                for p in points]
    with multiprocessing.Pool(processes=min(jobs, len(points))) as pool:
        done = 0
        results_by_index: Dict[int, RunResult] = {}
        for index, raw in enumerate(pool.imap(_run_point_payload, payloads)):
            result = RunResult.from_dict(raw)
            results_by_index[index] = result
            if progress is not None:
                progress(done, len(points), result)
            done += 1
    return [results_by_index[i] for i in range(len(points))]
