"""Machine-readable run results, cross-replication aggregation, export.

One simulation run produces a :class:`RunResult`; :func:`aggregate`
groups results by sweep point and reduces every scalar metric to
mean / sample std / 95% CI half-width across replications.  Exports are
deterministic: sorted JSON keys, stable row order, and (by default) no
wall-clock fields — so two runs of the same sweep with the same root
seed produce **byte-identical** artifacts.

All arithmetic here is pure python (``math.fsum``), both to avoid a
numpy dependency in the CLI and because fsum's result is independent of
summation order — replication order never perturbs an aggregate.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

#: Scalar RunResult fields reduced across replications.
SCALAR_METRICS = (
    "sent", "delivered", "goodput", "sent_rate", "min_goodput",
    "order_violations", "retransmissions", "handoffs", "tombstones",
    "members", "peak_buffer",
)

#: Keys of the nested latency summary, reduced as ``latency_<key>``.
LATENCY_KEYS = ("mean", "p50", "p95", "p99", "max")

#: z for a 95% normal confidence interval.
_Z95 = 1.96


@dataclass
class RunResult:
    """Everything one run reports, as plain data."""

    run_id: str = ""
    name: str = ""
    system: str = "ringnet"
    params: Dict[str, Any] = field(default_factory=dict)
    point_index: int = 0
    replication: int = 0
    seed: int = 0
    duration_ms: float = 0.0
    warmup_ms: float = 0.0

    sent: int = 0
    delivered: int = 0
    goodput: float = 0.0          # mean per-MH delivery rate (msg/s)
    sent_rate: float = 0.0        # aggregate source rate (msg/s)
    min_goodput: float = 0.0      # slowest MH's delivery rate (msg/s)
    latency: Dict[str, float] = field(default_factory=dict)
    order_checked: bool = True
    order_violations: int = 0
    retransmissions: int = 0
    handoffs: int = 0
    tombstones: int = 0
    members: int = 0
    peak_buffer: int = 0          # max per-node WQ+MQ occupancy

    wall_time_s: float = 0.0      # excluded from deterministic exports

    #: Invariant violations from a ``--check`` run (None = not checked).
    #: Omitted from dict/JSON forms when None so unchecked artifacts
    #: stay byte-identical to pre-validation ones.
    violations: Optional[List[str]] = None

    def to_dict(self, include_timing: bool = True) -> Dict[str, Any]:
        data = asdict(self)
        if not include_timing:
            data.pop("wall_time_s")
        if self.violations is None:
            data.pop("violations")
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(**dict(data))


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _mean_std_ci(values: Sequence[float]) -> Dict[str, float]:
    n = len(values)
    mean = math.fsum(values) / n
    if n > 1:
        var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    return {"mean": mean, "std": std, "ci95": _Z95 * std / math.sqrt(n)}


def _scalars(result: RunResult) -> Dict[str, float]:
    out = {m: float(getattr(result, m)) for m in SCALAR_METRICS}
    for key in LATENCY_KEYS:
        out[f"latency_{key}"] = float(result.latency.get(key, 0.0))
    return out


def aggregate(results: Iterable[RunResult]) -> List[Dict[str, Any]]:
    """Reduce results to one row per sweep point.

    Rows come back ordered by ``point_index`` (then name/system for
    stability when several sweeps are mixed); each carries the point's
    params, the replication count, and ``{"mean", "std", "ci95"}`` per
    metric.
    """
    groups: Dict[Any, List[RunResult]] = {}
    for r in results:
        key = (r.point_index, r.name, r.system,
               json.dumps(r.params, sort_keys=True, default=str))
        groups.setdefault(key, []).append(r)

    rows: List[Dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: (k[0], k[1], k[2], k[3])):
        runs = sorted(groups[key], key=lambda r: r.replication)
        metrics = {
            name: _mean_std_ci([_scalars(r)[name] for r in runs])
            for name in sorted(_scalars(runs[0]))
        }
        rows.append({
            "point_index": runs[0].point_index,
            "name": runs[0].name,
            "system": runs[0].system,
            "params": dict(runs[0].params),
            "n": len(runs),
            "seeds": [r.seed for r in runs],
            "metrics": metrics,
        })
    return rows


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def to_artifact(
    results: Sequence[RunResult],
    aggregates: Optional[List[Dict[str, Any]]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    include_timing: bool = False,
) -> Dict[str, Any]:
    """The full result document (runs + aggregates + metadata)."""
    return {
        "schema": "repro.experiments/v1",
        "meta": dict(meta or {}),
        "n_runs": len(results),
        "runs": [r.to_dict(include_timing=include_timing) for r in results],
        "aggregates": aggregate(results) if aggregates is None else aggregates,
    }


def export_json(
    path: str,
    results: Sequence[RunResult],
    aggregates: Optional[List[Dict[str, Any]]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    include_timing: bool = False,
) -> None:
    """Write the artifact as deterministic JSON (sorted keys, ``\\n`` EOF)."""
    doc = to_artifact(results, aggregates, meta, include_timing)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def export_csv(path: str, aggregates: List[Dict[str, Any]]) -> None:
    """Flatten aggregate rows to CSV (one row per sweep point).

    Columns: identity, ``param:<axis>`` per sweep axis, then
    ``<metric>_mean`` / ``_std`` / ``_ci95`` in sorted metric order.
    """
    param_keys = sorted({k for row in aggregates for k in row["params"]})
    metric_keys = sorted({m for row in aggregates for m in row["metrics"]})
    header = (["point_index", "name", "system", "n"]
              + [f"param:{k}" for k in param_keys]
              + [f"{m}_{s}" for m in metric_keys
                 for s in ("mean", "std", "ci95")])
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in aggregates:
            record: List[Any] = [row["point_index"], row["name"],
                                 row["system"], row["n"]]
            record += [row["params"].get(k, "") for k in param_keys]
            for m in metric_keys:
                stats = row["metrics"].get(m, {})
                record += [stats.get("mean", ""), stats.get("std", ""),
                           stats.get("ci95", "")]
            writer.writerow(record)
