"""Parameter-grid expansion: one spec per sweep point × replication.

A sweep is a mapping of dotted override paths to value lists::

    sweep = {"hierarchy.n_br": [3, 5, 7],
             "workload.rate_per_sec": [10.0, 50.0, 100.0]}

:func:`expand_grid` takes the cartesian product (axes in the mapping's
order, values in list order — fully deterministic), replicates each
point, and derives an independent per-run seed from the root seed via
:func:`repro.sim.rand.derive_seed`, so replications are reproducible and
uncorrelated regardless of which worker executes them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.spec import ExperimentSpec
from repro.sim.rand import derive_seed


@dataclass(frozen=True)
class RunPoint:
    """One concrete run: a fully resolved spec plus its grid coordinates."""

    spec: ExperimentSpec
    point_index: int = 0
    replication: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    @property
    def run_id(self) -> str:
        """Stable identifier, e.g. ``quickstart#p2r0``."""
        return f"{self.spec.name}#p{self.point_index}r{self.replication}"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (picklable/JSON-able for worker transport)."""
        return {
            "spec": self.spec.to_dict(),
            "point_index": self.point_index,
            "replication": self.replication,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunPoint":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            point_index=int(data["point_index"]),
            replication=int(data["replication"]),
            params=dict(data["params"]),
            seed=int(data["seed"]),
        )


def expand_grid(
    base: ExperimentSpec,
    sweep: Optional[Mapping[str, Sequence[Any]]] = None,
    replications: int = 1,
    root_seed: Optional[int] = None,
) -> List[RunPoint]:
    """Expand ``base`` × ``sweep`` × ``replications`` into run points.

    Each point's spec is ``base`` with that point's overrides applied
    and ``seed`` set to ``derive_seed(root_seed, point_index,
    replication)`` (root defaults to ``base.seed``).  Sweeping ``seed``
    explicitly disables the derivation for that axis.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    sweep = dict(sweep or {})
    if "seed" in sweep and replications > 1:
        # Every replication of a point would get the identical seed —
        # n byte-identical runs masquerading as independent samples.
        raise ValueError(
            "sweeping 'seed' with replications > 1 duplicates runs; "
            "use replications=1 for a seed axis (or drop the axis and "
            "let replications derive seeds)")
    for path, values in sweep.items():
        if isinstance(values, (str, bytes)) or not isinstance(
                values, (list, tuple)):
            raise ValueError(
                f"sweep axis {path!r} must be a list of values, "
                f"got {values!r}"
            )
        if not values:
            raise ValueError(f"sweep axis {path!r} is empty")
    root = base.seed if root_seed is None else int(root_seed)

    axes = list(sweep.keys())
    combos = list(itertools.product(*(sweep[a] for a in axes))) or [()]
    points: List[RunPoint] = []
    for point_index, combo in enumerate(combos):
        params = dict(zip(axes, combo))
        for rep in range(replications):
            overrides = dict(params)
            if "seed" in params:
                seed = int(params["seed"])
            else:
                seed = derive_seed(root, point_index, rep)
                overrides["seed"] = seed
            points.append(RunPoint(
                spec=base.with_overrides(overrides),
                point_index=point_index,
                replication=rep,
                params=params,
                seed=seed,
            ))
    return points
