"""Declarative experiments: specs, sweeps, parallel runs, results.

This subsystem turns the repo's hand-written benchmark scripts into
data-driven experiment campaigns:

* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec`, a plain-data
  description of one run (hierarchy, protocol knobs, workload, mobility,
  churn, failures, duration); round-trips through dicts and JSON.
* :mod:`~repro.experiments.grid` — :func:`expand_grid` expands a dotted
  parameter grid × replications into :class:`RunPoint`\\ s with
  deterministically derived per-run seeds.
* :mod:`~repro.experiments.runner` — :func:`build_scenario` materializes
  a spec; :func:`run_point` executes one run with the standard collector
  set; :func:`run_sweep` fans points out to worker processes (serial
  fallback with ``jobs=1``) with identical results either way.
* :mod:`~repro.experiments.results` — :class:`RunResult`,
  :func:`aggregate` (mean/std/95% CI per sweep point), and deterministic
  JSON/CSV export.
* :mod:`~repro.experiments.registry` — the named scenario library
  (``quickstart``, ``handoff_storm``, ``churn_heavy``, ...).
* ``python -m repro.experiments`` — the CLI (``list`` / ``run`` /
  ``sweep``).

Quickstart
----------
>>> from repro.experiments import registry, expand_grid, run_sweep, aggregate
>>> base = registry.get("quickstart", duration_ms=3000.0, warmup_ms=500.0)
>>> points = expand_grid(base, {"workload.rate_per_sec": [10.0, 20.0]},
...                      replications=2)
>>> results = run_sweep(points, jobs=1)
>>> rows = aggregate(results)
>>> [round(r["metrics"]["goodput"]["mean"], 1) for r in rows]  # doctest: +SKIP
[10.0, 20.0]
"""

from repro.experiments.spec import (ChurnSpec, ExperimentSpec, FailureEvent,
                                    HierarchyShape, MobilitySpec,
                                    OpenWorldSpec, WorkloadSpec)
from repro.experiments.grid import RunPoint, expand_grid
from repro.experiments.results import (RunResult, aggregate, export_csv,
                                       export_json, to_artifact)
from repro.experiments.runner import build_scenario, run_point, run_sweep
from repro.experiments import registry

__all__ = [
    "ExperimentSpec", "HierarchyShape", "WorkloadSpec", "MobilitySpec",
    "ChurnSpec", "OpenWorldSpec", "FailureEvent",
    "RunPoint", "expand_grid",
    "RunResult", "aggregate", "export_json", "export_csv", "to_artifact",
    "build_scenario", "run_point", "run_sweep",
    "registry",
]
