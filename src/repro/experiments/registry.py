"""Named scenario-spec library.

Every entry is a factory producing a fresh :class:`ExperimentSpec`
(callers can mutate or override freely), plus a one-line description and
an optional *default sweep* — the parameter grid ``python -m
repro.experiments sweep <name>`` expands when the user gives no axes of
their own.

This registry supersedes the ad-hoc builders that used to accrete in
``workloads/scenarios.py``: a scenario here is data, so it can be
listed, swept, serialized, and run identically from the CLI, a test, or
a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.experiments.spec import (ChurnSpec, ExperimentSpec, FailureEvent,
                                    HierarchyShape, MobilitySpec,
                                    OpenWorldSpec, WorkloadSpec)
from repro.faults.plan import (Degrade, FaultPlan, Flap, LossBurst,
                               Partition)


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: factory + description + default sweep."""

    name: str
    description: str
    factory: Callable[[], ExperimentSpec]
    default_sweep: Optional[Dict[str, List[Any]]] = None


_REGISTRY: Dict[str, ScenarioEntry] = {}


def register(name: str, description: str,
             default_sweep: Optional[Dict[str, List[Any]]] = None):
    """Decorator registering a spec factory under ``name``."""
    def wrap(factory: Callable[[], ExperimentSpec]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioEntry(name, description, factory,
                                        default_sweep)
        return factory
    return wrap


def names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def entry(name: str) -> ScenarioEntry:
    """The full registry entry for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(names())}"
        ) from None


def get(name: str, **overrides: Any) -> ExperimentSpec:
    """A fresh spec for ``name``, with optional dotted-path overrides
    (e.g. ``get("quickstart", **{"workload.s": 4})``)."""
    spec = entry(name).factory()
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


def default_sweep(name: str) -> Optional[Dict[str, List[Any]]]:
    """The scenario's default parameter grid, or None."""
    sweep = entry(name).default_sweep
    return dict(sweep) if sweep is not None else None


# ----------------------------------------------------------------------
# The library
# ----------------------------------------------------------------------
@register("quickstart",
          "Figure-1 hierarchy, two steady senders, static audience",
          default_sweep={"hierarchy.n_br": [3, 4, 5],
                         "workload.rate_per_sec": [10.0, 20.0]})
def _quickstart() -> ExperimentSpec:
    return ExperimentSpec(
        name="quickstart",
        description="the paper's Figure-1 shape with two CBR senders",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=2, rate_per_sec=20.0),
        duration_ms=10_000.0, warmup_ms=1_000.0, seed=7,
    )


@register("conference",
          "§1 motivating workload: video conference, static audience")
def _conference() -> ExperimentSpec:
    return ExperimentSpec(
        name="conference",
        description="few steady senders, every member sees one ordered "
                    "stream",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=3),
        workload=WorkloadSpec(s=2, rate_per_sec=20.0),
        duration_ms=10_000.0, warmup_ms=1_000.0, seed=1,
    )


@register("campus",
          "conference traffic plus random-walk roaming over the AP grid")
def _campus() -> ExperimentSpec:
    return ExperimentSpec(
        name="campus",
        description="MHs random-walk across cells, handing off on every "
                    "crossing",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=3, aps_per_ag=3,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=2, rate_per_sec=10.0),
        mobility=MobilitySpec(enabled=True, model="random_walk",
                              mean_dwell_ms=2_000.0),
        duration_ms=15_000.0, warmup_ms=2_000.0, seed=1,
    )


@register("handoff_storm",
          "sprinting MHs over an AP corridor; MMA reservations stressed",
          default_sweep={"protocol.smooth_handoff": [True, False]})
def _handoff_storm() -> ExperimentSpec:
    return ExperimentSpec(
        name="handoff_storm",
        description="short dwell + directional walk: a handoff every "
                    "~600 ms per MH, dynamic AP paths",
        hierarchy=HierarchyShape(n_br=2, ags_per_br=1, aps_per_ag=6,
                                 mhs_per_ap=1),
        protocol={"static_ap_paths": False, "smooth_handoff": True,
                  "reservation_ttl": 5_000.0},
        workload=WorkloadSpec(s=1, rate_per_sec=25.0),
        mobility=MobilitySpec(enabled=True, model="directional",
                              mean_dwell_ms=600.0, persistence=0.95),
        duration_ms=20_000.0, warmup_ms=2_000.0, seed=5,
    )


@register("churn_heavy",
          "aggressive join/leave churn against a steady stream")
def _churn_heavy() -> ExperimentSpec:
    return ExperimentSpec(
        name="churn_heavy",
        description="a membership event every ~200 ms (E5's regime, "
                    "turned up)",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        churn=ChurnSpec(enabled=True, mean_interval_ms=200.0,
                        min_members=2),
        duration_ms=12_000.0, warmup_ms=2_000.0, seed=3,
    )


@register("deep_hierarchy",
          "§3 sub-tier nesting: three levels of AG rings below each BR")
def _deep_hierarchy() -> ExperimentSpec:
    return ExperimentSpec(
        name="deep_hierarchy",
        description="scaling by adding tiers instead of widening rings",
        hierarchy=HierarchyShape(n_br=2, ring_size=2, depth=3,
                                 aps_per_ag=1, mhs_per_ap=1),
        workload=WorkloadSpec(s=1, rate_per_sec=15.0),
        duration_ms=8_000.0, warmup_ms=2_000.0, seed=1202,
    )


@register("failure_drill",
          "token-holder crash, AG-leader crash: recovery under fire")
def _failure_drill() -> ExperimentSpec:
    return ExperimentSpec(
        name="failure_drill",
        description="scheduled crashes exercise token regeneration and "
                    "leader re-election mid-stream",
        hierarchy=HierarchyShape(n_br=4, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=1, rate_per_sec=20.0),
        failures=[
            FailureEvent(at_ms=3_000.0, kind="crash_token_holder"),
            FailureEvent(at_ms=6_000.0, kind="crash", target="ag:1.0"),
        ],
        duration_ms=15_000.0, warmup_ms=1_000.0, seed=13,
    )


@register("ring_vs_baselines",
          "same workload across ringnet / unordered / single-ring",
          default_sweep={"system": ["ringnet", "unordered", "single_ring"]})
def _ring_vs_baselines() -> ExperimentSpec:
    return ExperimentSpec(
        name="ring_vs_baselines",
        description="distribution-vehicle comparison on one fixed shape",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=1, rate_per_sec=15.0),
        duration_ms=10_000.0, warmup_ms=2_500.0, seed=606,
    )


@register("hotspot",
          "one dominant sender, a tail of slow commenters (skewed s×λ)")
def _hotspot() -> ExperimentSpec:
    return ExperimentSpec(
        name="hotspot",
        description="a 60 msg/s hot source plus two 10 msg/s sources: "
                    "ordering fairness under skew",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(rates=[60.0, 10.0, 10.0]),
        duration_ms=10_000.0, warmup_ms=2_000.0, seed=17,
    )


@register("bursty_sources",
          "Poisson arrivals: bursty traffic instead of Theorem 5.1's CBR")
def _bursty_sources() -> ExperimentSpec:
    return ExperimentSpec(
        name="bursty_sources",
        description="exponential inter-message gaps stress WQ/MQ sizing "
                    "beyond the CBR analysis",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=3, rate_per_sec=30.0, pattern="poisson"),
        duration_ms=10_000.0, warmup_ms=2_000.0, seed=23,
    )


@register("split_brain",
          "partition isolates the token holder's subtree, then heals")
def _split_brain() -> ExperimentSpec:
    return ExperimentSpec(
        name="split_brain",
        description="the paper's worst backbone fault: whichever BR "
                    "holds the OrderingToken is cut off (with its whole "
                    "subtree) mid-stream, then the partition heals",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        # The token must survive the outage in retransmission (no
        # maintenance event fires for a partition, so a transit give-up
        # would orphan it): 12 retries x 25 ms rto > the 250 ms cut.
        protocol={"max_retries": 12},
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        faults=FaultPlan(actions=[
            Partition(at_ms=1_000.0, heal_at_ms=1_250.0,
                      groups=[["@token_holder_subtree"], ["@rest"]]),
        ]),
        duration_ms=6_000.0, warmup_ms=500.0, seed=41,
    )


@register("asymmetric_partition",
          "one-way partition: a BR subtree can hear but not speak")
def _asymmetric_partition() -> ExperimentSpec:
    return ExperimentSpec(
        name="asymmetric_partition",
        description="traffic out of br:1's subtree is dropped while the "
                    "reverse direction still flows — the classic "
                    "one-way radio/backhaul failure",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        protocol={"max_retries": 12},
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        faults=FaultPlan(actions=[
            Partition(at_ms=1_000.0, heal_at_ms=1_250.0,
                      direction="a_to_b",
                      groups=[["br:1", "ag:1.*", "ap:1.*", "mh:1.*"],
                              ["@rest"]]),
        ]),
        duration_ms=6_000.0, warmup_ms=500.0, seed=43,
    )


@register("flapping_backbone",
          "a top-ring link flaps up/down every 160 ms for 1.4 s")
def _flapping_backbone() -> ExperimentSpec:
    return ExperimentSpec(
        name="flapping_backbone",
        description="periodic 80 ms outages on the br:0<->br:1 token "
                    "path: every pass risks a retransmission, none may "
                    "be lost",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        faults=FaultPlan(actions=[
            Flap(at_ms=800.0, until_ms=2_200.0, link=["br:0", "br:1"],
                 period_ms=160.0, duty=0.5),
        ]),
        duration_ms=6_000.0, warmup_ms=500.0, seed=47,
    )


@register("gilbert_elliott_access",
          "correlated loss bursts on every access link (GE channel)")
def _gilbert_elliott_access() -> ExperimentSpec:
    return ExperimentSpec(
        name="gilbert_elliott_access",
        description="two-state Gilbert-Elliott wireless: ~17% of each "
                    "sender's transmissions fall in bad-state bursts of "
                    "mean length 4 instead of i.i.d. loss",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        faults=FaultPlan(actions=[
            LossBurst(at_ms=500.0, until_ms=2_300.0,
                      links=[["ap:*", "mh:*"]],
                      p_gb=0.05, p_bg=0.25, loss_good=0.0, loss_bad=0.9),
        ]),
        duration_ms=6_000.0, warmup_ms=500.0, seed=53,
    )


@register("degraded_wan",
          "backbone ring links run 4x slower and 5% lossy for a window")
def _degraded_wan() -> ExperimentSpec:
    return ExperimentSpec(
        name="degraded_wan",
        description="a congested WAN window: every BR<->BR link gets "
                    "4x latency and 5% loss, stretching T_order without "
                    "breaking it",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        faults=FaultPlan(actions=[
            Degrade(at_ms=800.0, until_ms=2_000.0,
                    links=[["br:*", "br:*"]],
                    loss=0.05, latency_factor=4.0),
        ]),
        duration_ms=6_000.0, warmup_ms=500.0, seed=59,
    )


@register("partition_during_handoff_storm",
          "an AP pair is cut off exactly while MHs sprint across it")
def _partition_during_handoff_storm() -> ExperimentSpec:
    return ExperimentSpec(
        name="partition_during_handoff_storm",
        description="the handoff_storm corridor with a 250 ms partition "
                    "of two APs mid-storm: registrations and smooth-"
                    "handoff reservations must survive the outage",
        hierarchy=HierarchyShape(n_br=2, ags_per_br=1, aps_per_ag=4,
                                 mhs_per_ap=1),
        protocol={"static_ap_paths": False, "smooth_handoff": True,
                  "reservation_ttl": 5_000.0, "max_retries": 12},
        workload=WorkloadSpec(s=1, rate_per_sec=20.0),
        mobility=MobilitySpec(enabled=True, model="directional",
                              mean_dwell_ms=600.0, persistence=0.95),
        faults=FaultPlan(actions=[
            Partition(at_ms=1_200.0, heal_at_ms=1_450.0,
                      groups=[["ap:0.0.0", "ap:0.0.1"], ["@rest"]]),
        ]),
        duration_ms=8_000.0, warmup_ms=500.0, seed=61,
    )


@register("rolling_ap_brownout",
          "overlapping degradation windows roll across the AP sites")
def _rolling_ap_brownout() -> ExperimentSpec:
    return ExperimentSpec(
        name="rolling_ap_brownout",
        description="each BR's access links brown out (30% loss, 2x "
                    "latency) in overlapping 800 ms windows — a rolling "
                    "power event across sites",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        faults=FaultPlan(actions=[
            Degrade(at_ms=600.0, until_ms=1_400.0,
                    links=[["ap:0.*", "mh:0.*"]],
                    loss=0.30, latency_factor=2.0),
            Degrade(at_ms=1_000.0, until_ms=1_800.0,
                    links=[["ap:1.*", "mh:1.*"]],
                    loss=0.30, latency_factor=2.0),
            Degrade(at_ms=1_400.0, until_ms=2_200.0,
                    links=[["ap:2.*", "mh:2.*"]],
                    loss=0.30, latency_factor=2.0),
        ]),
        duration_ms=6_000.0, warmup_ms=500.0, seed=67,
    )


@register("correlated_ap_failures",
          "both APs of one AG crash at once (correlated edge outage)")
def _correlated_ap_failures() -> ExperimentSpec:
    return ExperimentSpec(
        name="correlated_ap_failures",
        description="a whole AG's AP population fails simultaneously — "
                    "a power/backhaul outage at one site",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(s=2, rate_per_sec=15.0),
        failures=[
            FailureEvent(at_ms=5_000.0, kind="crash", target="ap:0.0.0"),
            FailureEvent(at_ms=5_000.0, kind="crash", target="ap:0.0.1"),
        ],
        duration_ms=12_000.0, warmup_ms=2_000.0, seed=29,
    )


@register("open_world",
          "Poisson session arrivals over a lazy catchment; Pareto flows")
def _open_world() -> ExperimentSpec:
    return ExperimentSpec(
        name="open_world",
        description="an un-materialized per-AP catchment, heavy-tailed "
                    "sessions arriving and leaving, heavy-tailed flow "
                    "sizes, MQ retention pinned to the Theorem 5.1 "
                    "bound — the metro population as traffic",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1, idle_per_ap=8),
        workload=WorkloadSpec(
            s=2, rate_per_sec=25.0, pattern="flows",
            flows={"arrivals_per_sec": 5.0, "size_mean": 6.0,
                   "alpha": 1.5}),
        openworld=OpenWorldSpec(enabled=True, arrivals_per_sec=25.0,
                                mean_session_ms=800.0,
                                max_session_ms=4_000.0),
        bound_retention=True,
        duration_ms=8_000.0, warmup_ms=1_000.0, seed=71,
    )


@register("open_world_mobile",
          "open-world arrivals that roam: session churn + handoff "
          "mobility over a mostly idle catchment")
def _open_world_mobile() -> ExperimentSpec:
    return ExperimentSpec(
        name="open_world_mobile",
        description="the xxl catchment shape in miniature: each AP "
                    "fronts a mostly idle catchment (1 resident + 24 "
                    "registered slots), Poisson session arrivals "
                    "materialize lazily and random-walk across cells "
                    "while in session, stopping where they stand on "
                    "departure — open-world membership and frequent "
                    "handoff exercised together",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=1, idle_per_ap=24),
        workload=WorkloadSpec(s=2, rate_per_sec=20.0),
        mobility=MobilitySpec(enabled=True, model="random_walk",
                              mean_dwell_ms=600.0),
        openworld=OpenWorldSpec(enabled=True, arrivals_per_sec=20.0,
                                mean_session_ms=1_200.0,
                                max_session_ms=5_000.0),
        bound_retention=True,
        duration_ms=8_000.0, warmup_ms=1_000.0, seed=83,
    )


@register("flash_crowd",
          "a 6x flash-crowd rate spike ramps, holds, and decays")
def _flash_crowd() -> ExperimentSpec:
    return ExperimentSpec(
        name="flash_crowd",
        description="steady CBR until t=800 ms, then a 6x spike over "
                    "300 ms, held 600 ms: WQ/MQ and the token ring "
                    "absorb the surge and drain back",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(
            s=2, rate_per_sec=15.0,
            curve={"kind": "flash", "at_ms": 800.0, "ramp_ms": 300.0,
                   "peak_factor": 6.0, "hold_ms": 600.0,
                   "decay_ms": 400.0}),
        duration_ms=8_000.0, warmup_ms=500.0, seed=73,
    )


@register("diurnal",
          "day/night sinusoidal load cycle, compressed to 2 s periods")
def _diurnal() -> ExperimentSpec:
    return ExperimentSpec(
        name="diurnal",
        description="CBR senders modulated by 1 + 0.6*sin(2*pi*t/2s): "
                    "sustained swing between 0.4x and 1.6x load",
        hierarchy=HierarchyShape(n_br=3, ags_per_br=2, aps_per_ag=2,
                                 mhs_per_ap=2),
        workload=WorkloadSpec(
            s=2, rate_per_sec=20.0,
            curve={"kind": "diurnal", "period_ms": 2_000.0,
                   "amplitude": 0.6}),
        duration_ms=8_000.0, warmup_ms=1_000.0, seed=79,
    )
