"""Membership tables: per-member records and the aggregated group view."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.address import NodeId


@dataclass(slots=True)
class MemberRecord:
    """What the membership service knows about one group member."""

    mh: NodeId
    ap: Optional[NodeId]
    joined_at: float
    last_event_at: float
    handoffs: int = 0
    operational: bool = True


class GroupView:
    """The aggregated membership of one group.

    This is the state the top-ring leader accumulates from upward
    membership propagation: the set of currently operational members and
    which AP each is attached to (the "aggregate location information"
    that the Host-View scheme tracks globally — RingNet only needs it at
    the top for group management, not on the data path).
    """

    __slots__ = ("gid", "_members", "version", "joins", "leaves",
                 "failures", "handoffs")

    def __init__(self, gid: str):
        self.gid = gid
        self._members: Dict[NodeId, MemberRecord] = {}
        self.version = 0
        self.joins = 0
        self.leaves = 0
        self.failures = 0
        self.handoffs = 0

    # ------------------------------------------------------------------
    def apply_join(self, mh: NodeId, ap: Optional[NodeId], at: float) -> None:
        """Record a join (idempotent for an already-known member)."""
        rec = self._members.get(mh)
        if rec is None or not rec.operational:
            self._members[mh] = MemberRecord(mh, ap, joined_at=at,
                                             last_event_at=at)
            self.joins += 1
            self.version += 1
        else:
            rec.ap = ap
            rec.last_event_at = at

    def apply_leave(self, mh: NodeId, at: float, failure: bool = False) -> None:
        """Record a leave or failure."""
        rec = self._members.get(mh)
        if rec is not None and rec.operational:
            rec.operational = False
            rec.last_event_at = at
            self.version += 1
            if failure:
                self.failures += 1
            else:
                self.leaves += 1

    def apply_handoff(self, mh: NodeId, new_ap: NodeId, at: float) -> None:
        """Record a handoff (member location change, not a churn event)."""
        rec = self._members.get(mh)
        if rec is not None:
            rec.ap = new_ap
            rec.handoffs += 1
            rec.last_event_at = at
            self.handoffs += 1
            # Per the paper's "no notion of handoff in the wired network",
            # a handoff does NOT bump the membership version: the member
            # set is unchanged.

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[NodeId]:
        """Currently operational members (sorted)."""
        return sorted(m for m, r in self._members.items() if r.operational)

    @property
    def size(self) -> int:
        """Number of operational members."""
        return sum(1 for r in self._members.values() if r.operational)

    def record(self, mh: NodeId) -> Optional[MemberRecord]:
        """The record for one member (None when never seen)."""
        return self._members.get(mh)

    def aps_hosting_members(self) -> Set[NodeId]:
        """APs with at least one operational member — the RingNet
        equivalent of a Host-View's MSS set."""
        return {r.ap for r in self._members.values()
                if r.operational and r.ap is not None}

    def __contains__(self, mh: NodeId) -> bool:
        rec = self._members.get(mh)
        return rec is not None and rec.operational

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GroupView {self.gid} members={self.size} v{self.version}>"
