"""The membership service: trace-driven bookkeeping and batching.

:class:`MembershipService` attaches to a running
:class:`~repro.core.protocol.RingNet` instance and reconstructs, from the
protocol's own trace events, the aggregated :class:`GroupView` the
top-ring leader holds, plus the event history and propagation statistics
the churn experiments (E5) report.

Batching: the paper suggests "some batched update scheme" for efficient
propagation.  The service models it by coalescing events into windows of
``batch_interval`` and reporting the batch-size distribution — the wire
cost of propagation is one MembershipUpdate per event without batching
versus one per window with it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.membership.events import EventKind, MembershipEvent
from repro.membership.tables import GroupView
from repro.net.address import NodeId
from repro.sim.trace import TraceBus, TraceRecord


class MembershipService:
    """Aggregated membership bookkeeping for one RingNet group."""

    def __init__(self, gid: str, trace: TraceBus, batch_interval: float = 50.0):
        self.gid = gid
        self.view = GroupView(gid)
        self.events: List[MembershipEvent] = []
        self.batch_interval = batch_interval
        self._batch_start: Optional[float] = None
        self._batch_count = 0
        self.batch_sizes: List[int] = []
        #: MH -> join-request time, for join-latency statistics.
        self._join_requested_at: Dict[NodeId, float] = {}
        self.join_latencies: List[float] = []
        trace.subscribe("mh.join", self._on_join_request)
        trace.subscribe("mh.member", self._on_member)
        trace.subscribe("mh.leave", self._on_leave)
        trace.subscribe("mh.handoff", self._on_handoff)
        trace.subscribe("ap.register", self._on_register)

    # ------------------------------------------------------------------
    # Trace handlers
    # ------------------------------------------------------------------
    def _on_join_request(self, rec: TraceRecord) -> None:
        self._join_requested_at[rec["mh"]] = rec.time
        self._record(MembershipEvent(rec.time, EventKind.JOIN,
                                     rec["mh"], ap=rec["ap"]))
        self.view.apply_join(rec["mh"], rec["ap"], rec.time)

    def _on_member(self, rec: TraceRecord) -> None:
        asked = self._join_requested_at.pop(rec["mh"], None)
        if asked is not None:
            self.join_latencies.append(rec.time - asked)

    def _on_leave(self, rec: TraceRecord) -> None:
        self._record(MembershipEvent(rec.time, EventKind.LEAVE,
                                     rec["mh"], ap=rec.get("ap")))
        self.view.apply_leave(rec["mh"], rec.time)

    def _on_handoff(self, rec: TraceRecord) -> None:
        self._record(MembershipEvent(rec.time, EventKind.HANDOFF, rec["mh"],
                                     ap=rec["new"], old_ap=rec.get("old")))
        self.view.apply_handoff(rec["mh"], rec["new"], rec.time)

    def _on_register(self, rec: TraceRecord) -> None:
        # Keeps the view's AP attribution current even for re-registrations
        # the MH-side trace already covered; also adopts members whose
        # original join predates this service (idempotent by design).
        mh = rec["mh"]
        if mh in self.view:
            self.view.apply_handoff(mh, rec["node"], rec.time)
        else:
            self.view.apply_join(mh, rec["node"], rec.time)

    # ------------------------------------------------------------------
    # Batching model
    # ------------------------------------------------------------------
    def _record(self, ev: MembershipEvent) -> None:
        self.events.append(ev)
        if self._batch_start is None or ev.time - self._batch_start > self.batch_interval:
            if self._batch_count:
                self.batch_sizes.append(self._batch_count)
            self._batch_start = ev.time
            self._batch_count = 1
        else:
            self._batch_count += 1

    def flush_batches(self) -> None:
        """Close the open batch window (call at end of run)."""
        if self._batch_count:
            self.batch_sizes.append(self._batch_count)
            self._batch_count = 0
            self._batch_start = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def updates_without_batching(self) -> int:
        """Wire updates if every event propagated individually."""
        return len(self.events)

    def updates_with_batching(self) -> int:
        """Wire updates under the batched scheme (one per window)."""
        open_batch = 1 if self._batch_count else 0
        return len(self.batch_sizes) + open_batch

    def summary(self) -> dict:
        """Headline numbers for the churn experiment."""
        return {
            "members": self.view.size,
            "joins": self.view.joins,
            "leaves": self.view.leaves,
            "handoffs": self.view.handoffs,
            "events": len(self.events),
            "batched_updates": self.updates_with_batching(),
            "mean_join_latency": (
                sum(self.join_latencies) / len(self.join_latencies)
                if self.join_latencies else 0.0
            ),
        }
