"""Membership events (paper §1: Member-Join / -Leave / -Failure / -Handoff)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.net.address import NodeId


class EventKind(enum.Enum):
    """The four membership event kinds the paper's GCS must handle."""

    JOIN = "join"
    LEAVE = "leave"
    FAILURE = "failure"
    HANDOFF = "handoff"


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change, as captured at an AP."""

    time: float
    kind: EventKind
    mh: NodeId
    #: AP where the event was captured (new AP for handoffs).
    ap: Optional[NodeId] = None
    #: Old AP (handoffs only).
    old_ap: Optional[NodeId] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind is EventKind.HANDOFF:
            return f"[{self.time:.1f}] {self.mh} handoff {self.old_ap}->{self.ap}"
        return f"[{self.time:.1f}] {self.mh} {self.kind.value} @ {self.ap}"
