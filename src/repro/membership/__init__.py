"""Group membership service (paper §3, details "omitted for brevity").

The paper relies on an underlying membership protocol with a specific
*interface*: membership change events (Member-Join, Member-Leave,
Member-Failure, Member-Handoff) are captured at the MH's attached AP and
propagated up the hierarchy to the top-ring leader (optionally batched);
topology maintenance emits Token-Loss / Multiple-Token messages to the
multicast layer.  The wire propagation and the maintenance signals are
implemented inside :mod:`repro.core` (NEs relay
:class:`~repro.core.messages.MembershipUpdate` upward; the
:class:`~repro.core.protocol.RingNet` facade raises the token signals).

This package provides the *bookkeeping* half:

* :mod:`repro.membership.events` — typed membership events;
* :mod:`repro.membership.tables` — per-node member tables and the
  aggregated group view;
* :mod:`repro.membership.protocol` — :class:`MembershipService`, which
  observes the trace bus, maintains the aggregated view the top leader
  would hold, applies batching, and records propagation statistics for
  the churn experiments (E5).
"""

from repro.membership.events import EventKind, MembershipEvent
from repro.membership.tables import GroupView, MemberRecord
from repro.membership.protocol import MembershipService

__all__ = [
    "EventKind",
    "MembershipEvent",
    "GroupView",
    "MemberRecord",
    "MembershipService",
]
