"""Movement models: when and where a mobile host moves next.

A model is a strategy object: given (rng, grid, current cell, state) it
returns the dwell time in the current cell and the next cell.  Models
keep any per-MH state in an opaque dict the driver threads through, so a
single model instance serves every MH.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

try:  # numpy only appears in a (lazily evaluated) type annotation
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.mobility.cells import Cell, CellGrid


class MobilityModel:
    """Base strategy; subclasses override :meth:`next_move`."""

    def next_move(
        self,
        rng: np.random.Generator,
        grid: CellGrid,
        cell: Cell,
        state: Dict,
    ) -> Tuple[float, Cell]:
        """Return (dwell_ms, next_cell).  ``next_cell == cell`` = stay."""
        raise NotImplementedError


class RandomWalk(MobilityModel):
    """Memoryless walk: exponential dwell, uniformly random neighbor.

    ``mean_dwell_ms`` controls the handoff rate: an MH hands off on
    average every ``mean_dwell_ms`` milliseconds (the paper's "frequent
    handoff" regime is small dwell).  ``stay_prob`` adds laziness —
    with that probability the MH re-draws a dwell in place.
    """

    def __init__(self, mean_dwell_ms: float = 2000.0, stay_prob: float = 0.0):
        if mean_dwell_ms <= 0:
            raise ValueError("mean_dwell_ms must be positive")
        if not 0.0 <= stay_prob < 1.0:
            raise ValueError("stay_prob must be in [0, 1)")
        self.mean_dwell_ms = mean_dwell_ms
        self.stay_prob = stay_prob

    def next_move(self, rng, grid, cell, state):
        dwell = float(rng.exponential(self.mean_dwell_ms))
        if self.stay_prob and rng.random() < self.stay_prob:
            return dwell, cell
        options = grid.neighbors(cell)
        if not options:
            return dwell, cell
        return dwell, options[int(rng.integers(len(options)))]


class DirectionalWalk(MobilityModel):
    """A walker with inertia: keeps its heading with ``persistence``.

    Models commuter-like motion (vehicle along a road): consecutive
    handoffs tend to hit *new* APs rather than bouncing between two,
    which is the regime where neighbor path pre-reservation pays off
    most (the reserved AP really is the next one used).
    """

    def __init__(self, mean_dwell_ms: float = 2000.0, persistence: float = 0.8):
        if mean_dwell_ms <= 0:
            raise ValueError("mean_dwell_ms must be positive")
        if not 0.0 <= persistence <= 1.0:
            raise ValueError("persistence must be in [0, 1]")
        self.mean_dwell_ms = mean_dwell_ms
        self.persistence = persistence

    def next_move(self, rng, grid, cell, state):
        dwell = float(rng.exponential(self.mean_dwell_ms))
        options = grid.neighbors(cell)
        if not options:
            return dwell, cell
        heading: Optional[Tuple[int, int]] = state.get("heading")
        if heading is not None and rng.random() < self.persistence:
            target = (cell[0] + heading[0], cell[1] + heading[1])
            if target in options:
                return dwell, target
        nxt = options[int(rng.integers(len(options)))]
        state["heading"] = (nxt[0] - cell[0], nxt[1] - cell[1])
        return dwell, nxt
