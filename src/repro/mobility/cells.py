"""Cell geometry: a rectangular grid of AP coverage cells."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.address import NodeId

Cell = Tuple[int, int]


class CellGrid:
    """A ``cols × rows`` grid of cells, each served by exactly one AP.

    Adjacency is 4-connected (N/S/E/W); the grid does not wrap.  The AP
    assignment is given at construction (usually the APs of a built
    hierarchy in row-major order), and the inverse mapping supports
    "which cell am I in" queries for handoff bookkeeping.
    """

    def __init__(self, cols: int, rows: int, aps: Sequence[NodeId]):
        if cols < 1 or rows < 1:
            raise ValueError("grid must be at least 1x1")
        if len(aps) != cols * rows:
            raise ValueError(
                f"need exactly {cols * rows} APs for a {cols}x{rows} grid, "
                f"got {len(aps)}"
            )
        self.cols = cols
        self.rows = rows
        self._ap_of: Dict[Cell, NodeId] = {}
        self._cell_of: Dict[NodeId, Cell] = {}
        i = 0
        for y in range(rows):
            for x in range(cols):
                ap = aps[i]
                self._ap_of[(x, y)] = ap
                self._cell_of[ap] = (x, y)
                i += 1

    # ------------------------------------------------------------------
    @classmethod
    def square_for(cls, aps: Sequence[NodeId]) -> "CellGrid":
        """Smallest near-square grid holding all given APs.

        Pads by reusing the last AP for any leftover cells (keeps every
        cell covered while accepting non-square AP counts).
        """
        n = len(aps)
        if n == 0:
            raise ValueError("need at least one AP")
        cols = int(n ** 0.5) or 1
        rows = (n + cols - 1) // cols
        padded = list(aps) + [aps[-1]] * (cols * rows - n)
        return cls(cols, rows, padded)

    # ------------------------------------------------------------------
    def ap_at(self, cell: Cell) -> NodeId:
        """The AP serving ``cell``."""
        return self._ap_of[cell]

    def cell_of(self, ap: NodeId) -> Optional[Cell]:
        """The cell an AP serves (None for unknown APs)."""
        return self._cell_of.get(ap)

    def neighbors(self, cell: Cell) -> List[Cell]:
        """4-connected neighbor cells inside the grid."""
        x, y = cell
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.cols and 0 <= ny < self.rows:
                out.append((nx, ny))
        return out

    def neighbor_aps(self, ap: NodeId) -> List[NodeId]:
        """APs of the cells adjacent to ``ap``'s cell."""
        cell = self._cell_of.get(ap)
        if cell is None:
            return []
        return [self._ap_of[c] for c in self.neighbors(cell)]

    @property
    def cells(self) -> List[Cell]:
        """All cells in row-major order."""
        return [(x, y) for y in range(self.rows) for x in range(self.cols)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CellGrid {self.cols}x{self.rows}>"
