"""The handoff driver: turns a movement model into protocol handoffs.

Works against any facade exposing ``handoff(mh_id, new_ap)`` and a
``sim`` attribute (RingNet and the baseline protocols all do), so the
same mobility workload drives every protocol in the comparison
experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.mobility.cells import Cell, CellGrid
from repro.mobility.models import MobilityModel
from repro.net.address import NodeId
from repro.runtime.api import Runtime


class HandoffFacade(Protocol):  # pragma: no cover - typing helper
    """What the driver needs from a protocol instance."""

    sim: Runtime

    def handoff(self, mh_id: NodeId, new_ap: NodeId) -> None: ...


class HandoffDriver:
    """Schedules movement for a set of MHs over a cell grid."""

    def __init__(
        self,
        facade: HandoffFacade,
        grid: CellGrid,
        model: MobilityModel,
        rng_name: str = "mobility",
    ):
        self.facade = facade
        self.sim = facade.sim
        self.grid = grid
        self.model = model
        self.rng = self.sim.rng(rng_name)
        self._cell: Dict[NodeId, Cell] = {}
        self._state: Dict[NodeId, Dict] = {}
        self._active: Dict[NodeId, bool] = {}
        #: Re-track generation per MH: a pending move from an earlier
        #: tracking stint (stopped, then re-tracked by an open-world
        #: re-arrival) must not fire into the new stint.
        self._epoch: Dict[NodeId, int] = {}
        self.handoffs_driven = 0
        #: (time, mh, old_ap, new_ap) log of driven handoffs.
        self.log: List[Tuple[float, NodeId, NodeId, NodeId]] = []
        #: Optional hook called as ``migration_hook(mh, old_ap, new_ap)``
        #: on every driven handoff.  The sharded runtime installs one to
        #: detect MHs whose new AP lives on a different shard: ownership
        #: stays pinned (correctness never depends on placement — the
        #: conservative window covers cross-shard wireless links), but
        #: the migration is counted, exchanged at the next window
        #: boundary, and reported as a rebalancing hint.
        self.migration_hook: Optional[
            Callable[[NodeId, NodeId, NodeId], None]] = None

    # ------------------------------------------------------------------
    def track(self, mh_id: NodeId, start_ap: NodeId) -> None:
        """Start moving ``mh_id``, currently attached at ``start_ap``."""
        cell = self.grid.cell_of(start_ap)
        if cell is None:
            raise ValueError(f"AP {start_ap!r} is not on the grid")
        self._cell[mh_id] = cell
        self._state[mh_id] = {}
        self._active[mh_id] = True
        self._epoch[mh_id] = self._epoch.get(mh_id, 0) + 1
        self._schedule(mh_id)

    def stop(self, mh_id: NodeId) -> None:
        """Stop moving ``mh_id`` (it stays wherever it is)."""
        self._active[mh_id] = False

    def stop_all(self) -> None:
        """Freeze every tracked MH."""
        for mh in self._active:
            self._active[mh] = False

    def cell_of(self, mh_id: NodeId) -> Optional[Cell]:
        """The driver's belief of where ``mh_id`` currently is."""
        return self._cell.get(mh_id)

    # ------------------------------------------------------------------
    def _schedule(self, mh_id: NodeId) -> None:
        dwell, nxt = self.model.next_move(
            self.rng, self.grid, self._cell[mh_id], self._state[mh_id]
        )
        self.sim.schedule(dwell, self._move, mh_id, nxt,
                          self._epoch[mh_id])

    def _move(self, mh_id: NodeId, nxt: Cell, epoch: int) -> None:
        if not self._active.get(mh_id) or epoch != self._epoch.get(mh_id):
            return
        cur = self._cell[mh_id]
        if nxt != cur:
            old_ap = self.grid.ap_at(cur)
            new_ap = self.grid.ap_at(nxt)
            self._cell[mh_id] = nxt
            if new_ap != old_ap:
                self.facade.handoff(mh_id, new_ap)
                self.handoffs_driven += 1
                self.log.append((self.sim.now, mh_id, old_ap, new_ap))
                if self.migration_hook is not None:
                    self.migration_hook(mh_id, old_ap, new_ap)
        self._schedule(mh_id)
