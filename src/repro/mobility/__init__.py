"""Mobility substrate: cells, movement models, and the handoff driver.

The paper's evaluation environment is a cellular mobile Internet: MHs
roam between AP coverage cells and hand off as they cross boundaries.
This package provides:

* :mod:`repro.mobility.cells` — a rectangular cell grid with one AP per
  cell and an adjacency relation (the "nearby APs" of the smooth-handoff
  scheme);
* :mod:`repro.mobility.models` — movement models producing cell-crossing
  times: a memoryless random-walk (exponential dwell, uniform neighbor)
  and a directional random-waypoint-like walker that tends to keep
  heading, stressing reservation schemes differently;
* :mod:`repro.mobility.handoff` — :class:`HandoffDriver`, which owns the
  movement schedule and calls ``RingNet.handoff`` (or any compatible
  protocol facade) at each crossing.
"""

from repro.mobility.cells import CellGrid
from repro.mobility.models import DirectionalWalk, MobilityModel, RandomWalk
from repro.mobility.handoff import HandoffDriver

__all__ = [
    "CellGrid",
    "MobilityModel",
    "RandomWalk",
    "DirectionalWalk",
    "HandoffDriver",
]
