"""The :class:`Runtime` interface — what protocol code may assume.

A runtime is a clock plus a scheduler plus the deterministic services
the protocol stack consumes (random streams, the trace bus, ownership
sections).  The contract is intentionally small; everything in
``repro.net`` and ``repro.core`` is written against it and must work
unchanged on any implementation:

``now``
    Current time in milliseconds.  Simulated time on the sim backend,
    wall-clock-derived time on the live backend.  Only moves forward.
``schedule(delay, fn, *args, owner=...)`` / ``schedule_at`` / ``cancel``
    One-shot callbacks.  The returned handle exposes a ``cancelled``
    attribute (True once cancelled *or* refused by a shard gate), which
    is all the timers inspect.  ``cancel`` is idempotent and a no-op on
    handles that already fired.
``rng(name)``
    The named deterministic random stream (``random()``,
    ``exponential()``, ``integers()`` — see
    :class:`repro.sim.rand.RandomStreams`).  Same seed + same per-stream
    draw sequence on every backend, which is what makes the sim-vs-live
    differential harness meaningful.
``trace``
    The :class:`repro.sim.trace.TraceBus`; emit with
    ``rt.trace.emit(now, kind, **fields)``.  Monitors subscribe to it —
    identically for recorded sim traces and streaming live traces.
``call_owned(owner, fn, *args)`` / ``current_owner``
    Ownership sections at the control→entity boundary.  On the sim
    backend these drive causal-key derivation and shard gating; a live
    runtime only tracks the owner label.

Implementations also carry ``gate``/``shard``/``obs``/``obs_hook``/
``spans`` attributes (default ``None``); instrumented code null-checks
them, so a backend that never sets them pays nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.trace import TraceBus

#: Sentinel: "inherit the scheduling context's owner".  Shared by every
#: backend so ``owner=_INHERIT`` means the same thing everywhere.
_INHERIT = object()


class Runtime:
    """Abstract base for scheduler backends.

    Subclasses must set :attr:`now`, :attr:`seed`, and :attr:`trace`,
    and implement the scheduling and context methods below.  The base
    class deliberately has no ``__init__``: the sim backend initializes
    its state inline on the hot path, and the live backend has an
    entirely different notion of "now".
    """

    #: Current time (ms).  Subclass state.
    now: float
    #: Master seed for the deterministic random streams.
    seed: int
    #: The structured trace bus.
    trace: TraceBus

    # Optional cross-cutting hooks; protocol code null-checks these.
    gate: Optional[Callable[[Any], bool]] = None
    shard = None
    obs = None
    obs_hook = None
    #: Out-of-band span sink (:class:`repro.obs.spans.SpanCollector`);
    #: the transport layer calls ``spans.seg_send/seg_recv/give_up``
    #: when set.  Like ``obs``, a run without one executes zero span
    #: code beyond this null check.
    spans = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 owner: Any = _INHERIT):
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        Returns a cancellable handle with a ``cancelled`` attribute.
        """
        raise NotImplementedError

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    owner: Any = _INHERIT):
        """Schedule ``fn(*args)`` at an absolute time (ms)."""
        raise NotImplementedError

    def cancel(self, handle) -> None:
        """Cancel a pending handle (no-op if it already fired)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Deterministic services
    # ------------------------------------------------------------------
    def rng(self, name: str):
        """Return the named deterministic random stream."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Ownership contexts
    # ------------------------------------------------------------------
    def call_owned(self, owner: Any, fn: Callable[..., Any], *args: Any):
        """Run ``fn(*args)`` in a sub-context owned by ``owner``."""
        raise NotImplementedError

    @property
    def current_owner(self) -> Optional[str]:
        """Owner of the currently executing context (None = control)."""
        raise NotImplementedError
