"""The runtime seam: the interface protocol code runs against.

Every layer above the scheduler — ``repro.net`` (fabric, transport,
nodes) and ``repro.core`` (ordering, token, retransmission, mobile
hosts) — talks to the world exclusively through the :class:`Runtime`
interface defined here: a clock, one-shot scheduling with cancellation,
named deterministic random streams, a trace bus, and ownership
sections.  Two backends implement it:

* :class:`repro.sim.engine.Simulator` — the discrete-event engine, the
  correctness oracle (byte-identical goldens, sharded execution);
* :class:`repro.live.runtime.LiveRuntime` — wall-clock asyncio, turning
  the same protocol stack into a runnable service.

The timers (:class:`Timer`, :class:`PeriodicTimer`) live here too, so
protocol state machines depend only on the seam, never on an engine.
"""

from repro.runtime.api import _INHERIT, Runtime
from repro.runtime.timers import PeriodicTimer, Timer

__all__ = ["Runtime", "Timer", "PeriodicTimer", "_INHERIT"]
