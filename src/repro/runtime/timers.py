"""Restartable one-shot and periodic timers over the runtime seam.

Protocol state machines use these instead of raw :meth:`Runtime.schedule`
so that the common patterns — "restart the retransmission timer", "tick the
Order-Assignment task every τ" — are one-liners with correct cancellation
semantics.  They depend only on the :class:`~repro.runtime.api.Runtime`
contract (``schedule``/``cancel`` plus handles with a ``cancelled``
attribute), so the same timer code runs on the discrete-event engine and
on the wall-clock asyncio backend.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.api import Runtime


class Timer:
    """A one-shot timer that can be started, restarted, and stopped.

    Restarting an armed timer cancels the in-flight event; the callback
    never fires more than once per arm.
    """

    __slots__ = ("sim", "fn", "args", "_event")

    def __init__(self, sim: Runtime, fn: Callable[..., Any], *args: Any):
        self.sim = sim
        self.fn = fn
        self.args = args
        self._event: Optional[Any] = None

    @property
    def armed(self) -> bool:
        """True while a fire is pending."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` units from now."""
        self.stop()
        self._event = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm; safe to call when not armed."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self.fn(*self.args)


class PeriodicTimer:
    """Fires ``fn`` every ``period`` units until stopped.

    The first fire happens one full period after :meth:`start` (optionally
    offset by ``phase``), matching the paper's description of the
    Order-Assignment task that "periodically checks its WQ" with cycle τ.
    """

    __slots__ = ("sim", "period", "phase", "fn", "args", "_event", "fires")

    def __init__(
        self,
        sim: Runtime,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        phase: float = 0.0,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.phase = phase
        self.fn = fn
        self.args = args
        self._event: Optional[Any] = None
        self.fires: int = 0

    @property
    def running(self) -> bool:
        """True while ticking."""
        return self._event is not None and not self._event.cancelled

    def start(self) -> None:
        """Begin ticking; idempotent when already running."""
        if self.running:
            return
        self._event = self.sim.schedule(self.phase + self.period, self._fire)

    def stop(self) -> None:
        """Stop ticking; safe to call when already stopped."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self.fires += 1
        # Re-arm first so fn() may call stop() to cancel the next tick.
        self._event = self.sim.schedule(self.period, self._fire)
        self.fn(*self.args)
