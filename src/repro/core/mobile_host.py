"""The Mobile Host endpoint (paper §4.1, "Data Structure of MHs").

An MH is a resource-constrained leaf: it holds only its group id, the
identity of its currently attached AP, its GUID/LUID pair, and a small
MQ from which messages are **delivered to the application in global
sequence order**.  Delivered messages are dropped immediately (the
paper reserves ``ValidFront`` retention for NEs).

Lifecycle:

* :meth:`join` — attach to an AP and become a group member; the AP
  answers with a :class:`~repro.core.messages.JoinAck` carrying the
  global sequence the membership starts after.
* :meth:`handoff_to` — detach from the old AP and register with a new
  one, advertising the max contiguously delivered sequence so the new AP
  resumes delivery exactly where the old one stopped ("even in
  handoffs").
* :meth:`leave` — detach and stop delivering.

Loss handling mirrors the NE side: a persistent sequence gap triggers a
:class:`~repro.core.messages.GapRequest` to the current AP, and a
:class:`~repro.core.messages.GapUnavailable` response (or repeated
silence) tombstones the range as really lost so application delivery
proceeds.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.core.datastructures import BufferedMessage, MessageQueue
from repro.core.messages import (
    Detach,
    GapRequest,
    GapUnavailable,
    HandoffRegister,
    JoinAck,
    WirelessDeliver,
)
from repro.core.retransmission import GAP_MAX_ATTEMPTS
from repro.net.address import NodeId
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel


class MobileHost(NetNode):
    """A mobile group member.

    Fully slotted: MHs are the entity that exists a hundred thousand to
    a million times at the top bench rungs, so per-instance ``__dict__``
    overhead (and any unbounded observer state — see
    ``ProtocolConfig.retain_app_log``) dominates resident memory there.
    """

    __slots__ = ("cfg", "guid", "luid", "ap", "is_member", "mq", "chan",
                 "app_log", "tombstones", "handoffs", "last_delivery_at",
                 "_delivered_n", "_attach_epoch", "_gap_state",
                 "_gap_timer")

    def __init__(self, fabric: Fabric, guid: NodeId, cfg: ProtocolConfig):
        NetNode.__init__(self, fabric, guid)
        self.cfg = cfg
        #: Globally unique id (Mobile IP home address analogue).
        self.guid = guid
        #: Locally unique id (care-of address analogue): (AP, epoch).
        self.luid: Optional[Tuple[NodeId, int]] = None
        self.ap: Optional[NodeId] = None
        self.is_member = False
        self.mq = MessageQueue()
        self.chan = ReliableChannel(self, rto=cfg.wireless_rto,
                                    max_retries=cfg.max_retries)
        #: (global_seq, payload, latency) for every app-level delivery —
        #: observer state, kept only while ``cfg.retain_app_log`` says so.
        self.app_log: List[Tuple[int, Any, float]] = []
        self.tombstones = 0
        self.handoffs = 0
        self.last_delivery_at: float = -1.0
        self._delivered_n = 0
        self._attach_epoch = 0
        self._gap_state: Optional[Tuple[int, float, int]] = None
        self._gap_timer = self.periodic(
            max(cfg.gap_timeout / 2.0, cfg.tau), self._gap_tick
        )

    # ------------------------------------------------------------------
    # Membership / mobility actions
    # ------------------------------------------------------------------
    def join(self, ap: NodeId) -> None:
        """Attach to ``ap`` and join the group."""
        self.ap = ap
        self._attach_epoch += 1
        self.luid = (ap, self._attach_epoch)
        self.chan.send(ap, HandoffRegister(self.cfg.gid, self.guid,
                                           max_delivered_seq=-1, joining=True,
                                           epoch=self._attach_epoch))
        self._gap_timer.start()
        self.sim.trace.emit(self.now, "mh.join", mh=self.guid, ap=ap)

    def handoff_to(self, new_ap: NodeId) -> None:
        """Move to ``new_ap``, resuming delivery after ``mq.front``."""
        old = self.ap
        if old is not None and old != new_ap:
            # Abandon in-flight traffic to the old AP *before* sending
            # the Detach, so the Detach itself keeps its retransmission
            # state — cancelling afterwards made a single lost wireless
            # transmission strand the registration at the old AP forever
            # (found by the membership-consistency monitor).  The Detach
            # carries the epoch being torn down, so if this MH returns
            # to ``old`` before a delayed retransmission lands, the AP
            # recognizes it as stale and keeps the newer registration.
            self.chan.cancel_all(old)
            self.chan.send(old, Detach(self.cfg.gid, self.guid,
                                       epoch=self._attach_epoch))
        self.ap = new_ap
        self._attach_epoch += 1
        self.luid = (new_ap, self._attach_epoch)
        self.handoffs += 1
        self._gap_state = None
        self.chan.send(new_ap, HandoffRegister(
            self.cfg.gid, self.guid, max_delivered_seq=self.mq.front,
            joining=not self.is_member, epoch=self._attach_epoch))
        self.sim.trace.emit(self.now, "mh.handoff", mh=self.guid,
                            old=old, new=new_ap, front=self.mq.front)

    def leave(self) -> None:
        """Leave the group and detach from the current AP."""
        if self.ap is not None:
            self.chan.send(self.ap, Detach(self.cfg.gid, self.guid,
                                           epoch=self._attach_epoch))
        self.is_member = False
        self._gap_timer.stop()
        self.sim.trace.emit(self.now, "mh.leave", mh=self.guid, ap=self.ap)
        self.ap = None

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, WirelessDeliver):
            self._handle_deliver(payload)
        elif isinstance(payload, JoinAck):
            self._handle_join_ack(payload)
        elif isinstance(payload, GapUnavailable):
            self._handle_gap_unavailable(payload)

    def _handle_join_ack(self, msg: JoinAck) -> None:
        if self.is_member:
            return
        self.is_member = True
        # Membership starts after base_seq: re-seed the MQ pointers.
        self.mq = MessageQueue(start_seq=msg.base_seq + 1)
        self.sim.trace.emit(self.now, "mh.member", mh=self.guid,
                            base=msg.base_seq)

    def _handle_deliver(self, msg: WirelessDeliver) -> None:
        if not self.is_member:
            return
        bm = BufferedMessage(
            global_seq=msg.global_seq,
            source=msg.source,
            local_seq=msg.local_seq,
            ordering_node=msg.ordering_node,
            payload=msg.payload,
            created_at=msg.created_at,
        )
        if not self.mq.insert(bm):
            return
        self._deliver_contiguous()

    def _deliver_contiguous(self) -> None:
        """Deliver to the application strictly in global sequence order."""
        while True:
            bm = self.mq.get(self.mq.front + 1)
            if bm is None:
                break
            if not bm.received:
                # A tombstone: counted delivered, nothing reaches the app.
                self.mq.mark_delivered(bm.global_seq)
                self.mq.advance_front()
                continue
            self.mq.mark_delivered(bm.global_seq, at=self.now)
            self.mq.advance_front()
            latency = self.now - bm.created_at
            self._delivered_n += 1
            if self.cfg.retain_app_log:
                self.app_log.append((bm.global_seq, bm.payload, latency))
            self.last_delivery_at = self.now
            self.sim.trace.emit(
                self.now, "mh.deliver", mh=self.guid, gseq=bm.global_seq,
                latency=latency, source=bm.source, local_seq=bm.local_seq,
                created_at=bm.created_at,
            )
        # MHs keep no delivered history (resource constraints, §1).
        self.mq.prune(0)

    # ------------------------------------------------------------------
    # Gap recovery (MH side)
    # ------------------------------------------------------------------
    def _gap_tick(self) -> None:
        if not self.is_member or self.ap is None:
            return
        hole = self.mq.front + 1
        if self.mq.rear < hole:
            self._gap_state = None
            return  # nothing outstanding
        if self.mq.has(hole):
            self._gap_state = None
            return
        if self._gap_state is None or self._gap_state[0] != hole:
            self._gap_state = (hole, self.now, 0)
            return
        first_seen, attempts = self._gap_state[1], self._gap_state[2]
        if self.now - first_seen < self.cfg.gap_timeout * (attempts + 1):
            return
        hole_end = hole
        while hole_end + 1 <= self.mq.rear and not self.mq.has(hole_end + 1):
            hole_end += 1
        if attempts >= GAP_MAX_ATTEMPTS:
            self._tombstone_range(hole, hole_end)
            self._gap_state = None
            return
        self.chan.send(self.ap, GapRequest(self.cfg.gid, hole, hole_end))
        self.sim.trace.emit(self.now, "mh.gap_request", mh=self.guid,
                            ap=self.ap, from_seq=hole, to_seq=hole_end)
        self._gap_state = (hole, first_seen, attempts + 1)

    def _handle_gap_unavailable(self, msg: GapUnavailable) -> None:
        self._tombstone_range(msg.from_seq, msg.to_seq)

    def _tombstone_range(self, from_seq: int, to_seq: int) -> None:
        for seq in range(max(from_seq, self.mq.front + 1), to_seq + 1):
            if not self.mq.has(seq):
                self.mq.tombstone_lost(seq)
                self.tombstones += 1
                self.sim.trace.emit(self.now, "mh.tombstone", mh=self.guid,
                                    gseq=seq)
        self._deliver_contiguous()

    # ------------------------------------------------------------------
    @property
    def delivered_count(self) -> int:
        """Messages delivered to the application so far.

        Counted independently of ``app_log`` so it stays correct when
        ``cfg.retain_app_log`` is off.
        """
        return self._delivered_n

    def delivered_seqs(self) -> List[int]:
        """Global sequence numbers delivered, in delivery order.

        Reads the app log — empty when ``cfg.retain_app_log`` is off.
        """
        return [g for g, _, _ in self.app_log]
