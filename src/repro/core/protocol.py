"""The RingNet facade: build and run one complete protocol instance.

:class:`RingNet` assembles every moving part on one simulator:

* builds (or adopts) a :class:`~repro.topology.hierarchy.Hierarchy` and
  provisions the fabric links;
* instantiates a :class:`~repro.core.ne.NetworkEntity` for every BR/AG/AP
  and wires parent→child delivery registration;
* injects the initial OrderingToken at the top-ring leader;
* exposes helpers to attach multicast sources and mobile hosts, drive
  handoffs, and crash NEs;
* subscribes to :class:`~repro.topology.maintenance.TopologyMaintenance`
  change records and translates them into neighbor-view updates plus the
  paper's Token-Loss / Multiple-Token signals.

This is the public API the examples and benchmarks use::

    sim = Simulator(seed=7)
    net = RingNet.build(sim, HierarchySpec(n_br=4, ags_per_br=3,
                                           aps_per_ag=2, mhs_per_ap=2))
    src = net.add_source("src:0", corresponding="br:0", rate_per_sec=20)
    net.start(); src.start()
    sim.run(until=10_000)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.messages import TokenPass
from repro.core.mobile_host import MobileHost
from repro.core.ne import NetworkEntity
from repro.core.source import MulticastSource
from repro.core.token import OrderingToken
from repro.net.address import NodeId, make_id
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.runtime.api import Runtime
from repro.topology.builder import (
    HierarchySpec,
    build_hierarchy,
    initial_attachments,
    provision_links,
)
from repro.topology.hierarchy import Hierarchy
from repro.topology.maintenance import ChangeRecord, TopologyMaintenance
from repro.topology.tiers import Tier

#: Delay between a topology change and the membership protocol's
#: Token-Loss / Multiple-Token signal reaching the multicast layer
#: (models the maintenance algorithm's detection latency).
SIGNAL_DELAY = 10.0


class RingNet:
    """One group's RingNet protocol instance."""

    def __init__(
        self,
        sim: Runtime,
        fabric: Fabric,
        hierarchy: Hierarchy,
        cfg: Optional[ProtocolConfig] = None,
        wireless: LinkSpec = WIRELESS,
    ):
        self.sim = sim
        self.fabric = fabric
        self.hierarchy = hierarchy
        self.cfg = cfg if cfg is not None else ProtocolConfig()
        self.wireless = wireless
        self.nes: Dict[NodeId, NetworkEntity] = {}
        self.sources: Dict[NodeId, MulticastSource] = {}
        self.mobile_hosts: Dict[NodeId, MobileHost] = {}
        #: Lazily-materialized idle population: per-AP count of MHs that
        #: exist only as a number until :meth:`activate_catchment` turns
        #: one into a real :class:`MobileHost`.  O(#APs) memory for any
        #: population size — the mechanism behind the xxl/metro rungs.
        self._catchment: Dict[NodeId, int] = {}
        #: How many catchment slots :meth:`activate_catchment` has
        #: turned into real MHs so far.
        self.catchment_materialized = 0
        self.maintenance = TopologyMaintenance(hierarchy)
        self.maintenance.subscribe(self._on_topology_change)
        self._build_nes()
        self._started = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sim: Runtime,
        spec: HierarchySpec,
        cfg: Optional[ProtocolConfig] = None,
        wired: LinkSpec = WIRED,
        wireless: LinkSpec = WIRELESS,
        attach_mhs: bool = True,
        fabric: Optional[Fabric] = None,
    ) -> "RingNet":
        """One-call construction: hierarchy, links, NEs, and MHs.

        ``fabric`` lets a backend supply its own transmission substrate
        (the live backend passes a queue- or socket-backed fabric); the
        default is the plain scheduler-dispatched :class:`Fabric`.
        """
        if fabric is None:
            fabric = Fabric(sim)
        hierarchy = build_hierarchy(spec)
        provision_links(fabric, hierarchy, wired=wired, wireless=wireless)
        net = cls(sim, fabric, hierarchy, cfg=cfg, wireless=wireless)
        if attach_mhs:
            for mh_id, ap_id in initial_attachments(spec).items():
                net.add_mobile_host(mh_id, ap_id)
        return net

    def _build_nes(self) -> None:
        h = self.hierarchy
        for node_id, tier in sorted(h.tier_of.items()):
            if tier is Tier.MH:
                continue
            ring = h.ring_containing(node_id)
            ne = NetworkEntity(
                self.fabric, node_id, self.cfg,
                h.neighbor_view(node_id),
                ring_size_hint=ring.size if ring is not None else 1,
            )
            ne.parent_candidates = list(h.candidate_parents.get(node_id, ()))
            self.nes[node_id] = ne
        # Parent→child delivery registration (NE tier links only).  In
        # dynamic-path mode APs are left off the tree until a member or a
        # reservation pulls them in (§3 path building).
        from repro.net.address import tier_of
        for child, parent in h.parent.items():
            if parent in self.nes and child in self.nes:
                if not self.cfg.static_ap_paths and tier_of(child) == "ap":
                    continue
                self.nes[parent].register_child(child, from_seq=-1)
        # Nearby-AP sets for smooth handoff: sibling APs under the same AG
        # (with wired links between them for NeighborNotify traffic).
        for ag in h.nodes_of_tier(Tier.AG):
            aps = [c for c in h.children.get(ag, ()) if c in self.nes]
            for ap in aps:
                self.nes[ap].nearby_aps = [a for a in aps if a != ap]
                for other in aps:
                    if other != ap and self.fabric.link(ap, other) is None:
                        self.fabric.connect(ap, other, WIRED)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start all NEs and inject the initial OrderingToken.

        Each NE starts inside its own ownership section, and the token
        injection event is owned by the leader, so a shard worker only
        arms the machinery of the entities it hosts.
        """
        if self._started:
            return
        self._started = True
        for ne in self.nes.values():
            self.sim.call_owned(ne.id, ne.start)
        leader = self.hierarchy.top_ring.leader
        token = OrderingToken(gid=self.cfg.gid, token_id=(0, leader))
        self.sim.schedule(0.0, self.nes[leader].handle_token, TokenPass(token),
                          owner=leader)

    # ------------------------------------------------------------------
    # Sources and mobile hosts
    # ------------------------------------------------------------------
    def add_source(
        self,
        source_id: Optional[NodeId] = None,
        corresponding: Optional[NodeId] = None,
        rate_per_sec: float = 10.0,
        pattern: str = "cbr",
        rate_fn=None,
        flows=None,
    ) -> MulticastSource:
        """Attach a multicast source to a top-ring corresponding node.

        ``rate_fn`` (time → rate factor) and ``flows`` (a
        :class:`~repro.core.source.FlowProfile`) pass through to the
        source for the open-world workloads.
        """
        if corresponding is None:
            # Round-robin over top-ring members.
            members = self.hierarchy.top_ring.members
            corresponding = members[len(self.sources) % len(members)]
        if source_id is None:
            source_id = make_id("src", len(self.sources))
        src = MulticastSource(self.fabric, source_id, self.cfg,
                              corresponding, rate_per_sec, pattern,
                              rate_fn=rate_fn, flows=flows)
        self.fabric.connect(source_id, corresponding, WIRED)
        self.nes[corresponding].source_id = source_id
        self.sources[source_id] = src
        if self.sim.shard is not None:
            # A source rides with its corresponding node's shard.
            self.sim.shard.adopt(source_id, corresponding)
        return src

    def add_mobile_host(self, mh_id: NodeId, ap_id: NodeId,
                        join: bool = True) -> MobileHost:
        """Create an MH, link it to its first AP, optionally join."""
        mh = MobileHost(self.fabric, mh_id, self.cfg)
        self.fabric.connect(mh_id, ap_id, self.wireless)
        self.mobile_hosts[mh_id] = mh
        # The attachment pointer is structural state the mobility driver
        # reads; set it here (replicated under sharding) so it is valid
        # even where the behavioural join below is another shard's job.
        mh.ap = ap_id
        if self.sim.shard is not None:
            # An MH rides with the shard of the AP it first attaches to.
            self.sim.shard.adopt(mh_id, ap_id)
        if join:
            self.sim.call_owned(mh_id, mh.join, ap_id)
        return mh

    # ------------------------------------------------------------------
    # Lazy catchment population
    # ------------------------------------------------------------------
    @staticmethod
    def catchment_mh_id(ap_id: NodeId, index: int) -> NodeId:
        """The deterministic id of catchment member ``index`` of ``ap_id``.

        ``ap:i.j.k`` → ``mh:i.j.k.c<index>`` — the ``c`` segment keeps
        catchment ids disjoint from build-time MH ids for any shape.
        """
        return "mh:" + ap_id.split(":", 1)[1] + f".c{index}"

    def register_catchment(self, ap_id: NodeId, count: int) -> None:
        """Declare ``count`` idle MHs behind ``ap_id`` without creating
        them.

        Until one is activated it costs one dict slot per *AP*, not per
        MH: no :class:`MobileHost`, no channel, no wireless link, no
        timers.  Replicated structural state under sharding (every shard
        sees the same counts).
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        if ap_id not in self.nes:
            raise KeyError(f"unknown AP {ap_id!r}")
        self._catchment[ap_id] = self._catchment.get(ap_id, 0) + count

    def catchment_size(self, ap_id: NodeId) -> int:
        """Registered (materialized or not) catchment size of one AP."""
        return self._catchment.get(ap_id, 0)

    @property
    def catchment_total(self) -> int:
        """Total registered catchment population across all APs."""
        return sum(self._catchment.values())

    @property
    def catchment_idle(self) -> int:
        """Registered catchment slots never yet materialized — the
        population that currently costs no per-entity memory."""
        return self.catchment_total - self.catchment_materialized

    def activate_catchment(self, ap_id: NodeId, index: int,
                           join: bool = True) -> MobileHost:
        """Materialize catchment MH ``index`` of ``ap_id`` on first use.

        Idempotent: activating an already-materialized (or re-joining a
        departed) member returns the existing instance.  This is the
        "created on first event" entry point the open-world drivers hit
        — everything an MH owns (protocol state, channel, link, timers)
        comes into being here, not at build time.
        """
        n = self._catchment.get(ap_id, 0)
        if index >= n:
            raise IndexError(
                f"catchment index {index} out of range for {ap_id!r} "
                f"(registered {n})")
        mh_id = self.catchment_mh_id(ap_id, index)
        mh = self.mobile_hosts.get(mh_id)
        if mh is None:
            self.catchment_materialized += 1
            return self.add_mobile_host(mh_id, ap_id, join=join)
        if join and not mh.is_member:
            self.sim.call_owned(mh_id, mh.join, ap_id)
        return mh

    def handoff(self, mh_id: NodeId, new_ap: NodeId) -> None:
        """Move an MH to a new AP (creates the wireless link if needed)."""
        mh = self.mobile_hosts[mh_id]
        if self.fabric.link(mh_id, new_ap) is None:
            self.fabric.connect(mh_id, new_ap, self.wireless)
        self.sim.call_owned(mh_id, mh.handoff_to, new_ap)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def crash_ne(self, node_id: NodeId, detection_delay: float = 50.0) -> None:
        """Fail-stop an NE now; topology maintenance repairs it later.

        ``detection_delay`` models how long the membership protocol takes
        to notice and run its maintenance algorithm.

        The liveness flip is control-plane state (replicated in every
        shard — the fabric and the token-loss signal read it); timer
        teardown and the trace record belong to the crashed entity.
        """
        ne = self.nes[node_id]
        ne.crash()
        self.sim.call_owned(node_id, self._crash_local, ne)
        self.sim.schedule(detection_delay, self.maintenance.remove_ne, node_id,
                          owner=None)

    def _crash_local(self, ne: NetworkEntity) -> None:
        ne.stop()
        self.sim.trace.emit(self.sim.now, "fault.crash", node=ne.id)

    # ------------------------------------------------------------------
    # Topology change handling
    # ------------------------------------------------------------------
    def _on_topology_change(self, rec: ChangeRecord) -> None:
        """Translate a maintenance record into protocol-level updates.

        Runs in replicated control context under sharding, so every
        touch of an NE's *behavioural* machinery — (un)registration,
        which re-arms delivery and cancels channels, and view adoption,
        which can start the τ timer — goes through an ownership section:
        the NE's shard does the work, the others just tick counters.
        Structural reads (hierarchy, change record) stay replicated.
        """
        self._refresh_views()
        if rec.kind in ("ring_splice", "leader_change", "node_removed",
                        "top_ring_split"):
            # Paper: the membership protocol sends a Token-Loss message to
            # the multicast protocol when running topology maintenance.
            self._schedule_token_loss_signal()
        if rec.kind == "top_ring_merged":
            self._schedule_multiple_token_signal()
        if rec.kind == "reparent":
            child, new_parent = rec["child"], rec["new"]
            old_parent = rec["old"]
            if old_parent in self.nes:
                self.sim.call_owned(old_parent,
                                    self.nes[old_parent].unregister_child,
                                    child)
            if new_parent is not None and new_parent in self.nes and child in self.nes:
                if self.fabric.link(child, new_parent) is None:
                    self.fabric.connect(child, new_parent, WIRED)
                self.sim.call_owned(new_parent,
                                    self.nes[new_parent].register_child,
                                    child)
        if rec.kind == "leader_change":
            # The new leader inherits the tree link: move the parent NE's
            # delivery registration from the old leader to the new one.
            old_leader, new_leader = rec["old"], rec["new"]
            parent = self.hierarchy.parent.get(new_leader)
            if parent is not None and parent in self.nes:
                if new_leader in self.nes and \
                        self.fabric.link(new_leader, parent) is None:
                    self.fabric.connect(new_leader, parent, WIRED)
                self.sim.call_owned(parent, self._move_registration,
                                    parent, old_leader, new_leader)

    def _move_registration(self, parent: NodeId, old_leader: NodeId,
                           new_leader: NodeId) -> None:
        parent_ne = self.nes[parent]
        if parent_ne.has_child(old_leader):
            parent_ne.unregister_child(old_leader)
        if new_leader in self.nes and not parent_ne.has_child(new_leader):
            parent_ne.register_child(new_leader)

    def _refresh_views(self) -> None:
        h = self.hierarchy
        for node_id, ne in self.nes.items():
            if node_id not in h.tier_of:
                continue  # removed node
            ring = h.ring_containing(node_id)
            # Pointers and the ring-size hint are structural state the
            # replicated control plane reads (the token-loss signal
            # chain derives its cadence from the hint), so they adopt
            # on every shard; only arming the τ timer is behaviour.
            was_top = ne.view.in_top_ring
            ne.adopt_view(h.neighbor_view(node_id),
                          ring.size if ring is not None else 1)
            self.sim.call_owned(node_id, self._arm_tau_after_view, ne,
                                was_top)

    def _arm_tau_after_view(self, ne: NetworkEntity, was_top: bool) -> None:
        if ne.started and ne.view.in_top_ring and not was_top:
            ne._tau_timer.start()

    def _schedule_token_loss_signal(self, rounds: int = 6) -> None:
        """Deliver the membership protocol's Token-Loss message.

        The paper has the message received "by some node" (singular): we
        target the current top-ring leader.  Because a node that saw the
        token recently ignores the signal ("the Message-Ordering
        algorithm runs well") even when the token really is gone, the
        membership protocol's periodic maintenance is modelled as a few
        repeated signals one expected rotation apart — at most one of
        them triggers a regeneration.
        """
        def signal(round_no: int) -> None:
            members = self._current_top_members()
            if not members:
                return
            leader = self.hierarchy.top_ring.leader
            ne = self.nes.get(leader)
            if ne is None or not ne.alive:
                ne = next((self.nes[m] for m in members
                           if m in self.nes and self.nes[m].alive), None)
            if ne is None:
                return
            self.sim.call_owned(ne.id, ne.signal_token_loss)
            if round_no + 1 < rounds:
                self.sim.schedule(ne.expected_token_rotation() + SIGNAL_DELAY,
                                  signal, round_no + 1)
        self.sim.schedule(SIGNAL_DELAY, signal, 0)

    def _schedule_multiple_token_signal(self) -> None:
        def signal() -> None:
            for node_id in self._current_top_members():
                ne = self.nes.get(node_id)
                if ne is not None and ne.alive:
                    self.sim.call_owned(node_id, ne.signal_multiple_token)
        self.sim.schedule(SIGNAL_DELAY, signal)

    def _current_top_members(self) -> List[NodeId]:
        if self.hierarchy.top_ring_id is None:
            return []
        return self.hierarchy.top_ring.members

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def top_ring_nes(self) -> List[NetworkEntity]:
        """The NEs currently in the top (ordering) ring."""
        return [self.nes[n] for n in self._current_top_members()
                if n in self.nes]

    def buffer_reports(self) -> List[dict]:
        """Occupancy snapshots for every NE (E3)."""
        return [ne.buffer_report() for ne in self.nes.values()]

    def member_hosts(self) -> List[MobileHost]:
        """All MHs currently group members."""
        return [m for m in self.mobile_hosts.values() if m.is_member]

    def total_app_deliveries(self) -> int:
        """Application-level deliveries summed over all MHs."""
        return sum(m.delivered_count for m in self.mobile_hosts.values())
