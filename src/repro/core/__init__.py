"""The RingNet reliable totally-ordered multicast protocol (paper §4).

This package is the paper's primary contribution.  It is organized to
mirror §4's structure:

* :mod:`repro.core.datastructures` — the MH/NE data structures of §4.1
  (``MessageQueue``, ``WorkingQueue``, ``WorkingTable``).
* :mod:`repro.core.token` — the ``OrderingToken`` and its ``WTSNP``
  (working table of sequence-number pairs).
* :mod:`repro.core.ordering` — the Message-Ordering and Order-Assignment
  algorithms (§4.2.1), run by top-ring NEs.
* :mod:`repro.core.forwarding` — the Message-Forwarding algorithm
  (§4.2.2), ring transmission of raw (top ring) and ordered (other
  rings) messages.
* :mod:`repro.core.delivering` — the Message-Delivering algorithm
  (§4.2.3), parent→child and AP→MH delivery with per-child WT tracking
  and best-effort loss tombstoning.
* :mod:`repro.core.token_recovery` — Token-Regeneration and
  Multiple-Token resolution (§4.2.1).
* :mod:`repro.core.mma` — Multicast Mobility Agent tables and the
  multicast-based smooth-handoff path reservation (§3).
* :mod:`repro.core.ne` — the network-entity node (BR/AG/AP) composing
  the algorithm mixins; :mod:`repro.core.mobile_host` — the MH endpoint;
  :mod:`repro.core.source` — multicast senders.
* :mod:`repro.core.protocol` — the :class:`RingNet` facade that builds
  and runs a complete protocol instance over a hierarchy.
"""

from repro.core.config import ProtocolConfig
from repro.core.datastructures import (
    BufferedMessage,
    MessageQueue,
    WorkingQueue,
    WorkingTable,
)
from repro.core.token import OrderingToken, WTSNPEntry
from repro.core.ne import NetworkEntity
from repro.core.mobile_host import MobileHost
from repro.core.source import MulticastSource
from repro.core.protocol import RingNet

__all__ = [
    "ProtocolConfig",
    "BufferedMessage",
    "MessageQueue",
    "WorkingQueue",
    "WorkingTable",
    "OrderingToken",
    "WTSNPEntry",
    "NetworkEntity",
    "MobileHost",
    "MulticastSource",
    "RingNet",
]
