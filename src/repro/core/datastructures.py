"""The MH/NE data structures of paper §4.1.

Three structures, kept faithful to the paper's field inventory:

* :class:`MessageQueue` (MQ) — the ordered message buffer, indexed by
  global sequence number, with the paper's ``Rear`` / ``Front`` /
  ``ValidFront`` pointers and per-message ``Received`` / ``Waiting`` /
  ``Delivered`` flags.  The paper's "really lost" rule is implemented by
  :meth:`MessageQueue.tombstone_lost`: a message that is not received and
  no longer awaited is *considered delivered* so ordered delivery never
  wedges (best-effort reliability).
* :class:`WorkingQueue` (WQ) — a list of per-source queues of raw
  messages awaiting ordering, used only by top-ring NEs.
* :class:`WorkingTable` (WT) — per-child (or per-MH) maximum delivered
  global sequence number, used by Message-Delivering.

The paper prescribes sequential storage with a fixed ``MaxNo``; we use a
dict-backed window with the same external contract (capacity accounting,
overflow counting, pointer semantics) because the experiments need to
*measure* occupancy against Theorem 5.1's bounds rather than crash at
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.net.address import NodeId


@dataclass(slots=True)
class BufferedMessage:
    """One multicast message as buffered in an MQ (paper §4.1).

    ``received=False, waiting=False, delivered=True`` encodes the paper's
    tombstone for a really-lost message.
    """

    global_seq: int
    source: NodeId
    local_seq: int
    ordering_node: NodeId
    payload: Any = None
    received: bool = True
    waiting: bool = False
    delivered: bool = False
    created_at: float = 0.0   # stamped by the source
    ordered_at: float = 0.0   # when Order-Assignment copied it to an MQ
    delivered_at: float = 0.0

    @property
    def really_lost(self) -> bool:
        """The paper's loss tombstone predicate."""
        return not self.received and not self.waiting


class MessageQueue:
    """MQ: ordered messages indexed by global sequence number.

    Pointers (all in global-sequence space):

    * ``rear`` — highest sequence ever inserted (paper: most recently
      received message).
    * ``front`` — highest sequence *contiguously* delivered from this
      node's starting point (delivery is in order, so the paper's "most
      recently delivered" pointer advances contiguously).
    * ``valid_front`` — oldest sequence still buffered; delivered
      messages between ``valid_front`` and ``front`` are the handoff
      catch-up reserve (paper: ValidFront, NEs only).
    """

    __slots__ = ("capacity", "start_seq", "_store", "_undelivered",
                 "rear", "front", "valid_front", "peak_occupancy",
                 "overflows", "inserted", "tombstoned")

    def __init__(self, capacity: int = 0, start_seq: int = 0):
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (0 = unbounded)")
        self.capacity = capacity
        self.start_seq = start_seq
        self._store: Dict[int, BufferedMessage] = {}
        # Incremental index of buffered-but-undelivered seqs, maintained
        # by insert/mark_delivered/tombstone_lost, so pending queries
        # never have to sort the whole store (which also holds the
        # delivered catch-up reserve between valid_front and front).
        self._undelivered: set = set()
        self.rear: int = start_seq - 1
        self.front: int = start_seq - 1
        self.valid_front: int = start_seq
        self.peak_occupancy: int = 0
        self.overflows: int = 0
        self.inserted: int = 0
        self.tombstoned: int = 0

    def anchor(self, start_seq: int) -> None:
        """Re-base an *empty* queue at ``start_seq``.

        Used when a cold NE (freshly built multicast path) receives its
        first ordered message: everything before it is before-my-time,
        not a hole to recover.
        """
        if self._store:
            raise ValueError("anchor() requires an empty queue")
        self._undelivered.clear()
        self.start_seq = start_seq
        self.rear = start_seq - 1
        self.front = start_seq - 1
        self.valid_front = start_seq

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, msg: BufferedMessage) -> bool:
        """Buffer an ordered message; returns False for duplicates/stale.

        Messages at or below ``front`` (already delivered past) and below
        ``valid_front`` are stale and rejected.
        """
        seq = msg.global_seq
        if seq in self._store or seq <= self.front or seq < self.valid_front:
            return False
        if self.capacity and len(self._store) >= self.capacity:
            self.overflows += 1
        self._store[seq] = msg
        if not msg.delivered:
            self._undelivered.add(seq)
        self.inserted += 1
        if seq > self.rear:
            self.rear = seq
        if len(self._store) > self.peak_occupancy:
            self.peak_occupancy = len(self._store)
        return True

    def tombstone_lost(self, seq: int, source: NodeId = "?",
                       ordering_node: NodeId = "?") -> BufferedMessage:
        """Record sequence ``seq`` as really lost (and hence delivered)."""
        msg = self._store.get(seq)
        if msg is None:
            msg = BufferedMessage(
                global_seq=seq, source=source, local_seq=-1,
                ordering_node=ordering_node, payload=None,
                received=False, waiting=False, delivered=True,
            )
            self._store[seq] = msg
            if seq > self.rear:
                self.rear = seq
        else:
            msg.received = False
            msg.waiting = False
            msg.delivered = True
            self._undelivered.discard(seq)
        self.tombstoned += 1
        return msg

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, seq: int) -> Optional[BufferedMessage]:
        """The buffered message at ``seq``, or None."""
        return self._store.get(seq)

    def has(self, seq: int) -> bool:
        """Whether ``seq`` is currently buffered (received or tombstone)."""
        return seq in self._store

    def __contains__(self, seq: int) -> bool:
        return seq in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def occupancy(self) -> int:
        """Messages currently buffered."""
        return len(self._store)

    def range(self, from_seq: int, to_seq: int) -> Iterator[BufferedMessage]:
        """Buffered messages with from_seq <= seq <= to_seq, in order."""
        for seq in range(from_seq, to_seq + 1):
            msg = self._store.get(seq)
            if msg is not None:
                yield msg

    # ------------------------------------------------------------------
    # Delivery pointers
    # ------------------------------------------------------------------
    def mark_delivered(self, seq: int, at: float = 0.0) -> None:
        """Flag one message delivered (front advances via advance_front).

        This is the *only* supported way to flip a buffered message's
        ``delivered`` flag — it keeps the pending index in sync.
        """
        msg = self._store.get(seq)
        if msg is not None:
            msg.delivered = True
            msg.delivered_at = at
            self._undelivered.discard(seq)

    def advance_front(self) -> int:
        """Advance ``front`` over contiguously delivered messages.

        Returns the number of positions advanced.
        """
        moved = 0
        while True:
            nxt = self._store.get(self.front + 1)
            if nxt is None or not nxt.delivered:
                break
            self.front += 1
            moved += 1
        return moved

    def prune(self, retention: int) -> int:
        """Drop delivered messages more than ``retention`` behind front.

        Returns the number of messages dropped; ``valid_front`` advances
        accordingly.  Never drops undelivered messages.
        """
        new_valid = self.front - retention + 1
        if new_valid <= self.valid_front:
            return 0
        dropped = 0
        for seq in range(self.valid_front, new_valid):
            msg = self._store.pop(seq, None)
            if msg is not None:
                self._undelivered.discard(seq)
                dropped += 1
        self.valid_front = new_valid
        return dropped

    @property
    def pending(self) -> int:
        """Buffered-but-undelivered message count (O(1))."""
        return len(self._undelivered)

    def undelivered(self) -> List[BufferedMessage]:
        """Buffered messages not yet delivered, in sequence order.

        Sorts only the (usually small) pending index, not the whole
        store with its delivered catch-up reserve.
        """
        return [self._store[s] for s in sorted(self._undelivered)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MQ n={len(self._store)} front={self.front} rear={self.rear} "
            f"valid_front={self.valid_front} peak={self.peak_occupancy}>"
        )


@dataclass(slots=True)
class WQEntry:
    """One raw message awaiting ordering in a WQ stream."""

    ordering_node: NodeId
    source: NodeId
    local_seq: int
    payload: Any
    created_at: float
    arrived_at: float


class WorkingQueue:
    """WQ: per-ordering-node streams of raw messages awaiting ordering.

    The paper designs WQ as "a list of queues, each of which is used to
    keep messages from one source" — here keyed by the ordering node
    (one source per top-ring node, §4.2.1 assumption).
    """

    __slots__ = ("capacity_per_stream", "_streams", "peak_occupancy",
                 "overflows", "inserted")

    def __init__(self, capacity_per_stream: int = 0):
        self.capacity_per_stream = capacity_per_stream
        self._streams: Dict[NodeId, Dict[int, WQEntry]] = {}
        self.peak_occupancy: int = 0
        self.overflows: int = 0
        self.inserted: int = 0

    def insert(self, entry: WQEntry) -> bool:
        """Add a raw message; returns False when it is a duplicate."""
        stream = self._streams.setdefault(entry.ordering_node, {})
        if entry.local_seq in stream:
            return False
        if self.capacity_per_stream and len(stream) >= self.capacity_per_stream:
            self.overflows += 1
        stream[entry.local_seq] = entry
        self.inserted += 1
        occ = self.occupancy
        if occ > self.peak_occupancy:
            self.peak_occupancy = occ
        return True

    def remove(self, ordering_node: NodeId, local_seq: int) -> Optional[WQEntry]:
        """Remove and return one entry (None when absent)."""
        stream = self._streams.get(ordering_node)
        if stream is None:
            return None
        return stream.pop(local_seq, None)

    def stream(self, ordering_node: NodeId) -> Dict[int, WQEntry]:
        """The live dict of one stream (empty dict when absent)."""
        return self._streams.get(ordering_node, {})

    def streams(self) -> Iterable[Tuple[NodeId, Dict[int, WQEntry]]]:
        """Iterate (ordering_node, stream dict) pairs."""
        return self._streams.items()

    @property
    def occupancy(self) -> int:
        """Total raw messages buffered across all streams."""
        return sum(len(s) for s in self._streams.values())

    def __len__(self) -> int:
        return self.occupancy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WQ streams={len(self._streams)} n={self.occupancy} peak={self.peak_occupancy}>"


class WorkingTable:
    """WT: per-child (or per-MH) max delivered global sequence number.

    ``add_child(child, from_seq)`` registers a child that should receive
    messages *after* ``from_seq`` (i.e. its first message is
    ``from_seq + 1``) — this is how handoff catch-up and late joins seed
    delivery state.
    """

    __slots__ = ("_max_delivered",)

    def __init__(self) -> None:
        self._max_delivered: Dict[NodeId, int] = {}

    def add_child(self, child: NodeId, from_seq: int) -> None:
        """Register/reset a child at ``from_seq``."""
        self._max_delivered[child] = from_seq

    def remove_child(self, child: NodeId) -> None:
        """Forget a departed child; no-op when unknown."""
        self._max_delivered.pop(child, None)

    def record_delivered(self, child: NodeId, seq: int) -> None:
        """Raise a child's max delivered seq (never lowers it)."""
        cur = self._max_delivered.get(child)
        if cur is not None and seq > cur:
            self._max_delivered[child] = seq

    def max_delivered(self, child: NodeId) -> Optional[int]:
        """The child's max delivered seq, or None when unknown."""
        return self._max_delivered.get(child)

    @property
    def children(self) -> List[NodeId]:
        """Registered children (sorted for stable iteration)."""
        return sorted(self._max_delivered)

    def min_delivered_across(self) -> Optional[int]:
        """Min over children of max delivered seq (None when no children).

        This is the paper's "maximal global sequence number of the
        message which has been delivered to *all* the children nodes" —
        the value that gates MQ front advancement.
        """
        if not self._max_delivered:
            return None
        return min(self._max_delivered.values())

    def __contains__(self, child: NodeId) -> bool:
        return child in self._max_delivered

    def __len__(self) -> int:
        return len(self._max_delivered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WT children={len(self._max_delivered)}>"
