"""Multicast sources (paper §4.2.1 and §5).

A source is a wired sender attached to its *corresponding node* in the
top logical ring ("we assume at most one source corresponding to each
node in the top logical ring").  It emits messages with monotonically
increasing **local sequence numbers** at rate λ messages per second:
CBR (exactly 1000/λ ms apart — the workload Theorem 5.1's bounds are
stated for), Poisson (exponential gaps with the same mean), or the
open-world ``flows`` pattern — Poisson flow arrivals where each flow is
a bounded-Pareto-sized burst of back-to-back messages (the load-driven
flow-size shape of psim's TrafficGen).

A ``rate_fn`` makes any pattern time-varying: it maps simulated time to
a multiplicative factor on the base rate (diurnal curves, flash
crowds).  All randomness draws from the per-source stream
``source.<id>``, so sharded runs stay byte-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.config import ProtocolConfig
from repro.core.messages import SourceData
from repro.net.address import NodeId
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel


@dataclass(frozen=True)
class FlowProfile:
    """Open-world flow shape: arrival rate and heavy-tailed sizes.

    Flow *sizes* (messages per flow) follow a bounded Pareto with tail
    index ``alpha`` whose scale is chosen so the unbounded mean is
    ``size_mean`` — the canonical elephants-and-mice traffic mix.
    """

    #: Mean new-flow arrivals per second (Poisson).
    arrivals_per_sec: float = 5.0
    #: Mean flow size in messages (sets the Pareto scale).
    size_mean: float = 8.0
    #: Pareto tail index; must be > 1 so the mean is finite.
    alpha: float = 1.5
    #: Hard cap on one flow's size.
    size_max: int = 10_000

    def __post_init__(self) -> None:
        if self.arrivals_per_sec <= 0:
            raise ValueError("arrivals_per_sec must be positive")
        if self.size_mean < 1:
            raise ValueError("size_mean must be >= 1")
        if self.alpha <= 1.0:
            raise ValueError("alpha must be > 1 (finite mean)")
        if self.size_max < 1:
            raise ValueError("size_max must be >= 1")

    def draw_size(self, rng) -> int:
        """One flow size via inverse-transform Pareto sampling."""
        # Pareto(xm, a) has mean xm·a/(a-1); pick xm to hit size_mean.
        xm = self.size_mean * (self.alpha - 1.0) / self.alpha
        u = float(rng.random())
        x = xm / (1.0 - u) ** (1.0 / self.alpha)
        return max(1, min(int(x), self.size_max))


class MulticastSource(NetNode):
    """One message source feeding a top-ring corresponding node."""

    def __init__(
        self,
        fabric: Fabric,
        source_id: NodeId,
        cfg: ProtocolConfig,
        corresponding: NodeId,
        rate_per_sec: float = 10.0,
        pattern: str = "cbr",
        payload_factory: Optional[Callable[[int], Any]] = None,
        rate_fn: Optional[Callable[[float], float]] = None,
        flows: Optional[FlowProfile] = None,
    ):
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        if pattern not in ("cbr", "poisson", "flows"):
            raise ValueError(f"unknown pattern {pattern!r}")
        NetNode.__init__(self, fabric, source_id)
        self.cfg = cfg
        self.corresponding = corresponding
        self.rate_per_sec = rate_per_sec
        self.pattern = pattern
        self.payload_factory = payload_factory or (lambda i: (source_id, i))
        #: Time → multiplicative rate factor (None = constant 1.0).
        self.rate_fn = rate_fn
        self.flows = flows if flows is not None else (
            FlowProfile() if pattern == "flows" else None)
        self.chan = ReliableChannel(self, rto=cfg.rto,
                                    max_retries=cfg.max_retries)
        self.local_seq = 0
        self.sent = 0
        #: Messages still to emit back-to-back in the current flow.
        self._flow_left = 0
        self._timer = self.timer(self._emit)
        self._running = False

    # ------------------------------------------------------------------
    @property
    def interval_ms(self) -> float:
        """Mean inter-message gap in milliseconds."""
        return 1000.0 / self.rate_per_sec

    def start(self, delay: float = 0.0) -> None:
        """Begin emitting after ``delay`` ms."""
        if self._running:
            return
        self._running = True
        self._timer.start(delay + self._next_gap())

    def stop(self) -> None:
        """Stop emitting (already sent messages keep flowing)."""
        self._running = False
        self._timer.stop()

    # ------------------------------------------------------------------
    def _rate_factor(self) -> float:
        """The current time-varying rate multiplier.

        Floored at 1% of the base rate: the curve is *sampled* at
        emission times, not integrated, so a true zero would stall the
        self-rescheduling timer forever.  A 100×-stretched gap models a
        trough faithfully enough for spec-level load curves.
        """
        if self.rate_fn is None:
            return 1.0
        return max(0.01, float(self.rate_fn(self.now)))

    def _next_gap(self) -> float:
        factor = self._rate_factor()
        if self.pattern == "flows":
            return self._next_flow_gap(factor)
        if self.pattern == "cbr":
            return self.interval_ms / factor
        return float(self.sim.rng(f"source.{self.id}")
                     .exponential(self.interval_ms / factor))

    def _next_flow_gap(self, factor: float) -> float:
        """Intra-flow spacing, or an exponential gap to the next flow.

        Inside a flow, messages go back-to-back at the base rate; the
        curve factor modulates how often *flows* arrive.
        """
        if self._flow_left > 0:
            self._flow_left -= 1
            return self.interval_ms
        rng = self.sim.rng(f"source.{self.id}")
        size = self.flows.draw_size(rng)
        self._flow_left = size - 1
        arrivals = self.flows.arrivals_per_sec * factor
        return float(rng.exponential(1000.0 / arrivals))

    def _emit(self) -> None:
        if not self._running:
            return
        msg = SourceData(
            gid=self.cfg.gid,
            source=self.id,
            local_seq=self.local_seq,
            payload=self.payload_factory(self.local_seq),
            created_at=self.now,
        )
        self.chan.send(self.corresponding, msg)
        self.sim.trace.emit(self.now, "source.send", source=self.id,
                            local_seq=self.local_seq,
                            corresponding=self.corresponding)
        self.local_seq += 1
        self.sent += 1
        self._timer.start(self._next_gap())

    def on_message(self, msg: Message) -> None:
        # Sources only ever receive transport acks.
        self.chan.accept(msg)
