"""Multicast sources (paper §4.2.1 and §5).

A source is a wired sender attached to its *corresponding node* in the
top logical ring ("we assume at most one source corresponding to each
node in the top logical ring").  It emits messages with monotonically
increasing **local sequence numbers** at rate λ messages per second,
either CBR (exactly 1000/λ ms apart — the workload Theorem 5.1's bounds
are stated for) or Poisson (exponential gaps with the same mean).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.core.config import ProtocolConfig
from repro.core.messages import SourceData
from repro.net.address import NodeId
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel


class MulticastSource(NetNode):
    """One message source feeding a top-ring corresponding node."""

    def __init__(
        self,
        fabric: Fabric,
        source_id: NodeId,
        cfg: ProtocolConfig,
        corresponding: NodeId,
        rate_per_sec: float = 10.0,
        pattern: str = "cbr",
        payload_factory: Optional[Callable[[int], Any]] = None,
    ):
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        if pattern not in ("cbr", "poisson"):
            raise ValueError(f"unknown pattern {pattern!r}")
        NetNode.__init__(self, fabric, source_id)
        self.cfg = cfg
        self.corresponding = corresponding
        self.rate_per_sec = rate_per_sec
        self.pattern = pattern
        self.payload_factory = payload_factory or (lambda i: (source_id, i))
        self.chan = ReliableChannel(self, rto=cfg.rto,
                                    max_retries=cfg.max_retries)
        self.local_seq = 0
        self.sent = 0
        self._timer = self.timer(self._emit)
        self._running = False

    # ------------------------------------------------------------------
    @property
    def interval_ms(self) -> float:
        """Mean inter-message gap in milliseconds."""
        return 1000.0 / self.rate_per_sec

    def start(self, delay: float = 0.0) -> None:
        """Begin emitting after ``delay`` ms."""
        if self._running:
            return
        self._running = True
        self._timer.start(delay + self._next_gap())

    def stop(self) -> None:
        """Stop emitting (already sent messages keep flowing)."""
        self._running = False
        self._timer.stop()

    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        if self.pattern == "cbr":
            return self.interval_ms
        return float(self.sim.rng(f"source.{self.id}").exponential(self.interval_ms))

    def _emit(self) -> None:
        if not self._running:
            return
        msg = SourceData(
            gid=self.cfg.gid,
            source=self.id,
            local_seq=self.local_seq,
            payload=self.payload_factory(self.local_seq),
            created_at=self.now,
        )
        self.chan.send(self.corresponding, msg)
        self.sim.trace.emit(self.now, "source.send", source=self.id,
                            local_seq=self.local_seq,
                            corresponding=self.corresponding)
        self.local_seq += 1
        self.sent += 1
        self._timer.start(self._next_gap())

    def on_message(self, msg: Message) -> None:
        # Sources only ever receive transport acks.
        self.chan.accept(msg)
