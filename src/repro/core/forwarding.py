"""Message-Forwarding (paper §4.2.2).

Two cases, both "reliably forward to the next node of the current node":

* **(A) top ring** — raw messages kept in WQ are forwarded along the
  ring so every top-ring node accumulates every source's raw stream
  (each node can then apply Order-Assignment independently from its own
  token snapshots).  Forwarding stops when the next node is the message's
  *corresponding node* (the message has completed the circle).
* **(B) non-top rings** — ordered messages kept in MQ are forwarded
  along the ring, having been injected at the ring **leader** by the
  parent NE.  Forwarding stops when the next node is the leader.

Forwarding is immediate on receipt ("full speed" in the Theorem 5.1
proof): any received message is forwarded before/independently of local
ordering and delivery work.
"""

from __future__ import annotations

from repro.core.datastructures import BufferedMessage, WQEntry
from repro.core.messages import RingOrdered, RingRaw


class ForwardingMixin:
    """Ring-forwarding behaviour, mixed into NetworkEntity."""

    def _init_forwarding(self) -> None:
        self.raw_forwarded = 0
        self.ordered_forwarded = 0

    # ------------------------------------------------------------------
    # Case A: raw messages around the top ring
    # ------------------------------------------------------------------
    def forward_raw(self, entry: WQEntry) -> None:
        """Forward one WQ entry to the next top-ring node (if it should)."""
        nxt = self.view.next
        if nxt is None or nxt == self.id or nxt == entry.ordering_node:
            return
        self.chan.send(nxt, RingRaw(
            gid=self.cfg.gid,
            ordering_node=entry.ordering_node,
            source=entry.source,
            local_seq=entry.local_seq,
            payload=entry.payload,
            created_at=entry.created_at,
        ))
        self.raw_forwarded += 1

    def handle_ring_raw(self, msg: RingRaw) -> None:
        """A raw message arriving from the previous top-ring node."""
        if not self.view.in_top_ring:
            return
        entry = WQEntry(
            ordering_node=msg.ordering_node,
            source=msg.source,
            local_seq=msg.local_seq,
            payload=msg.payload,
            created_at=msg.created_at,
            arrived_at=self.now,
        )
        if not self.wq.insert(entry):
            return  # duplicate via retransmission or rejoin
        self.forward_raw(entry)

    # ------------------------------------------------------------------
    # Case B: ordered messages around non-top rings
    # ------------------------------------------------------------------
    def forward_ordered(self, bm: BufferedMessage) -> None:
        """Forward one ordered message to the next non-top-ring node."""
        nxt = self.view.next
        if nxt is None or nxt == self.id or nxt == self.view.leader:
            return
        self.chan.send(nxt, RingOrdered(
            gid=self.cfg.gid,
            global_seq=bm.global_seq,
            ordering_node=bm.ordering_node,
            source=bm.source,
            local_seq=bm.local_seq,
            payload=bm.payload,
            created_at=bm.created_at,
        ))
        self.ordered_forwarded += 1

    def handle_ring_ordered(self, msg: RingOrdered) -> None:
        """An ordered message arriving from the previous ring node."""
        bm = BufferedMessage(
            global_seq=msg.global_seq,
            source=msg.source,
            local_seq=msg.local_seq,
            ordering_node=msg.ordering_node,
            payload=msg.payload,
            created_at=msg.created_at,
            ordered_at=self.now,
        )
        if not self.mq.insert(bm):
            return  # duplicate
        self.forward_ordered(bm)
        self.try_deliver()
