"""Token-Regeneration and Multiple-Token resolution (paper §4.2.1).

**Token-Loss.** The membership protocol cannot know the multicast
protocol's internals, so on topology maintenance it simply signals
*Token-Loss might have happened* to the multicast layer.  Each top-ring
node then runs the Token-Regeneration algorithm exactly as the paper
specifies:

* a node whose Message-Ordering "runs well" (it saw the token recently)
  ignores the signal;
* otherwise it originates a :class:`TokenRegen` message encapsulating its
  ``NewOrderingToken`` snapshot and sends it along the next link;
* each traversed node: destroys the message if its own ordering runs
  well; re-encapsulates its own snapshot if that snapshot's
  ``NextGlobalSeqNo`` is *greater* than the message's; otherwise it
  becomes the restart point — it regenerates a live OrderingToken from
  the encapsulated snapshot (with a fresh ``token_id`` epoch) and resumes
  Message-Ordering.

**Multiple-Token.** When top rings merge, the membership layer signals
*Multiple-Token*.  Every node holding a live token advertises it with a
ring-circulating :class:`TokenAnnounce`; all nodes deterministically rank
announcements by ``(NextGlobalSeqNo, token_id)`` and record every token
except the maximum in a **kill set** — a token whose id is in the kill
set is destroyed at its next hop (see ``OrderingMixin.handle_token``), so
exactly one token survives.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.messages import TokenAnnounce, TokenPass, TokenRegen
from repro.core.token import OrderingToken

#: A node considers its Message-Ordering "running well" when it saw the
#: token within this many expected rotation times.
RUNS_WELL_ROTATIONS = 2.0


class TokenRecoveryMixin:
    """Top-ring token fault handling, mixed into NetworkEntity."""

    def _init_token_recovery(self) -> None:
        self.regen_epoch = 0
        self.tokens_regenerated = 0
        self._announced: Dict[Tuple[int, str], int] = {}
        self.announce_round = 0
        #: While now < quiesce_until, token holders pass without assigning
        #: or snapshotting (Multiple-Token resolution in progress): a
        #: doomed token must not mint conflicting global sequences during
        #: the window in which the kill set is still propagating.
        self.quiesce_until: float = -1.0

    # ------------------------------------------------------------------
    # "Runs well" predicate
    # ------------------------------------------------------------------
    def ordering_runs_well(self) -> bool:
        """Token seen recently relative to the expected rotation time."""
        if self.held_token is not None:
            return True
        if self.last_token_seen < 0:
            return False
        expected_rotation = self.expected_token_rotation()
        return (self.now - self.last_token_seen) <= RUNS_WELL_ROTATIONS * expected_rotation

    def expected_token_rotation(self) -> float:
        """Rough T_order estimate from ring size, hold time, and RTT."""
        r = max(2, self.ring_size_hint)
        per_hop = self.cfg.token_hold_time + self.cfg.rto / 4.0
        return r * per_hop

    # ------------------------------------------------------------------
    # Token-Loss signal (from the membership protocol)
    # ------------------------------------------------------------------
    def signal_token_loss(self) -> None:
        """Paper: membership sends a Token-Loss message on maintenance."""
        if not self.view.in_top_ring:
            return
        if self.ordering_runs_well():
            return
        snapshot = self._best_snapshot()
        nxt = self.view.next
        if nxt is None or nxt == self.id:
            # Singleton ring: restart immediately.
            self._restart_with(snapshot)
            return
        self.chan.send(nxt, TokenRegen(self.cfg.gid, self.id, snapshot))
        self.sim.trace.emit(self.now, "token.regen_originated", node=self.id,
                            next_gseq=snapshot.next_global_seq)

    def handle_token_regen(self, msg: TokenRegen) -> None:
        """One traversal step of the Token-Regeneration message."""
        if not self.view.in_top_ring:
            return
        if self.ordering_runs_well():
            # Destroy the message: a live token exists after all.
            self.sim.trace.emit(self.now, "token.regen_destroyed", node=self.id)
            return
        mine = self._best_snapshot()
        if mine.next_global_seq > msg.snapshot.next_global_seq:
            # Our knowledge is fresher: re-encapsulate and continue.
            if msg.origin == self.id or self.view.next in (None, self.id):
                self._restart_with(mine)
                return
            self.chan.send(self.view.next,
                           TokenRegen(self.cfg.gid, msg.origin, mine))
            return
        # Current node is the restart point with the encapsulated snapshot.
        self._restart_with(msg.snapshot)

    def _best_snapshot(self) -> OrderingToken:
        if self.new_token is not None:
            return self.new_token.snapshot()
        return OrderingToken(gid=self.cfg.gid, token_id=(0, self.id))

    def _restart_with(self, snapshot: OrderingToken) -> None:
        """Regenerate a live token from a snapshot and resume ordering."""
        self.regen_epoch += 1
        self.tokens_regenerated += 1
        token = snapshot.snapshot()
        token.token_id = (self.regen_epoch, self.id)
        self.sim.trace.emit(self.now, "token.regenerated", node=self.id,
                            next_gseq=token.next_global_seq,
                            token_id=token.token_id)
        self.handle_token(TokenPass(token))

    # ------------------------------------------------------------------
    # Multiple-Token signal (from the membership protocol, on ring merge)
    # ------------------------------------------------------------------
    @property
    def quiescing(self) -> bool:
        """True while Multiple-Token resolution suspends assignment."""
        return self.now < self.quiesce_until

    def signal_multiple_token(self) -> None:
        """Advertise any held token so the merged ring can pick one."""
        if not self.view.in_top_ring:
            return
        self.announce_round += 1
        self._announced.clear()
        # Suspend assignment long enough for every announcement to make a
        # full circle and the kill set to settle everywhere.
        self.quiesce_until = self.now + 2.0 * self.expected_token_rotation()
        if self.held_token is None:
            return
        self.announce_token(self.held_token)

    def announce_token(self, token: OrderingToken) -> None:
        """Circulate a TokenAnnounce for a live token (resolution input)."""
        self._announced[token.token_id] = token.next_global_seq
        self._recompute_kill_set()
        nxt = self.view.next
        if nxt is None or nxt == self.id:
            return
        self.chan.send(nxt, TokenAnnounce(
            self.cfg.gid, self.id, token.token_id,
            token.next_global_seq, hops_left=2 * max(2, self.ring_size_hint),
        ))

    def _recompute_kill_set(self) -> None:
        """Rank known tokens; everything but the maximum dies."""
        if not self._announced:
            return
        winner = max(self._announced.items(), key=lambda kv: (kv[1], kv[0]))
        for tid in self._announced:
            if tid != winner[0]:
                self.killed_token_ids.add(tid)
        if (self.held_token is not None
                and self.held_token.token_id in self.killed_token_ids):
            self.sim.trace.emit(self.now, "token.destroyed", node=self.id,
                                token_id=self.held_token.token_id)
            self.held_token = None
            if self._pass_timer is not None:
                self._pass_timer.stop()

    def handle_token_announce(self, msg: TokenAnnounce) -> None:
        """Collect announcements; destroy every token but the maximum."""
        if not self.view.in_top_ring:
            return
        known = self._announced.get(msg.token_id)
        if known is None or msg.next_global_seq > known:
            self._announced[msg.token_id] = msg.next_global_seq
        self._recompute_kill_set()
        if msg.hops_left > 0 and self.view.next not in (None, self.id, msg.origin):
            self.chan.send(self.view.next, TokenAnnounce(
                msg.gid, msg.origin, msg.token_id,
                msg.next_global_seq, msg.hops_left - 1,
            ))
