"""Message-Delivering (paper §4.2.3).

Moves ordered messages **down** the hierarchy: from each NE's MQ to its
children (case A: tree links to child NEs — the leaders of lower rings
and the APs) and from bottom APs to their attached MHs (case B: the
wireless hop), "even in handoffs".

Mechanics:

* per-child delivery is **in global-sequence order** with a sliding
  window of unacked messages (``cfg.delivery_window``); the reliable
  channel's ack feeds the WT (max delivered per child), and its give-up
  feeds the best-effort rule — a message the channel abandoned is
  *counted* delivered to that child (the child recovers via local-scope
  retransmission or tombstones it as really lost);
* a message becomes ``Delivered`` at this NE once **all** children have
  it (paper: WT computes "the maximal global sequence number of the
  message which has been delivered to either all the children nodes ...
  or all the attached MHs"); the MQ ``Front`` pointer then advances and
  pruning keeps ``mq_retention`` delivered messages behind ``ValidFront``
  for handoff catch-up;
* an NE with **no** children considers every buffered message delivered
  (nothing to wait for) — this keeps leaf APs with no attached members
  from buffering forever.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.address import NodeId, tier_of
from repro.core.datastructures import BufferedMessage
from repro.core.messages import DeliverDown, RingOrdered, WirelessDeliver


class DeliveringMixin:
    """Downward delivery behaviour, mixed into NetworkEntity."""

    def _init_delivering(self) -> None:
        self._next_send: Dict[NodeId, int] = {}
        self._in_flight: Dict[NodeId, int] = {}
        self.delivered_to_children = 0
        self.delivery_give_ups = 0

    # ------------------------------------------------------------------
    # Child registry
    # ------------------------------------------------------------------
    def register_child(self, child: NodeId, from_seq: Optional[int] = None) -> None:
        """Start delivering to ``child`` for messages after ``from_seq``.

        ``from_seq=None`` means "from my current front" — the natural
        baseline for a freshly attached child or reserved path.
        """
        base = self.mq.front if from_seq is None else from_seq
        self.wt.add_child(child, base)
        self._next_send[child] = base + 1
        self._in_flight[child] = 0
        self.try_deliver()

    def unregister_child(self, child: NodeId) -> None:
        """Stop delivering to ``child`` (leave, handoff away, failure)."""
        self.wt.remove_child(child)
        self._next_send.pop(child, None)
        self._in_flight.pop(child, None)
        self.chan.cancel_all(child)
        self._after_delivery_progress()

    def has_child(self, child: NodeId) -> bool:
        """Whether ``child`` is currently registered for delivery."""
        return child in self.wt

    # ------------------------------------------------------------------
    # The delivery loop
    # ------------------------------------------------------------------
    def try_deliver(self) -> None:
        """Push in-order messages to every child up to the window limit."""
        window = self.cfg.delivery_window
        for child in self.wt.children:
            in_flight = self._in_flight.get(child, 0)
            while in_flight < window:
                seq = self._next_send[child]
                bm = self.mq.get(seq)
                if bm is None:
                    if seq < self.mq.valid_front:
                        # Unserveable forever (pruned / before this NE's
                        # time): count it delivered and let the child's
                        # gap machinery tombstone it.
                        self.wt.record_delivered(child, seq)
                        self._next_send[child] = seq + 1
                        continue
                    break  # not yet ordered/received here, or a hole
                if bm.really_lost:
                    # Nothing to send; the loss tombstone counts as
                    # delivered for this child too.
                    self.wt.record_delivered(child, seq)
                    self._next_send[child] = seq + 1
                    continue
                self.chan.send(child, self._wrap_for(child, bm))
                in_flight += 1
                self._in_flight[child] = in_flight
                self._next_send[child] = seq + 1
        self._after_delivery_progress()

    def _wrap_for(self, child: NodeId, bm: BufferedMessage) -> RingOrdered:
        cls = WirelessDeliver if tier_of(child) == "mh" else DeliverDown
        return cls(
            gid=self.cfg.gid,
            global_seq=bm.global_seq,
            ordering_node=bm.ordering_node,
            source=bm.source,
            local_seq=bm.local_seq,
            payload=bm.payload,
            created_at=bm.created_at,
        )

    # ------------------------------------------------------------------
    # Channel callbacks (wired by NetworkEntity)
    # ------------------------------------------------------------------
    def _delivery_acked(self, child: NodeId, msg: RingOrdered) -> None:
        if child in self.wt:
            self.wt.record_delivered(child, msg.global_seq)
            self._in_flight[child] = max(0, self._in_flight.get(child, 1) - 1)
            self.delivered_to_children += 1
        self.try_deliver()

    def _delivery_gave_up(self, child: NodeId, msg: RingOrdered) -> None:
        # Best-effort: count as delivered; the child's own gap recovery
        # (or loss tombstoning) takes it from here.
        self.delivery_give_ups += 1
        self.sim.trace.emit(self.now, "deliver.give_up", node=self.id,
                            child=child, gseq=msg.global_seq)
        if child in self.wt:
            self.wt.record_delivered(child, msg.global_seq)
            self._in_flight[child] = max(0, self._in_flight.get(child, 1) - 1)
        self.try_deliver()

    # ------------------------------------------------------------------
    # Front advancement + pruning
    # ------------------------------------------------------------------
    def _after_delivery_progress(self) -> None:
        if len(self.wt) == 0:
            # No children: everything buffered is trivially delivered.
            horizon = self.mq.rear
        else:
            m = self.wt.min_delivered_across()
            horizon = m if m is not None else self.mq.front
        advanced = False
        seq = self.mq.front + 1
        while seq <= horizon:
            bm = self.mq.get(seq)
            if bm is None:
                break  # hole: gap recovery will fill or tombstone it
            if not bm.delivered:
                self.mq.mark_delivered(seq, self.now)
                self.sim.trace.emit(self.now, "ne.delivered", node=self.id,
                                    gseq=seq)
            advanced = True
            seq += 1
        if advanced:
            self.mq.advance_front()
            self.mq.prune(self.cfg.mq_retention)
