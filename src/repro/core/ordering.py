"""Message-Ordering and Order-Assignment (paper §4.2.1).

Run only by NEs in the **top logical ring**.  Responsibilities:

* accept raw messages from this node's multicast source into WQ and
  track the contiguous run of not-yet-ordered local sequence numbers
  (``MinLocalSeqNo`` / ``MaxLocalSeqNo``);
* when holding the OrderingToken, stamp that run into the token's WTSNP
  (assigning global sequence numbers) and keep a snapshot pair
  (``NewOrderingToken`` shifting to ``OldOrderingToken``), then pass the
  token to the next ring node over the reliable channel;
* periodically (cycle τ) run **Order-Assignment**: match WQ entries
  against the two retained snapshots, copy matched messages into MQ with
  their global sequence numbers, and hand them to Message-Delivering.

A fidelity note on pre-assignment: the paper says the token "pre-assigns"
global numbers and a separate Order-Assignment algorithm "really"
assigns them; both read the same WTSNP data, so the split here is the
same — assignment happens at token-hold time (mutating the token), and
application to MQ happens on the τ timer from snapshots.
"""

from __future__ import annotations

from typing import Optional

from repro.core.datastructures import BufferedMessage, WQEntry
from repro.core.messages import RingRaw, SourceData, TokenPass
from repro.core.token import OrderingToken


class OrderingMixin:
    """Top-ring ordering behaviour, mixed into NetworkEntity."""

    # ------------------------------------------------------------------
    # State (initialized by NetworkEntity.__init__ via _init_ordering)
    # ------------------------------------------------------------------
    def _init_ordering(self) -> None:
        # Two retained token snapshots (paper: New/Old OrderingToken).
        self.new_token: Optional[OrderingToken] = None
        self.old_token: Optional[OrderingToken] = None
        # Contiguously received, not yet ordered run of own-source seqs.
        self.next_unordered_local: int = 0
        # The token currently held (None while it is elsewhere/in flight).
        self.held_token: Optional[OrderingToken] = None
        self._pass_timer = None  # armed while holding
        self.last_token_seen: float = -1.0
        self.last_token_id = None
        self.tokens_held: int = 0
        self.messages_ordered: int = 0
        # Wall of the current hold's start (sim ms; -1 while not holding).
        self._hold_started: float = -1.0
        # Hoisted obs instruments for the token-hold hot path (the hold
        # handler fires for a double-digit share of all events, so the
        # per-call registry probes are cached per attached registry).
        self._obs_cache: Optional[tuple] = None
        # Multiple-Token kill set: token ids ruled dead by resolution.
        self.killed_token_ids: set = set()
        # Test-only fault hook: while positive, _pass_token silently
        # drops the token instead of sending it (models token loss with
        # no accompanying topology change, so no recovery signal fires).
        # Mutation tests use it to prove the validation monitors catch a
        # protocol that stops ordering.
        self._test_drop_token_passes: int = 0

    # ------------------------------------------------------------------
    # Source intake
    # ------------------------------------------------------------------
    def handle_source_data(self, msg: SourceData) -> None:
        """A raw message from this node's own multicast source."""
        if not self.view.in_top_ring:
            # Mis-addressed source; NEs outside the top ring do not order.
            return
        entry = WQEntry(
            ordering_node=self.id,
            source=msg.source,
            local_seq=msg.local_seq,
            payload=msg.payload,
            created_at=msg.created_at,
            arrived_at=self.now,
        )
        if not self.wq.insert(entry):
            return  # duplicate
        self.sim.trace.emit(self.now, "wq.insert", node=self.id,
                            local_seq=msg.local_seq)
        self.forward_raw(entry)

    def _max_contiguous_pending(self) -> int:
        """Largest L so own-source local seqs [next_unordered, L] are all
        in WQ; returns next_unordered-1 when none are."""
        stream = self.wq.stream(self.id)
        seq = self.next_unordered_local
        while seq in stream:
            seq += 1
        return seq - 1

    # ------------------------------------------------------------------
    # Token handling
    # ------------------------------------------------------------------
    def handle_token(self, msg: TokenPass) -> None:
        """Receive the OrderingToken: assign, snapshot, schedule the pass."""
        token = msg.token
        if token.token_id in self.killed_token_ids:
            # Multiple-Token resolution ruled this token dead.
            self.sim.trace.emit(self.now, "token.destroyed", node=self.id,
                                token_id=token.token_id)
            return
        # Self-detection of the Multiple-Token problem: a token with a
        # different identity arriving while the previous token is still
        # "live" (seen within the runs-well window) means two tokens
        # coexist — e.g. a ring merge raced ahead of the membership
        # protocol's signal.  Quiesce immediately and announce both
        # identities so resolution can kill the lesser lineage *before*
        # it mints conflicting global sequence numbers here.
        if (self.last_token_id is not None
                and token.token_id != self.last_token_id
                and self.last_token_seen >= 0
                and self.now - self.last_token_seen
                    <= 2.0 * self.expected_token_rotation()):
            self.quiesce_until = max(
                self.quiesce_until,
                self.now + 2.0 * self.expected_token_rotation(),
            )
            if (self.new_token is not None
                    and self.new_token.token_id == self.last_token_id
                    and self.last_token_id not in self._announced):
                self.announce_token(self.new_token)

        self.last_token_seen = self.now
        self.last_token_id = token.token_id
        self.tokens_held += 1
        self.held_token = token
        self._hold_started = self.now
        obs = self.sim.obs
        oc = None
        if obs is not None:
            oc = self._obs_cache
            if oc is None or oc[0] is not obs:
                oc = self._obs_cache = (
                    obs,
                    obs.counter("token.holds"),
                    obs.hist("token.assign_run"),
                    obs.gauge("token.wtsnp_peak"),
                    obs.hist("token.hold_ms"),
                    obs.counter("token.wtsnp_pruned"),
                )
            oc[1].value += 1

        if self.quiescing:
            # Multiple-Token resolution in progress: announce this token
            # (it may have been in flight when the signal arrived), but
            # neither assign nor snapshot — a doomed token must not mint
            # global sequences that the surviving one will mint again.
            if token.token_id not in self._announced:
                self.announce_token(token)
            if self._pass_timer is None:
                self._pass_timer = self.timer(self._pass_token)
            self._pass_timer.start(self.cfg.token_hold_time)
            return

        # Assign global seqs to the contiguous pending run of own messages.
        max_contig = self._max_contiguous_pending()
        if max_contig >= self.next_unordered_local:
            token.assign(
                source=self._source_of(),
                ordering_node=self.id,
                min_local=self.next_unordered_local,
                max_local=max_contig,
                ttl_hops=self._wtsnp_ttl(),
            )
            if oc is not None:
                oc[2].observe(max_contig - self.next_unordered_local + 1)
            self.next_unordered_local = max_contig + 1

        # Keep at most two versions of the most recently acquired token.
        self.old_token = self.new_token
        self.new_token = token.snapshot()

        pruned = token.age()
        if oc is not None:
            if pruned:
                oc[5].value += pruned
            g = oc[3]
            depth = len(token.wtsnp)
            if depth > g.max:
                g.max = depth
                g.value = depth
        self.sim.trace.emit(self.now, "token.hold", node=self.id,
                            next_gseq=token.next_global_seq,
                            token_id=token.token_id)
        # Pass after the processing/hold time.
        if self._pass_timer is None:
            self._pass_timer = self.timer(self._pass_token)
        self._pass_timer.start(self.cfg.token_hold_time)

    def _pass_token(self) -> None:
        token = self.held_token
        if token is None:
            return
        self.held_token = None
        obs = self.sim.obs
        if obs is not None and self._hold_started >= 0:
            oc = self._obs_cache
            if oc is not None and oc[0] is obs:
                oc[4].observe(self.now - self._hold_started)
            else:
                obs.observe("token.hold_ms", self.now - self._hold_started)
        self._hold_started = -1.0
        if self._test_drop_token_passes > 0:
            self._test_drop_token_passes -= 1
            self.sim.trace.emit(self.now, "test.token_dropped", node=self.id,
                                token_id=token.token_id)
            return
        nxt = self.view.next
        if nxt is None or nxt == self.id:
            # Singleton ring: immediately re-hold after a hold cycle.
            self.sim.schedule(self.cfg.token_hold_time,
                              self.handle_token, TokenPass(token))
            return
        self.chan.send(nxt, TokenPass(token))
        self.sim.trace.emit(self.now, "token.pass", node=self.id, to=nxt,
                            token_id=token.token_id)

    def _wtsnp_ttl(self) -> int:
        # At least two full rotations plus slack, so every node's retained
        # snapshots cover every entry (see token.py module docs).
        ring_size = max(2, self.ring_size_hint)
        return max(self.cfg.wtsnp_ttl_hops, 3 * ring_size)

    # ------------------------------------------------------------------
    # Order-Assignment (τ-periodic)
    # ------------------------------------------------------------------
    def order_assignment(self) -> int:
        """Copy orderable WQ entries into MQ; returns how many moved."""
        if self.new_token is None and self.old_token is None:
            return 0
        # Stability guard: while this node still holds the token, the
        # mints of the current hold exist only here and in the held
        # token itself.  Applying them now and then crashing re-mints
        # those global sequence numbers after Token-Regeneration (the
        # best surviving snapshot predates them) — an application-
        # visible agreement violation found by the conformance fuzzer.
        # Deferring the newest snapshot until the token has moved on
        # guarantees at least one other node's retained snapshot covers
        # every gseq this node ever applies.
        new_token = None if self.held_token is not None else self.new_token
        obs = self.sim.obs
        moved = 0
        for ordering_node, stream in list(self.wq.streams()):
            if not stream:
                continue
            for local_seq in sorted(stream):
                entry = stream[local_seq]
                covering = None
                if new_token is not None:
                    covering = new_token.lookup(ordering_node, local_seq)
                if covering is None and self.old_token is not None:
                    covering = self.old_token.lookup(ordering_node, local_seq)
                if covering is None:
                    continue
                gseq = covering.global_for(local_seq)
                bm = BufferedMessage(
                    global_seq=gseq,
                    source=entry.source,
                    local_seq=local_seq,
                    ordering_node=ordering_node,
                    payload=entry.payload,
                    created_at=entry.created_at,
                    ordered_at=self.now,
                )
                del stream[local_seq]
                if self.mq.insert(bm):
                    moved += 1
                    self.messages_ordered += 1
                    if obs is not None:
                        obs.observe("ordering.assign_latency_ms",
                                    self.now - entry.created_at)
                    self.sim.trace.emit(
                        self.now, "ordered", node=self.id, gseq=gseq,
                        ordering_node=ordering_node, local_seq=local_seq,
                        created_at=entry.created_at,
                    )
        if moved:
            if obs is not None:
                obs.inc("ordering.assigned", moved)
            self.try_deliver()
        return moved

    # ------------------------------------------------------------------
    # Hooks the composing class provides
    # ------------------------------------------------------------------
    def _source_of(self) -> str:
        """Id of the multicast source corresponding to this node."""
        return getattr(self, "source_id", None) or self.id
