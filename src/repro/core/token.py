"""The OrderingToken and its working table of sequence-number pairs.

Paper §4.1, "Data Structure of Tokens": the token carries the group id,
``NextGlobalSeqNo``, and the ``WTSNP`` — a table of
``(SourceNode, MinLocalSeqNo, MaxLocalSeqNo, OrderingNode,
MinGlobalSeqNo, MaxGlobalSeqNo)`` entries, each recording that a
contiguous run of one source's local sequence numbers was assigned a
contiguous run of global sequence numbers.

Entries age out after a bounded number of token hops.  The Order-
Assignment algorithm only ever consults a node's two retained snapshots
(New/Old OrderingToken), and a node refreshes its snapshot every full
rotation, so a TTL of ≥ 2 rotations guarantees no node misses an entry;
:meth:`OrderingToken.assign` stamps new entries with the configured TTL
and :meth:`OrderingToken.age` decrements on every hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.address import NodeId


@dataclass
class WTSNPEntry:
    """One ordered run: local seqs [min_local, max_local] of ``source``
    were assigned global seqs [min_global, max_global] by ``ordering_node``."""

    source: NodeId
    min_local: int
    max_local: int
    ordering_node: NodeId
    min_global: int
    max_global: int
    ttl_hops: int = 64

    def covers(self, ordering_node: NodeId, local_seq: int) -> bool:
        """Whether this entry orders (ordering_node, local_seq)."""
        return (
            self.ordering_node == ordering_node
            and self.min_local <= local_seq <= self.max_local
        )

    def global_for(self, local_seq: int) -> int:
        """Global seq assigned to ``local_seq`` (caller checked covers())."""
        return self.min_global + (local_seq - self.min_local)

    @property
    def count(self) -> int:
        """Number of messages this entry orders."""
        return self.max_local - self.min_local + 1


@dataclass
class OrderingToken:
    """The token circulating the top logical ring.

    ``token_id`` distinguishes regenerated tokens for the Multiple-Token
    rule: ``(epoch, origin)`` where epoch increments at each regeneration.
    """

    gid: str
    next_global_seq: int = 0
    wtsnp: List[WTSNPEntry] = field(default_factory=list)
    token_id: Tuple[int, NodeId] = (0, "")
    hops: int = 0

    # ------------------------------------------------------------------
    def assign(
        self,
        source: NodeId,
        ordering_node: NodeId,
        min_local: int,
        max_local: int,
        ttl_hops: int = 64,
    ) -> WTSNPEntry:
        """Assign global seqs to local run [min_local, max_local].

        Returns the new WTSNP entry; ``next_global_seq`` advances by the
        run length.  This is the *only* operation that mints global
        sequence numbers, which is what makes the order total.
        """
        if max_local < min_local:
            raise ValueError(f"empty run [{min_local}, {max_local}]")
        n = max_local - min_local + 1
        entry = WTSNPEntry(
            source=source,
            min_local=min_local,
            max_local=max_local,
            ordering_node=ordering_node,
            min_global=self.next_global_seq,
            max_global=self.next_global_seq + n - 1,
            ttl_hops=ttl_hops,
        )
        self.wtsnp.append(entry)
        self.next_global_seq += n
        return entry

    def age(self) -> int:
        """One token hop: decrement entry TTLs and prune the expired.

        Returns the number of entries pruned on this hop.
        """
        self.hops += 1
        for e in self.wtsnp:
            e.ttl_hops -= 1
        if self.wtsnp and self.wtsnp[0].ttl_hops <= 0:
            before = len(self.wtsnp)
            self.wtsnp = [e for e in self.wtsnp if e.ttl_hops > 0]
            return before - len(self.wtsnp)
        return 0

    def lookup(self, ordering_node: NodeId, local_seq: int) -> Optional[WTSNPEntry]:
        """Find the entry covering (ordering_node, local_seq), if any."""
        for e in self.wtsnp:
            if e.covers(ordering_node, local_seq):
                return e
        return None

    def snapshot(self) -> "OrderingToken":
        """Independent copy kept as a node's New/Old OrderingToken.

        Field-wise rather than ``copy.deepcopy``: a snapshot is taken on
        every token hop and every regeneration, and deepcopy's generic
        memo machinery dominated that hot path.  ``token_id`` is a tuple
        of immutables and safe to share; WTSNP entries are rebuilt so
        later :meth:`age`/:meth:`assign` calls on either copy never
        alias the other.
        """
        return OrderingToken(
            gid=self.gid,
            next_global_seq=self.next_global_seq,
            wtsnp=[
                WTSNPEntry(
                    source=e.source,
                    min_local=e.min_local,
                    max_local=e.max_local,
                    ordering_node=e.ordering_node,
                    min_global=e.min_global,
                    max_global=e.max_global,
                    ttl_hops=e.ttl_hops,
                )
                for e in self.wtsnp
            ],
            token_id=self.token_id,
            hops=self.hops,
        )

    # ------------------------------------------------------------------
    @property
    def entries_by_node(self) -> Dict[NodeId, List[WTSNPEntry]]:
        """WTSNP entries grouped by ordering node (for O(streams) scans)."""
        out: Dict[NodeId, List[WTSNPEntry]] = {}
        for e in self.wtsnp:
            out.setdefault(e.ordering_node, []).append(e)
        return out

    def __len__(self) -> int:
        return len(self.wtsnp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OrderingToken gid={self.gid} next={self.next_global_seq} "
            f"entries={len(self.wtsnp)} id={self.token_id}>"
        )
