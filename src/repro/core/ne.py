"""The Network Entity: one BR, AG, or AP running the RingNet protocol.

A single class covers all three tiers — exactly which algorithms engage
is determined by the node's :class:`~repro.topology.hierarchy.NeighborView`:

* **top-ring NE (BR)** — Message-Ordering (token handling + τ-periodic
  Order-Assignment), raw Message-Forwarding, Message-Delivering to its
  children (AG-ring leaders), token recovery;
* **non-top-ring NE (AG)** — ordered Message-Forwarding around its ring,
  Message-Delivering to its AP children, the MMA table with smooth-
  handoff reservations;
* **bottom NE (AP)** — Message-Delivering to attached MHs over the
  wireless hop, handoff registration/detach handling, path
  (re-)establishment toward candidate AGs, neighbor notification.

Every NE runs the local-scope gap recovery of §4.2.3.

The paper's parallel/distributed claim — "each NE only maintains
information about its possible leader, previous, next, parent, and
children neighbors, and independently decides whether, when, and where
to order, forward, and deliver" — is structural here: the only topology
state an NE holds is its ``view`` (plus candidate-contactor lists), and
every decision is made in local message/timer handlers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import ProtocolConfig
from repro.core.datastructures import MessageQueue, WorkingQueue, WorkingTable
from repro.core.delivering import DeliveringMixin
from repro.core.forwarding import ForwardingMixin
from repro.core.messages import (
    DeliverDown,
    Detach,
    GapRequest,
    GapUnavailable,
    HandoffRegister,
    JoinAck,
    MembershipUpdate,
    NeighborNotify,
    PathReserve,
    RingOrdered,
    RingRaw,
    SourceData,
    TokenAnnounce,
    TokenPass,
    TokenRegen,
)
from repro.core.mma import MMATable
from repro.core.ordering import OrderingMixin
from repro.core.retransmission import GapRecoveryMixin
from repro.core.token_recovery import TokenRecoveryMixin
from repro.net.address import NodeId, tier_of
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.transport import ReliableChannel
from repro.topology.hierarchy import NeighborView


class NetworkEntity(OrderingMixin, ForwardingMixin, DeliveringMixin,
                    GapRecoveryMixin, TokenRecoveryMixin, NetNode):
    """One protocol-running router (BR / AG / AP)."""

    def __init__(
        self,
        fabric: Fabric,
        node_id: NodeId,
        cfg: ProtocolConfig,
        view: NeighborView,
        ring_size_hint: int = 3,
    ):
        NetNode.__init__(self, fabric, node_id)
        self.cfg = cfg
        self.view = view
        self.ring_size_hint = ring_size_hint
        #: Multicast source attached to this (top-ring) NE, if any.
        self.source_id: Optional[NodeId] = None
        #: Nearby APs for smooth-handoff neighbor notification (APs).
        self.nearby_aps: List[NodeId] = []
        #: Candidate parent AGs for path building (APs; from hierarchy).
        self.parent_candidates: List[NodeId] = []

        self.mq = MessageQueue(cfg.mq_capacity)
        self.wq = WorkingQueue(cfg.wq_capacity)
        self.wt = WorkingTable()
        self.mma = MMATable()

        self.chan = ReliableChannel(
            self, rto=cfg.rto, max_retries=cfg.max_retries,
            on_give_up=self._channel_gave_up, on_ack=self._channel_acked,
        )

        self._init_ordering()
        self._init_forwarding()
        self._init_delivering()
        self._init_gap_recovery()
        self._init_token_recovery()

        #: True once this AP has a (reserved or active) path to its AG.
        #: Static mode provisions every AP at build time (Remark 2).
        self.path_established = cfg.static_ap_paths
        #: Joining MHs waiting for a cold AP's first downlink message
        #: (dynamic-path mode only): their JoinAck base is unknown until
        #: the AG's stream starts flowing here.
        self._pending_joins: List[NodeId] = []
        #: Per-MH attachment-epoch bookkeeping.  Registrations and
        #: detaches from the same MH can arrive out of order (handoff
        #: ping-pong inside one RTT, retransmission delays), so the AP
        #: orders them by the MH's attachment epoch: a Detach older than
        #: the latest registration is stale, and a Register at or below
        #: the highest detached epoch describes an attachment already
        #: torn down.  Both races were found by the validation fuzzer.
        self._mh_epoch: dict = {}
        self._mh_detached_epoch: dict = {}

        self._tau_timer = self.periodic(cfg.tau, self._tau_tick)
        self._maint_timer = self.periodic(
            max(cfg.gap_timeout / 2.0, cfg.tau), self._maintenance_tick
        )
        self.started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic tasks (idempotent)."""
        if self.started:
            return
        self.started = True
        if self.view.in_top_ring:
            self._tau_timer.start()
        self._maint_timer.start()

    def stop(self) -> None:
        """Disarm periodic tasks (the node object survives)."""
        self.started = False
        self._tau_timer.stop()
        self._maint_timer.stop()

    def adopt_view(self, view: NeighborView,
                   ring_size_hint: Optional[int] = None) -> None:
        """Structural half of a view update: pointers and ring-size hint.

        No behaviour — safe to run replicated on every shard, which the
        control plane requires: the token-loss signal chain schedules
        itself from :meth:`expected_token_rotation`, so ``ring_size_hint``
        must stay identical across replicas.
        """
        self.view = view
        if ring_size_hint is not None:
            self.ring_size_hint = ring_size_hint

    def update_view(self, view: NeighborView, ring_size_hint: Optional[int] = None) -> None:
        """Adopt new neighbor pointers after a topology change."""
        was_top = self.view.in_top_ring
        self.adopt_view(view, ring_size_hint)
        if self.started and view.in_top_ring and not was_top:
            self._tau_timer.start()

    def _tau_tick(self) -> None:
        self.order_assignment()

    def _maintenance_tick(self) -> None:
        self.gap_check()
        # Expire stale standby reservations (AGs with an MMA population).
        for entry in self.mma.expire_standby(self.now, self.cfg.reservation_ttl):
            self.unregister_child(entry.ap)
            self.sim.trace.emit(self.now, "mma.expired", node=self.id,
                                ap=entry.ap)

    # ------------------------------------------------------------------
    # Channel callbacks
    # ------------------------------------------------------------------
    def _channel_acked(self, dst: NodeId, payload: Message) -> None:
        if isinstance(payload, RingOrdered) and dst in self.wt:
            self._delivery_acked(dst, payload)

    def _channel_gave_up(self, dst: NodeId, payload: Message) -> None:
        if isinstance(payload, RingOrdered) and dst in self.wt:
            self._delivery_gave_up(dst, payload)
        elif isinstance(payload, TokenPass):
            # The token may be lost in transit; membership's maintenance
            # sweep will raise the Token-Loss signal (paper keeps the
            # multicast layer from self-diagnosing this).
            self.sim.trace.emit(self.now, "token.transit_give_up",
                                node=self.id, to=dst)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        payload = self.chan.accept(msg)
        if payload is None:
            return
        if isinstance(payload, SourceData):
            self.handle_source_data(payload)
        elif isinstance(payload, RingRaw):
            self.handle_ring_raw(payload)
        elif isinstance(payload, TokenPass):
            self.handle_token(payload)
        elif isinstance(payload, DeliverDown):
            self._handle_deliver_down(payload)
        elif isinstance(payload, RingOrdered):
            self.handle_ring_ordered(payload)
        elif isinstance(payload, GapRequest):
            self.handle_gap_request(payload)
        elif isinstance(payload, GapUnavailable):
            self.handle_gap_unavailable(payload)
        elif isinstance(payload, HandoffRegister):
            self._ap_handle_register(payload)
        elif isinstance(payload, Detach):
            self._ap_handle_detach(payload)
        elif isinstance(payload, TokenRegen):
            self.handle_token_regen(payload)
        elif isinstance(payload, TokenAnnounce):
            self.handle_token_announce(payload)
        elif isinstance(payload, PathReserve):
            self._ag_handle_path_reserve(payload)
        elif isinstance(payload, NeighborNotify):
            self._ap_handle_neighbor_notify(payload)
        elif isinstance(payload, MembershipUpdate):
            self._relay_membership(payload)

    def _handle_deliver_down(self, msg: DeliverDown) -> None:
        """Ordered message from the parent NE: buffer, ring-inject, deliver."""
        was_cold = not self.path_established
        self.path_established = True
        if (was_cold and self.mq.occupancy == 0
                and self.mq.rear < msg.global_seq - 1):
            # First message over a freshly built path: earlier sequences
            # are before this NE's time, not holes to chase.
            self.mq.anchor(msg.global_seq)
        # A ring leader injects the message into its ring (§4.2.2 case B);
        # handle_ring_ordered covers buffering + forwarding + delivery and
        # degenerates correctly for APs (no ring ⇒ no forward).
        self.handle_ring_ordered(msg)
        if was_cold and self._pending_joins:
            # The path just warmed up: deferred joiners start right
            # before the first message this AP will actually have.
            base = msg.global_seq - 1
            for mh in self._pending_joins:
                self.chan.send(mh, JoinAck(self.cfg.gid, base))
                self.register_child(mh, base)
                self.sim.trace.emit(self.now, "ap.register", node=self.id,
                                    mh=mh, base=base, joining=True)
            self._pending_joins.clear()

    # ------------------------------------------------------------------
    # AP-side behaviour: attachment, handoff, smooth-handoff reservation
    # ------------------------------------------------------------------
    def _ap_handle_register(self, msg: HandoffRegister) -> None:
        """An MH attached to this AP (fresh join or handoff arrival)."""
        mh = msg.mh_guid
        if msg.epoch <= self._mh_detached_epoch.get(mh, -1):
            # A late-arriving registration for an attachment whose
            # Detach this AP already processed: the MH moved on.
            return
        if msg.epoch >= self._mh_epoch.get(mh, 0):
            self._mh_epoch[mh] = msg.epoch
        if msg.joining and not self.path_established:
            # Cold AP (dynamic-path mode): the join completes once the
            # multicast path is built and the stream reaches us.
            if mh not in self._pending_joins:
                self._pending_joins.append(mh)
            self._relay_membership(MembershipUpdate(self.cfg.gid, [mh], [],
                                                    self.id))
            self.ap_ensure_path(active=True)
            if self.cfg.smooth_handoff:
                for ap in self.nearby_aps:
                    self.chan.send(ap, NeighborNotify(self.cfg.gid))
            return
        if msg.joining:
            base = self.mq.front
            self.chan.send(mh, JoinAck(self.cfg.gid, base))
        else:
            base = msg.max_delivered_seq
            if base + 1 < self.mq.valid_front:
                # We can no longer serve part of the MH's catch-up range.
                self.chan.send(
                    mh, GapUnavailable(self.cfg.gid, base + 1,
                                       self.mq.valid_front - 1))
                base = self.mq.valid_front - 1
        self.register_child(mh, base)
        self.sim.trace.emit(self.now, "ap.register", node=self.id, mh=mh,
                            base=base, joining=msg.joining)
        # Membership change propagates toward the top leader (§3).
        self._relay_membership(MembershipUpdate(self.cfg.gid, [mh], [], self.id))
        self.ap_ensure_path(active=True)
        if self.cfg.smooth_handoff:
            for ap in self.nearby_aps:
                self.chan.send(ap, NeighborNotify(self.cfg.gid))

    def _ap_handle_detach(self, msg: Detach) -> None:
        """An MH left this AP (handoff away or group leave)."""
        mh = msg.mh_guid
        if msg.epoch < self._mh_epoch.get(mh, 0):
            # Stale: a delayed retransmission for an attachment this MH
            # already superseded by re-registering here.
            return
        if msg.epoch > self._mh_detached_epoch.get(mh, -1):
            self._mh_detached_epoch[mh] = msg.epoch
        self.unregister_child(mh)
        self.sim.trace.emit(self.now, "ap.detach", node=self.id,
                            mh=msg.mh_guid)
        self._relay_membership(MembershipUpdate(self.cfg.gid, [],
                                                [msg.mh_guid], self.id))
        if not self._has_member_children():
            # Demote our path to a standby reservation.
            parent = self._path_target()
            if parent is not None:
                self.chan.send(parent, PathReserve(self.cfg.gid, self.id,
                                                   active=False))

    def _has_member_children(self) -> bool:
        return any(tier_of(c) == "mh" for c in self.wt.children)

    def _path_target(self) -> Optional[NodeId]:
        if self.view.parent is not None:
            return self.view.parent
        if self.parent_candidates:
            return self.parent_candidates[0]
        return None

    def ap_ensure_path(self, active: bool) -> None:
        """Build/refresh the multicast path toward a candidate AG (§3)."""
        target = self._path_target()
        if target is None:
            return
        self.chan.send(target, PathReserve(self.cfg.gid, self.id, active=active))

    def _ap_handle_neighbor_notify(self, msg: NeighborNotify) -> None:
        """A nearby AP saw a handoff: pre-reserve our own path."""
        if not self.cfg.smooth_handoff:
            return
        if not self.path_established or not self._has_member_children():
            self.ap_ensure_path(active=False)

    # ------------------------------------------------------------------
    # AG-side behaviour: the MMA table
    # ------------------------------------------------------------------
    def _ag_handle_path_reserve(self, msg: PathReserve) -> None:
        """Register/refresh the (group, AP) downlink entry."""
        if msg.active:
            self.mma.activate(msg.gid, msg.ap, self.now)
        else:
            # Standby: create/refresh the entry, then make sure it is
            # demoted — an AP whose last member left must become
            # expirable again.
            self.mma.reserve(msg.gid, msg.ap, self.now)
            self.mma.deactivate(msg.gid, msg.ap, self.now)
        if not self.has_child(msg.ap):
            self.register_child(msg.ap)
            self.sim.trace.emit(self.now, "mma.path_built", node=self.id,
                                ap=msg.ap, active=msg.active)

    # ------------------------------------------------------------------
    # Membership relay (upward propagation, §3)
    # ------------------------------------------------------------------
    def _relay_membership(self, msg: MembershipUpdate) -> None:
        """Propagate membership changes toward the top leader (§3).

        AP → parent AG; non-leader ring NE → its ring leader; ring leader
        → its parent; the top-ring leader consumes the update.
        """
        if self.view.parent is not None and not self.view.in_top_ring:
            # AP, or a ring leader with a parent NE.
            self.chan.send(self.view.parent, MembershipUpdate(
                msg.gid, msg.joins, msg.leaves, msg.origin))
        elif not self.view.is_leader and self.view.next is not None \
                and self.view.next != self.id:
            # Non-leader ring member: hop along the ring toward the
            # leader (an NE only knows its immediate neighbors).
            self.chan.send(self.view.next, MembershipUpdate(
                msg.gid, msg.joins, msg.leaves, msg.origin))
        else:
            # Top-ring leader (or detached node): consume.
            self.sim.trace.emit(self.now, "membership.absorbed",
                                node=self.id, joins=len(msg.joins),
                                leaves=len(msg.leaves))

    # ------------------------------------------------------------------
    def buffer_report(self) -> dict:
        """Occupancy snapshot for the buffer-bound experiments (E3)."""
        return {
            "node": self.id,
            "wq": self.wq.occupancy,
            "wq_peak": self.wq.peak_occupancy,
            "mq": self.mq.occupancy,
            "mq_peak": self.mq.peak_occupancy,
            "mq_front": self.mq.front,
            "mq_rear": self.mq.rear,
        }
