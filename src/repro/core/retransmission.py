"""Local-scope-based retransmission (paper §4.2.3).

The paper divides the hierarchy into local scopes and implements reliable
transmission *within each scope* in a best-effort way: "the immediate
neighbor scope, the single logical ring scope, or the multiple
neighboring logical rings scope".

This mixin implements the immediate-neighbor scope for sequence gaps:

* an NE that observes a persistent hole in its MQ (a global sequence it
  should have by now — something later already arrived — but does not)
  asks its **parent** (non-top NE) or **previous ring node** (top NE)
  to re-deliver the missing range (:class:`GapRequest`);
* the neighbor re-delivers what it still buffers and answers
  :class:`GapUnavailable` for anything pruned or never received;
* after ``gap_max_attempts`` unanswered rounds the NE declares the range
  really lost and tombstones it (``Received=False, Waiting=False`` ⇒
  counted delivered), so ordered delivery never wedges.

The same machinery answers requests from children and handed-off MHs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.address import NodeId, tier_of
from repro.core.messages import DeliverDown, GapRequest, GapUnavailable, WirelessDeliver

#: Gap-fill rounds before tombstoning the range as really lost.
GAP_MAX_ATTEMPTS = 3


class GapRecoveryMixin:
    """Sequence-gap detection and local-scope recovery."""

    def _init_gap_recovery(self) -> None:
        # (first missing seq) -> (first observed at, attempts so far)
        self._gap_state: Optional[Tuple[int, float, int]] = None
        self.gaps_requested = 0
        self.gaps_tombstoned = 0
        self.gap_fills_served = 0

    # ------------------------------------------------------------------
    # Detection (called from the τ/periodic maintenance tick)
    # ------------------------------------------------------------------
    def gap_check(self) -> None:
        """Detect persistent MQ holes and drive the recovery rounds."""
        hole = self._first_hole()
        if hole is None:
            self._gap_state = None
            return
        if self._gap_state is None or self._gap_state[0] != hole:
            self._gap_state = (hole, self.now, 0)
            return
        first_seen_at = self._gap_state[1]
        attempts = self._gap_state[2]
        if self.now - first_seen_at < self.cfg.gap_timeout * (attempts + 1):
            return
        hole_end = self._hole_end(hole)
        if attempts >= GAP_MAX_ATTEMPTS:
            self._tombstone_range(hole, hole_end)
            self._gap_state = None
            return
        target = self._gap_target()
        if target is not None:
            self.chan.send(target, GapRequest(self.cfg.gid, hole, hole_end))
            self.gaps_requested += 1
            self.sim.trace.emit(self.now, "gap.request", node=self.id,
                                to=target, from_seq=hole, to_seq=hole_end)
        self._gap_state = (hole, first_seen_at, attempts + 1)

    def _first_hole(self) -> Optional[int]:
        """First missing seq between front and rear, or None."""
        for seq in range(self.mq.front + 1, self.mq.rear + 1):
            if not self.mq.has(seq):
                return seq
        return None

    def _hole_end(self, start: int) -> int:
        seq = start
        while seq + 1 <= self.mq.rear and not self.mq.has(seq + 1):
            seq += 1
        return seq

    def _gap_target(self) -> Optional[NodeId]:
        """Immediate-neighbor scope: parent, else previous ring node."""
        if self.view.parent is not None:
            return self.view.parent
        if self.view.previous is not None and self.view.previous != self.id:
            return self.view.previous
        return None

    def _tombstone_range(self, from_seq: int, to_seq: int) -> None:
        for seq in range(from_seq, to_seq + 1):
            if not self.mq.has(seq):
                self.mq.tombstone_lost(seq)
                self.gaps_tombstoned += 1
                self.sim.trace.emit(self.now, "ne.tombstone", node=self.id,
                                    gseq=seq)
        self.try_deliver()

    # ------------------------------------------------------------------
    # Serving neighbors' requests
    # ------------------------------------------------------------------
    def handle_gap_request(self, msg: GapRequest) -> None:
        """Re-deliver a buffered range to the requesting neighbor/MH.

        Three cases per sequence number:

        * buffered and received here — re-deliver it;
        * definitely unobtainable here (pruned below ``ValidFront``, or
          tombstoned as really lost) — answer :class:`GapUnavailable`;
        * simply not here *yet* (this NE has the same hole, or the seq is
          beyond its rear) — stay silent; the requester retries later.
        """
        requester = msg.src
        unavailable_from: Optional[int] = None
        wireless = tier_of(requester) == "mh"

        def flush_unavailable(upto: int) -> None:
            nonlocal unavailable_from
            if unavailable_from is not None:
                self.chan.send(requester,
                               GapUnavailable(self.cfg.gid, unavailable_from, upto))
                unavailable_from = None

        for seq in range(msg.from_seq, msg.to_seq + 1):
            bm = self.mq.get(seq)
            if bm is not None and bm.received:
                flush_unavailable(seq - 1)
                cls = WirelessDeliver if wireless else DeliverDown
                self.chan.send(requester, cls(
                    gid=self.cfg.gid,
                    global_seq=bm.global_seq,
                    ordering_node=bm.ordering_node,
                    source=bm.source,
                    local_seq=bm.local_seq,
                    payload=bm.payload,
                    created_at=bm.created_at,
                ))
                self.gap_fills_served += 1
            elif (bm is not None and bm.really_lost) or seq < self.mq.valid_front:
                if unavailable_from is None:
                    unavailable_from = seq
            else:
                # Not here yet either; neither serve nor condemn.
                flush_unavailable(seq - 1)
        flush_unavailable(msg.to_seq)

    def handle_gap_unavailable(self, msg: GapUnavailable) -> None:
        """The neighbor no longer has part of the range: really lost."""
        self._tombstone_range(msg.from_seq, msg.to_seq)
        self._gap_state = None
