"""Wire messages of the RingNet protocol.

Naming follows the algorithms that produce them:

* :class:`SourceData` — multicast source → its corresponding top-ring NE.
* :class:`RingRaw` — raw (not yet ordered) message forwarded along the
  top ring (Message-Forwarding, case A).
* :class:`TokenPass` — the OrderingToken hop (Message-Ordering).
* :class:`RingOrdered` — ordered message forwarded along a non-top ring
  (Message-Forwarding, case B).
* :class:`DeliverDown` — ordered message parent → child
  (Message-Delivering, case A).
* :class:`WirelessDeliver` — ordered message AP → MH
  (Message-Delivering, case B).
* :class:`GapRequest` / (answered with DeliverDown/WirelessDeliver) —
  local-scope retransmission: a child or freshly-handed-off MH asks its
  parent for a missing global-sequence range.
* :class:`HandoffRegister` — MH → new AP on arrival, carrying the MH's
  max contiguously delivered global seq (the AP seeds its WT from it).
* :class:`TokenRegen` — Token-Regeneration message circulating the top
  ring with the freshest surviving token snapshot.
* :class:`TokenAnnounce` — Multiple-Token resolution: a holder advertises
  its live token after a ring merge.
* :class:`PathReserve` — AP → AG multicast path reservation (§3 smooth
  handoff); :class:`NeighborNotify` — AP → nearby APs to trigger it.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.net.address import NodeId
from repro.net.message import Message
from repro.core.token import OrderingToken


class SourceData(Message):
    """A new application message from a multicast source."""

    __slots__ = ("gid", "source", "local_seq", "payload", "created_at")

    def __init__(self, gid: str, source: NodeId, local_seq: int, payload: Any,
                 created_at: float):
        self.gid = gid
        self.source = source
        self.local_seq = local_seq
        self.payload = payload
        self.created_at = created_at


class RingRaw(Message):
    """Raw message circulating the top ring, stamped with its ordering node."""

    __slots__ = ("gid", "ordering_node", "source", "local_seq", "payload",
                 "created_at")

    def __init__(self, gid: str, ordering_node: NodeId, source: NodeId,
                 local_seq: int, payload: Any, created_at: float):
        self.gid = gid
        self.ordering_node = ordering_node
        self.source = source
        self.local_seq = local_seq
        self.payload = payload
        self.created_at = created_at


class TokenPass(Message):
    """The OrderingToken moving to the next top-ring node."""

    size_bits = 512

    __slots__ = ("token",)

    def __init__(self, token: OrderingToken):
        self.token = token


class RingOrdered(Message):
    """An ordered message circulating a non-top ring."""

    __slots__ = ("gid", "global_seq", "ordering_node", "source", "local_seq",
                 "payload", "created_at")

    def __init__(self, gid: str, global_seq: int, ordering_node: NodeId,
                 source: NodeId, local_seq: int, payload: Any, created_at: float):
        self.gid = gid
        self.global_seq = global_seq
        self.ordering_node = ordering_node
        self.source = source
        self.local_seq = local_seq
        self.payload = payload
        self.created_at = created_at


class DeliverDown(RingOrdered):
    """An ordered message flowing down a parent→child tree link."""


class WirelessDeliver(RingOrdered):
    """An ordered message over the AP→MH wireless hop."""


class GapRequest(Message):
    """Ask the sender's parent (or AP) to re-deliver a seq range."""

    size_bits = 256

    __slots__ = ("gid", "from_seq", "to_seq")

    def __init__(self, gid: str, from_seq: int, to_seq: int):
        self.gid = gid
        self.from_seq = from_seq
        self.to_seq = to_seq


class GapUnavailable(Message):
    """Parent's reply when part of a requested range was pruned/never had.

    The requester tombstones the range as really lost so ordered delivery
    can proceed (best-effort reliability, §4.2.3).
    """

    size_bits = 256

    __slots__ = ("gid", "from_seq", "to_seq")

    def __init__(self, gid: str, from_seq: int, to_seq: int):
        self.gid = gid
        self.from_seq = from_seq
        self.to_seq = to_seq


class HandoffRegister(Message):
    """MH announces itself to a new AP after a handoff (or initial join).

    ``epoch`` is the MH's attachment epoch (its LUID counter): every
    attach increments it, so an AP can order registrations and detaches
    from the same MH even when retransmission delays them.
    """

    size_bits = 256

    __slots__ = ("gid", "mh_guid", "max_delivered_seq", "joining", "epoch")

    def __init__(self, gid: str, mh_guid: NodeId, max_delivered_seq: int,
                 joining: bool = False, epoch: int = 0):
        self.gid = gid
        self.mh_guid = mh_guid
        self.max_delivered_seq = max_delivered_seq
        self.joining = joining
        self.epoch = epoch


class JoinAck(Message):
    """AP → MH: your membership starts after global seq ``base_seq``."""

    size_bits = 128

    __slots__ = ("gid", "base_seq")

    def __init__(self, gid: str, base_seq: int):
        self.gid = gid
        self.base_seq = base_seq


class Detach(Message):
    """MH tells its old AP it is leaving (clean handoff or group leave).

    ``epoch`` names the attachment being torn down; an AP ignores a
    Detach older than its latest registration from the same MH, so a
    retransmission-delayed Detach can never cancel a newer attachment.
    """

    size_bits = 128

    __slots__ = ("gid", "mh_guid", "epoch")

    def __init__(self, gid: str, mh_guid: NodeId, epoch: int = 0):
        self.gid = gid
        self.mh_guid = mh_guid
        self.epoch = epoch


class TokenRegen(Message):
    """Token-Regeneration message carrying the freshest token snapshot."""

    size_bits = 512

    __slots__ = ("gid", "origin", "snapshot")

    def __init__(self, gid: str, origin: NodeId, snapshot: OrderingToken):
        self.gid = gid
        self.origin = origin
        self.snapshot = snapshot


class TokenAnnounce(Message):
    """Multiple-Token resolution: advertise a live token around the ring."""

    size_bits = 256

    __slots__ = ("gid", "origin", "token_id", "next_global_seq", "hops_left")

    def __init__(self, gid: str, origin: NodeId, token_id: tuple,
                 next_global_seq: int, hops_left: int):
        self.gid = gid
        self.origin = origin
        self.token_id = token_id
        self.next_global_seq = next_global_seq
        self.hops_left = hops_left


class PathReserve(Message):
    """AP asks an AG to set up / refresh a multicast path entry (MMA).

    ``active=True`` means a group member is attached behind the AP (the
    entry must stay); ``active=False`` is a smooth-handoff standby
    reservation that may expire after ``cfg.reservation_ttl``.
    """

    size_bits = 256

    __slots__ = ("gid", "ap", "active")

    def __init__(self, gid: str, ap: NodeId, active: bool = True):
        self.gid = gid
        self.ap = ap
        self.active = active


class NeighborNotify(Message):
    """AP tells nearby APs to pre-reserve paths (smooth handoff, §3)."""

    size_bits = 256

    __slots__ = ("gid",)

    def __init__(self, gid: str):
        self.gid = gid


class MembershipUpdate(Message):
    """Batched membership changes propagating toward the top leader."""

    size_bits = 512

    __slots__ = ("gid", "joins", "leaves", "origin")

    def __init__(self, gid: str, joins: List[NodeId], leaves: List[NodeId],
                 origin: NodeId):
        self.gid = gid
        self.joins = joins
        self.leaves = leaves
        self.origin = origin
