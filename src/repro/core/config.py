"""Protocol configuration.

All tunables of §4 and §5 live here so experiments can sweep them:

* ``tau`` — the Order-Assignment timer cycle τ (§4.2.1 / Theorem 5.1).
* ``token_hold_time`` — processing time at each token holder; together
  with link latency this determines ``T_order`` (token round-trip).
* ``delivery_window`` — outstanding unacked messages per child; the
  paper's "full speed" delivery corresponds to a window large enough to
  never block on acks.
* ``mq_retention`` — how many already-delivered messages an NE keeps
  behind ``ValidFront`` for handoff catch-up (§4.1's ValidFront is
  "reserved for APs/AGs/BRs only").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables for one RingNet protocol instance.

    Time values use the repo-wide unit (milliseconds).
    """

    #: Group identity (paper: GID; e.g. an IP multicast class-D address).
    gid: str = "224.0.1.1"

    #: Order-Assignment timer cycle τ.
    tau: float = 5.0

    #: Processing time a token holder spends before passing the token.
    token_hold_time: float = 0.5

    #: Retransmission timeout for all reliable channels.
    rto: float = 25.0

    #: Retransmissions before a message is declared really lost.
    max_retries: int = 5

    #: Max unacked ordered messages outstanding per child/MH.
    delivery_window: int = 16

    #: MQ capacity (MaxNo).  0 means unbounded (we then only *measure*
    #: occupancy; Theorem 5.1 predicts what a bound could safely be).
    mq_capacity: int = 0

    #: WQ per-source capacity.  0 means unbounded, as above.
    wq_capacity: int = 0

    #: Delivered messages retained behind ValidFront for handoff catch-up.
    mq_retention: int = 256

    #: WTSNP entry lifetime in token hops (pruned afterwards).  Must be at
    #: least 2× the top-ring size so every node sees each entry in one of
    #: its two retained snapshots; the builder enforces this at runtime.
    wtsnp_ttl_hops: int = 64

    #: Enable the MMA path-reservation smooth-handoff optimisation (§3).
    smooth_handoff: bool = True

    #: When True (Remark 2's "manually and statically configure" mode),
    #: every AP is provisioned as a delivery child of its AG at build
    #: time and is always receiving the group.  When False (dynamic
    #: group mode, §3's path building), an AP only joins the delivery
    #: tree when a member registers behind it or a smooth-handoff
    #: reservation warms it — the regime where reservations matter.
    static_ap_paths: bool = True

    #: Wireless delivery retransmission timeout (AP→MH channels).
    wireless_rto: float = 30.0

    #: How long a sequence gap may persist before local-scope recovery
    #: (GapRequest to parent / previous node) kicks in.
    gap_timeout: float = 60.0

    #: How long an AP path reservation stays warm with no attached member.
    reservation_ttl: float = 2000.0

    #: Keep the per-MH application delivery log ((gseq, payload, latency)
    #: tuples).  Observer state only — the delivery *count* is tracked
    #: regardless — so the big scale rungs turn it off: at 10^5–10^6 MHs
    #: an unbounded per-entity list is the difference between O(idle
    #: population) and O(traffic history) resident memory.
    retain_app_log: bool = True

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        if self.token_hold_time < 0:
            raise ValueError("token_hold_time must be >= 0")
        if self.delivery_window < 1:
            raise ValueError("delivery_window must be >= 1")
        if self.mq_retention < 0:
            raise ValueError("mq_retention must be >= 0")
