"""Multicast Mobility Agents and smooth-handoff path reservation (§3).

The paper places an MMA "in each micromobility domain" — in this
implementation every AG runs one.  Like an MRP, the MMA keeps a list of
entries searched for each downlink packet; unlike an MRP the entries are
**group-oriented** and a group may have **multiple** entries (one per AP
currently receiving or pre-reserved), which is what enables
multicast-based smooth handoff:

* when an AP that is not receiving the group needs it (an MH handed off
  to it), it builds a multicast path toward one of its **candidate AGs**
  (:class:`~repro.core.messages.PathReserve`), *and at the same time
  notifies its nearby APs* to reserve paths too
  (:class:`~repro.core.messages.NeighborNotify`);
* a reservation adds the AP to the AG's MMA table — operationally, the
  AG registers the AP as a delivery child from its current front — so
  messages are already flowing when the next MH arrives ("in most cases,
  when an MH handoffs, it can immediately receive multicast messages");
* reservations with no attached group member expire after
  ``cfg.reservation_ttl`` to bound the extra delivery fan-out.

The :class:`MMATable` itself lives at the AG; the reservation *initiation*
logic lives at the AP (see ``NetworkEntity.ap_need_path`` /
``handle_neighbor_notify``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.address import NodeId


@dataclass
class MMAEntry:
    """One (group, AP) downlink entry at an AG's MMA."""

    gid: str
    ap: NodeId
    reserved_at: float
    #: True while the entry exists only as a smooth-handoff reservation
    #: (no known attached member behind it yet).
    standby: bool = True
    refreshed_at: float = 0.0


class MMATable:
    """The per-AG table of group-oriented downlink entries."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, NodeId], MMAEntry] = {}
        self.reservations = 0
        self.activations = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    def reserve(self, gid: str, ap: NodeId, now: float) -> MMAEntry:
        """Add or refresh a standby entry for (gid, ap)."""
        key = (gid, ap)
        entry = self._entries.get(key)
        if entry is None:
            entry = MMAEntry(gid=gid, ap=ap, reserved_at=now, refreshed_at=now)
            self._entries[key] = entry
            self.reservations += 1
        else:
            entry.refreshed_at = now
        return entry

    def activate(self, gid: str, ap: NodeId, now: float) -> MMAEntry:
        """Mark the entry active (an MH is attached behind this AP)."""
        entry = self.reserve(gid, ap, now)
        if entry.standby:
            entry.standby = False
            self.activations += 1
        entry.refreshed_at = now
        return entry

    def deactivate(self, gid: str, ap: NodeId, now: float) -> None:
        """Demote an entry to standby (last member left the AP)."""
        entry = self._entries.get((gid, ap))
        if entry is not None:
            entry.standby = True
            entry.refreshed_at = now

    def remove(self, gid: str, ap: NodeId) -> None:
        """Drop the entry entirely."""
        self._entries.pop((gid, ap), None)

    # ------------------------------------------------------------------
    def lookup(self, gid: str) -> List[MMAEntry]:
        """All entries for a group — the per-downlink-packet search."""
        return [e for (g, _), e in self._entries.items() if g == gid]

    def has(self, gid: str, ap: NodeId) -> bool:
        """Whether (gid, ap) has an entry (standby or active)."""
        return (gid, ap) in self._entries

    def expire_standby(self, now: float, ttl: float) -> List[MMAEntry]:
        """Drop standby entries idle longer than ``ttl``; returns them."""
        dead = [
            e for e in self._entries.values()
            if e.standby and now - e.refreshed_at > ttl
        ]
        for e in dead:
            del self._entries[(e.gid, e.ap)]
            self.expirations += 1
        return dead

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MMATable entries={len(self._entries)}>"
