"""Keyed per-shard trace streams and their deterministic merge.

A :class:`KeyedRecorder` captures the same canonical JSONL lines a
:class:`~repro.validation.record.TraceRecorder` would, but stamps each
with its **merge key** ``(time, root event key, *owned-section path,
emission index)`` — the total order in which the sequential engine
would have emitted it.  Because every component of the key is
decomposition-invariant (see :mod:`repro.sim.engine`), K sorted
per-shard streams merge into exactly the sequential stream, byte for
byte.  That merge is the determinism proof the acceptance tests run.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Tuple

from repro.sim.trace import TraceBus, TraceRecord
from repro.validation.record import record_to_line

MergeKey = Tuple
Entry = Tuple[MergeKey, str]


class KeyedRecorder:
    """Record every emission on a bus together with its merge key.

    Exactly one keyed recorder may observe a bus: the emission-index
    counter ticks once per recorded emission, and a second consumer
    would double-tick it.
    """

    def __init__(self, trace: TraceBus):
        if trace._sim is None:
            raise RuntimeError("bus is not attached to a simulator")
        self.entries: List[Entry] = []
        self._trace = trace
        self._sim = trace._sim
        trace.subscribe(None, self._on_record)

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(None, self._on_record)
            self._trace = None

    def _on_record(self, rec: TraceRecord) -> None:
        key = (rec.time,) + self._sim.emission_key()
        self.entries.append((key, record_to_line(rec)))

    @property
    def lines(self) -> List[str]:
        """The canonical lines in merge-key order (local emission order
        already *is* merge-key order — asserted by the runtime tests)."""
        return [line for _, line in self.entries]


def merge_streams(streams: Iterable[List[Entry]]) -> List[str]:
    """Merge K per-shard keyed streams into the canonical global stream.

    Each stream arrives sorted (a shard emits in execution order, and
    execution order is merge-key order), so this is a straight k-way
    heap merge.
    """
    merged = heapq.merge(*streams, key=lambda entry: entry[0])
    return [line for _, line in merged]
