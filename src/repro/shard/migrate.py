"""MH state handoff for shard-ownership rebalancing.

When the rebalancer moves a mobile host to another shard, *everything
the owner shard knows about it* must travel: the replicated ownership
map flips on every shard, but the MH's protocol state — message queue,
reliable-channel book-keeping, pending timer and arrival events, the
per-entity RNG stream positions — lives only on the old owner.  Trace
identity across shard counts (the repo's core oracle) demands the move
be invisible: the MH must execute exactly the same events with exactly
the same ``(time, key)`` and the same random draws on its new shard as
it would have sequentially.

:func:`collect` runs on the old owner at the rebalance barrier and
returns one picklable blob; :func:`restore` runs on the new owner at
the same virtual instant.  Both shards hold the MH *object* already —
entity creation is replicated control-plane code — so restore is pure
state surgery, never construction.

The collector is deliberately loud: a pending event it does not
recognize raises instead of being dropped, because a silently lost
event is a trace divergence diagnosed hours later.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.address import NodeId
from repro.net.transport import _Outstanding

#: Per-entity RNG stream name patterns an MH draws from.
_STREAM_PATTERNS = ("link.loss.{}", "link.jitter.{}", "fault.ge.{}")

#: MobileHost slots shipped verbatim (picklable scalars/containers).
_MH_FIELDS = ("luid", "ap", "is_member", "app_log", "tombstones",
              "handoffs", "last_delivery_at", "_delivered_n",
              "_attach_epoch", "_gap_state")


def _stream_state(gen) -> Tuple[str, Any]:
    bg = getattr(gen, "bit_generator", None)
    if bg is not None:
        return ("numpy", bg.state)
    return ("py", gen._random.getstate())


def _restore_stream(gen, kind: str, state: Any) -> None:
    bg = getattr(gen, "bit_generator", None)
    if kind == "numpy":
        if bg is None:  # pragma: no cover - homogeneous workers
            raise RuntimeError("numpy stream state on a non-numpy worker")
        bg.state = state
    else:
        if bg is not None:  # pragma: no cover - homogeneous workers
            raise RuntimeError("pure-python stream state on a numpy worker")
        gen._random.setstate(state)


def collect(sim, net, mh_id: NodeId) -> Dict[str, Any]:
    """Extract (and deactivate) one MH's migratable state on the old owner.

    Pending events owned by the MH are classified — channel RTO timers,
    the gap periodic timer, in-flight fabric arrivals — recorded as
    ``(time, key)`` descriptors, and cancelled locally.  Anything else
    in the heap under this owner is a bug and raises.
    """
    mh = net.mobile_hosts[mh_id]
    chan = mh.chan
    gap = mh._gap_timer
    fabric = net.fabric

    outstanding: List[Tuple[NodeId, int, Any, int, Optional[Tuple[float, int]]]] = []
    live_rto = 0
    for (dst, seq), out in sorted(chan._outstanding.items()):
        ev = out.rto_event
        desc: Optional[Tuple[float, int]] = None
        if ev is not None and not ev.cancelled and ev.in_heap:
            desc = (ev.time, ev.key)
            live_rto += 1
        outstanding.append((dst, seq, out.segment, out.retries_left, desc))

    gap_ev = gap._event
    gap_desc: Optional[Tuple[float, int]] = None
    if gap_ev is not None and not gap_ev.cancelled and gap_ev.in_heap:
        gap_desc = (gap_ev.time, gap_ev.key)

    arrivals: List[Tuple[float, int, Any]] = []
    seen_chan = 0
    seen_gap = 0
    to_cancel = []
    for _, _, ev in sim._heap:
        if ev.cancelled or not ev.in_heap or ev.owner != mh_id:
            continue
        fn = ev.fn
        bound = getattr(fn, "__self__", None)
        if bound is chan:
            seen_chan += 1
        elif bound is gap:
            seen_gap += 1
        elif bound is fabric and getattr(fn, "__name__", "") == "_arrive":
            arrivals.append((ev.time, ev.key, ev.args[1]))
        else:
            raise RuntimeError(
                f"cannot migrate {mh_id!r}: unrecognized pending event "
                f"{fn!r} at t={ev.time}")
        to_cancel.append(ev)
    if seen_chan != live_rto or seen_gap != (0 if gap_desc is None else 1):
        raise RuntimeError(
            f"cannot migrate {mh_id!r}: timer book-keeping out of sync "
            f"(heap rto={seen_chan} vs {live_rto}, "
            f"gap={seen_gap} vs {gap_desc})")
    for ev in to_cancel:
        sim.cancel(ev)
    if gap_ev is not None:
        gap._event = None

    streams: Dict[str, Tuple[str, Any]] = {}
    for pat in _STREAM_PATTERNS:
        name = pat.format(mh_id)
        if name in sim.streams:
            streams[name] = _stream_state(sim.streams.get(name))

    ge_bad: Dict[int, bool] = {}
    overlay = fabric.fault_overlay
    if overlay is not None:
        for idx, entry in sorted(overlay._bursts.items()):
            chain = entry.chains.get(mh_id)
            if chain is not None:
                ge_bad[idx] = chain.bad

    arrivals.sort()
    return {
        "mh": mh_id,
        "fields": {name: getattr(mh, name) for name in _MH_FIELDS},
        "node": {"alive": mh.alive, "rx_count": mh.rx_count,
                 "tx_count": mh.tx_count},
        "mq": mh.mq,
        "chan": {
            "stats": chan.stats,
            "next_seq": chan._next_seq,
            "seen_floor": chan._seen_floor,
            "seen_sparse": chan._seen_sparse,
            "in_flight": chan._in_flight_by_dst,
            "peak_in_flight": chan.peak_in_flight_by_dst,
            "outstanding": outstanding,
        },
        "gap_timer": {"fires": gap.fires, "event": gap_desc},
        "arrivals": arrivals,
        "streams": streams,
        "ge_bad": ge_bad,
    }


def restore(sim, net, blob: Dict[str, Any]) -> None:
    """Install a collected MH state on the new owner.

    Event descriptors are re-scheduled through ``schedule_keyed`` with
    their original ``(time, key)`` — all of them sit at or beyond the
    rebalance barrier time, which is at or beyond this worker's clock,
    so re-admission cannot violate causality.
    """
    mh_id = blob["mh"]
    mh = net.mobile_hosts[mh_id]
    chan = mh.chan
    gap = mh._gap_timer

    for name, val in blob["fields"].items():
        setattr(mh, name, val)
    node = blob["node"]
    mh.alive = node["alive"]
    mh.rx_count = node["rx_count"]
    mh.tx_count = node["tx_count"]
    mh.mq = blob["mq"]

    ch = blob["chan"]
    chan.stats = ch["stats"]
    chan._next_seq = dict(ch["next_seq"])
    chan._seen_floor = dict(ch["seen_floor"])
    chan._seen_sparse = {k: set(v) for k, v in ch["seen_sparse"].items()}
    chan._in_flight_by_dst = dict(ch["in_flight"])
    chan.peak_in_flight_by_dst = dict(ch["peak_in_flight"])
    chan._outstanding = {}
    for dst, seq, segment, retries_left, desc in ch["outstanding"]:
        out = _Outstanding(dst, segment, retries_left)
        chan._outstanding[(dst, seq)] = out
        if desc is not None:
            t, k = desc
            out.rto_event = sim.schedule_keyed(
                t, k, mh_id, chan._on_timeout, dst, seq)

    gt = blob["gap_timer"]
    if gap._event is not None:  # pragma: no cover - defensive
        sim.cancel(gap._event)
        gap._event = None
    gap.fires = gt["fires"]
    if gt["event"] is not None:
        t, k = gt["event"]
        gap._event = sim.schedule_keyed(t, k, mh_id, gap._fire)

    fabric = net.fabric
    for t, k, msg in blob["arrivals"]:
        sim.schedule_keyed(t, k, mh_id, fabric._arrive, mh_id, msg)

    for name, (kind, state) in blob["streams"].items():
        _restore_stream(sim.streams.get(name), kind, state)

    overlay = fabric.fault_overlay
    if overlay is not None:
        for idx, bad in blob["ge_bad"].items():
            entry = overlay._bursts.get(idx)
            if entry is not None:
                entry.chain_for(mh_id).bad = bad
