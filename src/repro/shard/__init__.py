"""repro.shard — space-parallel simulation with deterministic sync.

Partitions a built RingNet topology into K shards (a pluggable
:class:`~repro.shard.partition.Partitioner` over BR-subtree units,
each MH riding with its initial AP), runs one event loop per worker
process, and synchronizes conservatively behind per-shard grants
derived from the cut-latency matrix ``L[j][i]`` — shard *i* only waits
on links that can actually reach it.  A pluggable
:class:`~repro.shard.partition.Rebalancer` may move MH ownership
between shards mid-run at replicated barriers with explicit state
handoff (:mod:`repro.shard.migrate`).  The merge order ``(time, causal
key, emission index)`` makes a K-shard run produce **byte-identical**
canonical traces to the sequential engine — with rebalancing on;
``shards=1`` is the exact sequential engine path.

Public API::

    from repro.shard import partition_spec, run_sharded

    plan = partition_spec(spec, 4)
    result = run_sharded(spec, 4, record=True)
    assert result.merged_lines == sequential_lines
"""

from repro.shard.partition import (LoadAwareRebalancer, MoveProposal,
                                   PartitionError, Partitioner,
                                   PartitionPlan, Rebalancer, cut_edges,
                                   get_partitioner, get_rebalancer,
                                   latency_matrix, lookahead_of,
                                   min_lookahead, partition_hierarchy,
                                   partition_spec)
from repro.shard.record import KeyedRecorder, merge_streams
from repro.shard.runtime import ShardRunResult, record_sharded, run_sharded

__all__ = [
    "LoadAwareRebalancer",
    "MoveProposal",
    "PartitionError",
    "PartitionPlan",
    "Partitioner",
    "Rebalancer",
    "KeyedRecorder",
    "ShardRunResult",
    "cut_edges",
    "get_partitioner",
    "get_rebalancer",
    "latency_matrix",
    "lookahead_of",
    "merge_streams",
    "min_lookahead",
    "partition_hierarchy",
    "partition_spec",
    "record_sharded",
    "run_sharded",
]
