"""repro.shard — space-parallel simulation with deterministic sync.

Partitions a built RingNet topology into K shards (one BR subtree
group per shard, each MH riding with its initial AP), runs one event
loop per worker process, and synchronizes conservatively with a
bounded-lag window derived from the minimum cross-shard link latency
(the lookahead).  The merge order ``(time, causal key, emission
index)`` makes a K-shard run produce **byte-identical** canonical
traces to the sequential engine; ``shards=1`` is the exact sequential
engine path.

Public API::

    from repro.shard import partition_spec, run_sharded

    plan = partition_spec(spec, 4)
    result = run_sharded(spec, 4, record=True)
    assert result.merged_lines == sequential_lines
"""

from repro.shard.partition import (PartitionError, PartitionPlan,
                                   cut_edges, lookahead_of,
                                   partition_hierarchy, partition_spec)
from repro.shard.record import KeyedRecorder, merge_streams
from repro.shard.runtime import ShardRunResult, record_sharded, run_sharded

__all__ = [
    "PartitionError",
    "PartitionPlan",
    "KeyedRecorder",
    "ShardRunResult",
    "cut_edges",
    "lookahead_of",
    "merge_streams",
    "partition_hierarchy",
    "partition_spec",
    "record_sharded",
    "run_sharded",
]
