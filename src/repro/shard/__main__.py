"""Command-line entry point: ``python -m repro.shard``.

Subcommands
-----------
* ``partition NAME --shards K`` — show (or ``--json``-dump) the shard
  plan for a registry scenario: per-shard weights, cut edges, lookahead.
* ``run NAME --shards K`` — execute the scenario on K worker processes
  and print the window/synchronization statistics; ``--record FILE``
  writes the merged canonical trace.
* ``compare NAME --shards K[,K2,...]`` — run sequentially and sharded,
  assert the canonical traces are byte-identical (exit 1 otherwise).

``--duration`` / ``--seed`` / ``--set`` mean the same thing as in
``python -m repro.experiments``.

Examples
--------
::

    python -m repro.shard partition quickstart --shards 4
    python -m repro.shard run churn_heavy --shards 2 --duration 4000
    python -m repro.shard compare failure_drill --shards 2,4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.shard.partition import (cut_edges, latency_matrix, lookahead_of,
                                   min_lookahead, partition_spec)
from repro.shard.runtime import run_sharded


def _spec(args: argparse.Namespace):
    from repro.experiments.__main__ import spec_for_args
    return spec_for_args(args)


def _observed_loads(path: str, scenario: str,
                    n_shards: int) -> Optional[list]:
    """Per-shard event counts from a ``BENCH_*.json`` sharded entry.

    Prefers an entry whose name mentions the scenario; falls back to
    any entry measured at the same shard count.
    """
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    candidates = []
    for entry in report.get("results") or []:
        stats = entry.get("shard") or {}
        events = stats.get("shard_events")
        if entry.get("shards") == n_shards and events:
            candidates.append((str(entry.get("name", "")), events))
    for name, events in candidates:
        if scenario in name:
            return events
    return candidates[0][1] if candidates else None


# ----------------------------------------------------------------------
def cmd_partition(args: argparse.Namespace) -> int:
    from repro.experiments.runner import build_scenario

    spec = _spec(args)
    plan = partition_spec(spec, args.shards, partitioner=args.partitioner)
    scenario = build_scenario(spec)
    cut = cut_edges(scenario.net.fabric, plan)
    lookahead = lookahead_of(cut)
    wireless = getattr(scenario.net, "wireless", None)
    matrix = latency_matrix(
        scenario.net.fabric, plan,
        wireless_floor=wireless.latency if wireless is not None else None)
    observed = (_observed_loads(args.bench_report, spec.name, args.shards)
                if args.bench_report else None)
    if args.json:
        payload = plan.to_dict()
        payload["cut_edges"] = [list(edge) for edge in cut]
        payload["lookahead_ms"] = None if lookahead == float("inf") \
            else lookahead
        payload["lookahead_matrix_ms"] = [
            [None if v == float("inf") else v for v in row]
            for row in matrix]
        if observed is not None:
            payload["observed_events"] = list(observed)
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    print(f"{spec.name}: {len(plan.shard_of)} nodes -> "
          f"{plan.n_shards} shards")
    for shard in range(plan.n_shards):
        brs = sorted(br for br, s in plan.subtree_shard.items() if s == shard)
        line = (f"  shard {shard}: weight={plan.weights[shard]:4d}  ")
        if observed is not None and shard < len(observed):
            line += f"observed_events={observed[shard]:,}  "
        line += f"subtrees={', '.join(brs) if brs else '(empty)'}"
        print(line)
    if observed is not None:
        lo, hi = min(observed), max(observed)
        print(f"  observed balance: {hi / lo:.2f}x max/min"
              if lo else "  observed balance: n/a (empty shard)")
    print(f"  cut edges: {len(cut)}  lookahead floor: "
          f"{'unbounded' if lookahead == float('inf') else f'{lookahead}ms'}"
          f"  matrix min: {min_lookahead(matrix)}ms")
    return 0


def _print_shard_table(result) -> None:
    """Per-shard observability lines: events, stalls by cause, barrier
    wait, export-queue peak."""
    if not result.shard_events:
        return
    print("  per shard:")
    for i, events in enumerate(result.shard_events):
        stalls = (result.stalled_windows[i]
                  if i < len(result.stalled_windows) else 0)
        causes = (result.stall_causes[i]
                  if i < len(result.stall_causes) else {})
        cause_txt = ", ".join(f"{k}={v}" for k, v in sorted(causes.items()))
        barrier = (result.barrier_wait_s[i]
                   if i < len(result.barrier_wait_s) else 0.0)
        exq = (result.export_q_peaks[i]
               if i < len(result.export_q_peaks) else 0)
        print(f"    shard {i}: events={events:,}  stalls={stalls}"
              f"{' (' + cause_txt + ')' if cause_txt else ''}  "
              f"barrier_wait={barrier:.3f}s  export_q_peak={exq}")


def cmd_run(args: argparse.Namespace) -> int:
    spec = _spec(args)
    result = run_sharded(spec, args.shards, record=args.record is not None,
                         obs=args.obs is not None,
                         partitioner=args.partitioner,
                         rebalancer=args.rebalancer)
    stats = result.stats_dict()
    for key, value in stats.items():
        print(f"  {key}: {value}")
    _print_shard_table(result)
    if args.record is not None:
        with open(args.record, "w", encoding="utf-8") as fh:
            for line in result.merged_lines or []:
                fh.write(line + "\n")
        print(f"wrote {len(result.merged_lines or [])} records "
              f"to {args.record}")
    if args.obs is not None and result.obs_report is not None:
        from repro.obs.session import write_artifacts
        name = (spec.name if result.n_shards == 1
                else f"{spec.name}@{result.n_shards}shards")
        paths = write_artifacts(result.obs_report, result.obs_timeline or [],
                                out_dir=args.obs, name=name)
        print(f"wrote {paths['report']}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.validation.record import first_divergence, record_spec

    spec = _spec(args)
    shard_counts = [int(k) for k in str(args.shards).split(",")]
    print(f"recording {spec.name} sequentially ...", flush=True)
    seq = record_spec(spec)
    print(f"  {seq.count} records")
    status = 0
    for k in shard_counts:
        print(f"recording {spec.name} with {k} shards ...", flush=True)
        result = run_sharded(spec, k, record=True,
                             partitioner=args.partitioner,
                             rebalancer=args.rebalancer)
        div = first_divergence(seq.lines, result.merged_lines or [])
        if div is None:
            print(f"  shards={k}: byte-identical "
                  f"({len(result.merged_lines or [])} records, "
                  f"{result.windows} windows, "
                  f"{sum(result.stalled_windows)} stalls, "
                  f"{result.rebalances} rebalances)")
        else:
            status = 1
            print(f"  shards={k}: DIVERGED at {div.describe()}")
    return status


# ----------------------------------------------------------------------
def _add_spec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("scenario", help="registry scenario name")
    p.add_argument("--duration", type=float, default=None, metavar="MS")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="dotted-path spec override, repeatable")
    p.add_argument("--partitioner", default=None, metavar="NAME",
                   help="partition strategy: balanced (default) or lpt")


def _add_rebalancer_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--rebalancer", default=None, metavar="NAME",
                   help="ownership-move strategy: load-aware (default) "
                        "or none")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="space-parallel simulation: partition, run, compare",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_part = sub.add_parser("partition", help="show the shard plan")
    _add_spec_args(p_part)
    p_part.add_argument("--shards", type=int, default=2, metavar="K")
    p_part.add_argument("--json", action="store_true",
                        help="dump the full plan as JSON")
    p_part.add_argument("--bench-report", default=None, metavar="FILE",
                        dest="bench_report",
                        help="BENCH_*.json with a sharded entry at the "
                             "same shard count: print observed per-shard "
                             "event loads next to the node-count weights")
    p_part.set_defaults(fn=cmd_partition)

    p_run = sub.add_parser("run", help="run on K worker processes")
    _add_spec_args(p_run)
    _add_rebalancer_arg(p_run)
    p_run.add_argument("--shards", type=int, default=2, metavar="K")
    p_run.add_argument("--record", default=None, metavar="FILE",
                       help="write the merged canonical trace (JSONL)")
    p_run.add_argument("--obs", nargs="?", const=".", default=None,
                       metavar="DIR",
                       help="attach per-worker out-of-band telemetry "
                            "(repro.obs) and write the assembled "
                            "OBS_<name>.json + timeline to DIR "
                            "(default: cwd)")
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser(
        "compare", help="assert sharded trace == sequential trace")
    _add_spec_args(p_cmp)
    _add_rebalancer_arg(p_cmp)
    p_cmp.add_argument("--shards", default="2", metavar="K[,K2,...]",
                       help="shard counts to verify (default 2)")
    p_cmp.set_defaults(fn=cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
