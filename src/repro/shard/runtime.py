"""The conservative window runtime: K worker processes, one coordinator.

Execution model (bulk-synchronous conservative PDES):

* Every worker **builds the full scenario** from the spec — build is
  deterministic, so replicas agree on all structural state — then masks
  execution to the entities its shard owns (the engine gate drops
  non-local events at schedule time, the fabric suppresses non-local
  sends, the trace gate silences non-local emissions).
* **Control-plane events** (topology maintenance, crash schedules,
  mobility and churn decisions) carry ``owner=None`` and run
  *replicated* in every shard, keeping shared structural state —
  hierarchy, liveness flags, ownership map — identical everywhere
  without any cross-shard state transfer.
* **Data-plane events** run only on their owner's shard.  A message to
  a remote node is exported with the arrival time and causal key the
  sequential engine would have used, and imported into the destination
  shard's heap at the next synchronization.
* Workers advance in lockstep windows of width ``lookahead`` — the
  minimum cut-link latency — so nothing a shard does inside a window
  can affect another shard within the same window.  The coordinator
  barriers every window, routes exports, and skips dead time (the next
  window starts at the globally earliest pending event when that is
  later than ``W + lookahead``).
* Events registered as **probes** (churn ticks, token-holder crashes)
  need globally-gathered inputs: every shard pauses exactly at the
  probe's ``(time, key)``, the coordinator merges the per-shard
  gathers, and the event then executes replicated with identical
  inputs.

``shards=1`` bypasses all of this and runs the plain sequential engine
— the exact code path every non-sharded caller uses — so non-sharded
behaviour cannot drift behind the parallel backend's back.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.spec import ExperimentSpec
from repro.shard.context import ShardContext
from repro.shard.partition import (PartitionPlan, cut_edges, lookahead_of,
                                   partition_spec)
from repro.shard.record import KeyedRecorder, merge_streams


@dataclass
class ShardRunResult:
    """Aggregate outcome of one sharded run."""

    n_shards: int
    lookahead: float
    horizon: float
    windows: int = 0
    probe_syncs: int = 0
    events: int = 0
    shard_events: List[int] = field(default_factory=list)
    shard_walls: List[float] = field(default_factory=list)
    stalled_windows: List[int] = field(default_factory=list)
    stall_causes: List[Dict[str, int]] = field(default_factory=list)
    barrier_wait_s: List[float] = field(default_factory=list)
    export_q_peaks: List[int] = field(default_factory=list)
    exported: int = 0
    peak_heap: int = 0
    compactions: int = 0
    migrations: int = 0
    migration_log: List[Tuple] = field(default_factory=list)
    deliveries: int = 0
    sent: int = 0
    members: int = 0
    build_s: float = 0.0
    wall_s: float = 0.0
    trace_counts: Dict[str, int] = field(default_factory=dict)
    merged_lines: Optional[List[str]] = None
    #: Assembled obs run report / timeline rows (``obs=True`` runs only).
    obs_report: Optional[Dict[str, Any]] = None
    obs_timeline: Optional[List[Dict[str, Any]]] = None
    #: Merged span events across shards (``spans=True`` runs only);
    #: assemble with :func:`repro.obs.spans.assemble`.
    span_events: Optional[List[Tuple]] = None

    @property
    def events_per_sec(self) -> float:
        """Aggregate engine throughput over the parallel section."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def stats_dict(self) -> Dict[str, Any]:
        """Machine-readable summary (bench reports embed this)."""
        return {
            "shards": self.n_shards,
            "lookahead_ms": self.lookahead if self.lookahead != float("inf")
            else None,
            "windows": self.windows,
            "probe_syncs": self.probe_syncs,
            "window_stalls": sum(self.stalled_windows),
            "window_stalls_per_shard": list(self.stalled_windows),
            "stall_causes": list(self.stall_causes),
            "barrier_wait_s": [round(b, 6) for b in self.barrier_wait_s],
            "export_queue_peak_per_shard": list(self.export_q_peaks),
            "events": self.events,
            "shard_events": list(self.shard_events),
            "exported": self.exported,
            "peak_heap": self.peak_heap,
            "compactions": self.compactions,
            "migrations": self.migrations,
            "deliveries": self.deliveries,
            "wall_s": round(self.wall_s, 6),
            "build_s": round(self.build_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
        }

    def span_overlays(self) -> Dict[str, Any]:
        """Run-level pseudo-stages for the critpath summary.

        Window-stall time is wall-clock coordination cost, a property
        of the sharded run rather than of any message's logical
        latency, so it reports as an overlay instead of a stage.
        """
        if self.n_shards <= 1:
            return {}
        return {"window_stall": {
            "wall_ms_total": round(sum(self.barrier_wait_s) * 1e3, 3),
            "stalled_windows_per_shard": list(self.stalled_windows),
            "barrier_wait_s_per_shard": [round(b, 6)
                                         for b in self.barrier_wait_s],
        }}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _bind(ctx: ShardContext, scenario) -> None:
    """Attach probe gatherers and the migration hook to a built scenario."""
    net = scenario.net

    def membership() -> Dict[str, bool]:
        return {mid: mh.is_member for mid, mh in net.mobile_hosts.items()
                if ctx.is_local(mid)}

    def token_holders() -> List[str]:
        # Consumed by crash_token_holder schedules *and* by fault-plan
        # partitions with an @token_holder_subtree group (the fault
        # driver registers its activation event under this probe kind).
        return [ne.id for ne in net.top_ring_nes()
                if ctx.is_local(ne.id) and ne.held_token is not None]

    ctx.gatherers["churn.membership"] = membership
    ctx.gatherers["token.holders"] = token_holders

    if scenario.mobility is not None:
        sim = scenario.sim

        def migration_hook(mh, old_ap, new_ap):
            if ctx.is_local(mh) and ctx.shard_of(new_ap) != ctx.shard_id:
                ctx.migrations += 1
                ctx.migration_notes.append(
                    (sim.now, mh, old_ap, new_ap, ctx.shard_of(new_ap)))

        scenario.mobility.migration_hook = migration_hook


def _apply_imports(sim, fabric, imports) -> int:
    for (time_, key, dst, msg) in imports:
        sim.schedule_keyed(time_, key, dst, fabric._arrive, dst, msg)
    return len(imports)


def _windowed_run(sim, ctx: ShardContext, fabric, conn,
                  horizon: float) -> Dict[str, Any]:
    """Drive the engine through coordinator-synchronized windows."""
    lookahead = ctx.lookahead
    W = 0.0
    windows = stalls = probes = 0
    barrier_wait = 0.0
    stall_causes: Dict[str, int] = {}

    def sync(payload: Dict[str, Any]) -> Dict[str, Any]:
        nonlocal barrier_wait
        payload["exports"] = ctx.take_outbox()
        payload["migrations"] = ctx.take_migration_notes()
        conn.send(payload)
        t0 = time.perf_counter()
        reply = conn.recv()
        waited = time.perf_counter() - t0
        barrier_wait += waited
        obs = sim.obs
        if obs is not None:
            obs.observe("shard.barrier_wait_ms", waited * 1e3)
        ctx.imported += _apply_imports(sim, fabric, reply["imports"])
        return reply

    def run_probe(probe) -> None:
        nonlocal probes
        probe_t, probe_k, kind, _ev = probe
        sim.run_window(probe_t, probe_k)
        reply = sync({"t": "probe", "probe": (kind, probe_t, probe_k),
                      "data": ctx.gather(kind)})
        ctx.stash_probe(reply["probe_data"])
        entry = sim.peek_entry()
        if entry != (probe_t, probe_k):  # pragma: no cover - invariant
            raise RuntimeError(f"probe desync: expected {(probe_t, probe_k)}, "
                               f"heap top is {entry}")
        sim.step()
        ctx.pop_probe()
        probes += 1

    while True:
        probe = ctx.peek_probe()
        if W >= horizon:
            # Tail: everything <= horizon is safe now (the final window
            # exchange already routed every import that can land here).
            if probe is not None and probe[0] <= horizon:
                run_probe(probe)
                continue
            sim.run_window(horizon, inclusive=True)
            break
        if probe is not None and probe[0] < min(W + lookahead, horizon):
            run_probe(probe)
            continue
        boundary = min(W + lookahead, horizon)
        n = sim.run_window(boundary)
        windows += 1
        if n == 0:
            stalls += 1
            # Attribute the stall: an empty heap is genuine idleness; a
            # non-empty heap means work exists but sits beyond the
            # lookahead boundary (partition-quality signal).
            cause = "idle" if sim.peek_entry() is None else "lookahead"
            stall_causes[cause] = stall_causes.get(cause, 0) + 1
            obs = sim.obs
            if obs is not None:
                obs.inc("shard.stall." + cause)
        reply = sync({"t": "window", "W": W,
                      "earliest": sim.peek_entry()})
        W = reply["W_next"]

    if sim.now < horizon:
        sim.now = horizon
    return {"windows": windows, "stalls": stalls, "probes": probes,
            "stall_causes": stall_causes, "barrier_wait_s": barrier_wait}


def _worker_main(conn, spec_dict: Dict[str, Any], plan: PartitionPlan,
                 shard_id: int, record: bool, obs: bool = False,
                 spans: bool = False) -> None:
    try:
        from repro.experiments.runner import build_scenario
        from repro.sim.engine import Simulator
        from repro.sim.trace import TraceBus

        spec = ExperimentSpec.from_dict(spec_dict)
        # Unrecorded (benchmark) runs use the same counting=False trace
        # fast path measure_spec's sequential side uses, so speedup
        # ratios compare like with like; recorded runs need counts for
        # the aggregate-equals-sequential cross-check.
        sim = Simulator(seed=spec.seed,
                        trace=TraceBus(counting=record))
        ctx = ShardContext(shard_id, plan, sim)
        sim.shard = ctx
        sim.gate = ctx.is_local
        sim.trace.gate = ctx.emission_gate
        recorder = KeyedRecorder(sim.trace) if record else None
        collector = None
        if spans:
            # The trace gate masks subscriber callbacks to locally-owned
            # records, and transport hooks only fire inside owner-gated
            # events, so each span event lands on exactly one shard —
            # the merged streams equal the sequential collection.
            from repro.obs.spans import SpanCollector
            collector = SpanCollector()
            collector.attach(sim.trace)

        t0 = time.perf_counter()
        scenario = build_scenario(spec, sim=sim)
        build_s = time.perf_counter() - t0
        fabric = scenario.net.fabric
        ctx.lookahead = lookahead_of(cut_edges(fabric, plan))
        _bind(ctx, scenario)

        conn.send({"t": "ready", "build_s": build_s,
                   "lookahead": ctx.lookahead})
        go = conn.recv()
        assert go["t"] == "go"

        session = None
        if obs:
            from repro.obs.session import ObsSession
            session = ObsSession(sim, horizon_ms=spec.duration_ms,
                                 name=f"shard{shard_id}")

        t1 = time.perf_counter()
        scenario.start()
        loop_stats = _windowed_run(sim, ctx, fabric, conn,
                                   horizon=spec.duration_ms)
        wall = time.perf_counter() - t1

        obs_payload = None
        if session is not None:
            session.finish()
            sub_report = session.report()
            sub_report["shard"] = shard_id
            sub_report["shard_windows"] = {
                "stalls": loop_stats["stalls"],
                "stall_causes": loop_stats["stall_causes"],
                "barrier_wait_s": round(loop_stats["barrier_wait_s"], 6),
                "export_q_peak": ctx.export_q_peak,
            }
            obs_payload = {
                "report": sub_report,
                "rows": [dict(r, shard=shard_id) for r in session.rows],
            }

        net = scenario.net
        deliveries = sum(mh.delivered_count
                         for mid, mh in net.mobile_hosts.items()
                         if ctx.is_local(mid))
        members = sum(1 for mid, mh in net.mobile_hosts.items()
                      if ctx.is_local(mid) and mh.is_member)
        sent = sum(src.sent for sid, src in net.sources.items()
                   if ctx.is_local(sid))
        conn.send({
            "t": "done",
            "events": sim.events_processed,
            "wall_s": wall,
            "build_s": build_s,
            "windows": loop_stats["windows"],
            "stalls": loop_stats["stalls"],
            "stall_causes": loop_stats["stall_causes"],
            "barrier_wait_s": loop_stats["barrier_wait_s"],
            "probes": loop_stats["probes"],
            "exported": ctx.exported,
            "export_q_peak": ctx.export_q_peak,
            "obs": obs_payload,
            "spans": collector.events if collector is not None else None,
            "peak_heap": sim.peak_heap,
            "compactions": sim.compactions,
            "migrations": ctx.migrations,
            # Notes from the tail segment (after the last window sync)
            # have no boundary left to ride; ship them with the result.
            "migrations_tail": ctx.take_migration_notes(),
            "deliveries": deliveries,
            "members": members,
            "sent": sent,
            "trace_counts": dict(sim.trace.counts),
            "entries": recorder.entries if recorder is not None else None,
        })
    except BaseException:
        try:
            conn.send({"t": "error", "tb": traceback.format_exc()})
        except Exception:  # pragma: no cover - broken pipe on teardown
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def _merge_probe_data(kind: str, datas: List[Any]) -> Any:
    if kind == "churn.membership":
        merged: Dict[str, bool] = {}
        for d in datas:
            merged.update(d)
        return merged
    if kind == "token.holders":
        merged_list: List[str] = []
        for d in datas:
            merged_list.extend(d)
        return merged_list
    raise ValueError(f"unknown probe kind {kind!r}")


def _sequential_result(spec: ExperimentSpec, record: bool,
                       obs: bool = False,
                       spans: bool = False) -> ShardRunResult:
    """The exact sequential engine path, packaged as a 1-shard result."""
    from repro.experiments.runner import build_scenario
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceBus
    from repro.validation.record import TraceRecorder

    sim = Simulator(seed=spec.seed, trace=TraceBus(counting=record))
    recorder = TraceRecorder(sim.trace) if record else None
    collector = None
    if spans:
        from repro.obs.spans import SpanCollector
        collector = SpanCollector()
        collector.attach(sim.trace)
    t0 = time.perf_counter()
    scenario = build_scenario(spec, sim=sim)
    session = None
    if obs:
        from repro.obs.session import ObsSession
        session = ObsSession(sim, horizon_ms=spec.duration_ms,
                             name=spec.name)
    t1 = time.perf_counter()
    scenario.run()
    t2 = time.perf_counter()
    if session is not None:
        session.finish()
    if recorder is not None:
        recorder.detach()
    if collector is not None:
        collector.detach()
    net = scenario.net
    result = ShardRunResult(
        n_shards=1,
        lookahead=float("inf"),
        horizon=spec.duration_ms,
        events=sim.events_processed,
        shard_events=[sim.events_processed],
        shard_walls=[t2 - t1],
        stalled_windows=[0],
        stall_causes=[{}],
        barrier_wait_s=[0.0],
        export_q_peaks=[0],
        deliveries=net.total_app_deliveries(),
        peak_heap=sim.peak_heap,
        compactions=sim.compactions,
        sent=scenario.fleet.total_sent,
        members=len(net.member_hosts()),
        build_s=t1 - t0,
        wall_s=t2 - t1,
        trace_counts=dict(sim.trace.counts),
        merged_lines=list(recorder.lines) if recorder is not None else None,
    )
    if session is not None:
        result.obs_report = session.report()
        result.obs_timeline = list(session.rows)
    if collector is not None:
        result.span_events = collector.events
    return result


def _assemble_obs(result: ShardRunResult, spec: ExperimentSpec,
                  obs_per_shard: List[Optional[Dict[str, Any]]]) -> None:
    """Roll per-shard obs payloads into one run report + timeline."""
    from repro.obs.session import OBS_SCHEMA

    payloads = [p for p in obs_per_shard if p is not None]
    if not payloads:  # pragma: no cover - defensive
        return
    reports = [p["report"] for p in payloads]
    result.obs_report = {
        "schema": OBS_SCHEMA,
        "name": spec.name,
        "horizon_ms": spec.duration_ms,
        "window_ms": reports[0].get("window_ms"),
        "windows": max(r.get("windows", 0) for r in reports),
        "events": result.events,
        "wall_s": round(result.wall_s, 6),
        "n_shards": result.n_shards,
        "trace_counts": dict(result.trace_counts),
        "shards": reports,
    }
    result.obs_timeline = sorted(
        (row for p in payloads for row in p["rows"]),
        key=lambda r: (r.get("w", 0), r.get("shard", 0)))


def run_sharded(spec: ExperimentSpec, shards: int,
                record: bool = False, obs: bool = False,
                spans: bool = False) -> ShardRunResult:
    """Run one spec on ``shards`` worker processes.

    ``record=True`` captures every shard's keyed trace stream and
    merges them into :attr:`ShardRunResult.merged_lines` — the stream
    that must be byte-identical to a sequential
    :func:`~repro.validation.record.record_spec` run.

    ``obs=True`` attaches one out-of-band
    :class:`~repro.obs.session.ObsSession` per worker and assembles
    the per-shard reports into :attr:`ShardRunResult.obs_report` /
    :attr:`ShardRunResult.obs_timeline` (rows tagged with ``shard``).
    Because observability never touches the trace stream, ``record``
    and ``obs`` compose freely.

    ``spans=True`` attaches one out-of-band
    :class:`~repro.obs.spans.SpanCollector` per worker; each shard
    collects only the events its gate admits, and the coordinator
    merges the streams into :attr:`ShardRunResult.span_events` in a
    deterministic order (time, event code, fields), so the merged
    stream assembles identically to a sequential collection.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return _sequential_result(spec, record, obs=obs, spans=spans)

    plan = partition_spec(spec, shards)
    mp = multiprocessing.get_context()
    conns = []
    procs = []
    for shard_id in range(shards):
        parent_conn, child_conn = mp.Pipe()
        proc = mp.Process(
            target=_worker_main,
            args=(child_conn, spec.to_dict(), plan, shard_id, record, obs,
                  spans),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)

    result = ShardRunResult(n_shards=shards, lookahead=0.0,
                            horizon=spec.duration_ms)
    entries_per_shard: List[Optional[list]] = [None] * shards
    obs_per_shard: List[Optional[Dict[str, Any]]] = [None] * shards
    spans_per_shard: List[Optional[list]] = [None] * shards
    done = [False] * shards

    def recv(i: int) -> Dict[str, Any]:
        try:
            msg = conns[i].recv()
        except EOFError:
            raise RuntimeError(f"shard {i} worker died unexpectedly")
        if msg["t"] == "error":
            raise RuntimeError(f"shard {i} worker failed:\n{msg['tb']}")
        return msg

    try:
        readies = [recv(i) for i in range(shards)]
        lookaheads = {r["lookahead"] for r in readies}
        if len(lookaheads) != 1:  # pragma: no cover - invariant
            raise RuntimeError(f"workers disagree on lookahead: {lookaheads}")
        lookahead = lookaheads.pop()
        result.lookahead = lookahead
        result.build_s = max(r["build_s"] for r in readies)

        wall_start = time.perf_counter()
        for conn in conns:
            conn.send({"t": "go"})

        horizon = spec.duration_ms
        W = 0.0
        while not all(done):
            msgs: Dict[int, Dict[str, Any]] = {}
            for i in range(shards):
                if not done[i]:
                    msgs[i] = recv(i)
            kinds = {m["t"] for m in msgs.values()}
            if kinds == {"done"}:
                for i, m in msgs.items():
                    done[i] = True
                    result.shard_events.append(m["events"])
                    result.shard_walls.append(m["wall_s"])
                    result.stalled_windows.append(m["stalls"])
                    result.stall_causes.append(m["stall_causes"])
                    result.barrier_wait_s.append(m["barrier_wait_s"])
                    result.export_q_peaks.append(m["export_q_peak"])
                    result.events += m["events"]
                    result.exported += m["exported"]
                    result.migration_log.extend(m["migrations_tail"])
                    result.peak_heap = max(result.peak_heap, m["peak_heap"])
                    result.compactions += m["compactions"]
                    result.migrations += m["migrations"]
                    result.deliveries += m["deliveries"]
                    result.members += m["members"]
                    result.sent += m["sent"]
                    result.windows = max(result.windows, m["windows"])
                    result.probe_syncs = max(result.probe_syncs, m["probes"])
                    for kind, n in m["trace_counts"].items():
                        result.trace_counts[kind] = \
                            result.trace_counts.get(kind, 0) + n
                    entries_per_shard[i] = m["entries"]
                    obs_per_shard[i] = m["obs"]
                    spans_per_shard[i] = m["spans"]
                break
            if len(kinds) != 1:  # pragma: no cover - invariant
                raise RuntimeError(f"shards desynchronized: {kinds}")
            round_kind = kinds.pop()

            # Route exports to their destination shards; collect the
            # arrival times for the dead-time skip below.
            inbound: List[List[Tuple[float, int, str, Any]]] = \
                [[] for _ in range(shards)]
            arrivals: List[float] = []
            for m in msgs.values():
                for (dest, t, key, dst, payload) in m["exports"]:
                    inbound[dest].append((t, key, dst, payload))
                    arrivals.append(t)
                result.migration_log.extend(m["migrations"])

            if round_kind == "probe":
                idents = {m["probe"] for m in msgs.values()}
                if len(idents) != 1:  # pragma: no cover - invariant
                    raise RuntimeError(f"probe desync across shards: {idents}")
                kind = idents.pop()[0]
                merged = _merge_probe_data(
                    kind, [m["data"] for m in msgs.values()])
                for i in range(shards):
                    conns[i].send({"imports": inbound[i],
                                   "probe_data": merged})
            else:  # window
                nexts = [m["earliest"][0] for m in msgs.values()
                         if m["earliest"] is not None]
                nexts.extend(arrivals)
                floor = W + lookahead
                W = min(horizon,
                        max(floor, min(nexts) if nexts else horizon))
                for i in range(shards):
                    conns[i].send({"imports": inbound[i], "W_next": W})
        result.wall_s = time.perf_counter() - wall_start

        if record:
            result.merged_lines = merge_streams(
                [e for e in entries_per_shard if e is not None])
        if obs:
            _assemble_obs(result, spec, obs_per_shard)
        if spans:
            # Stitch per-shard span streams across the export
            # boundaries: assembly is order-independent, but a stable
            # merged order keeps streamed artifacts byte-comparable.
            merged_spans = [tuple(ev)
                            for events in spans_per_shard if events
                            for ev in events]
            merged_spans.sort(
                key=lambda ev: (ev[1], ev[0],
                                tuple(str(x) for x in ev[2:])))
            result.span_events = merged_spans
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
        for conn in conns:
            conn.close()
    return result


def record_sharded(spec: ExperimentSpec, shards: int,
                   stream_path: Optional[str] = None) -> List[str]:
    """Canonical merged JSONL lines of a ``shards``-way run.

    With ``stream_path`` the merged stream is also written to a
    (``.gz``-compressed, byte-stable) JSONL file via
    :func:`repro.sim.trace.write_trace_lines` — the sharded face of the
    streaming trace sink.
    """
    result = run_sharded(spec, shards, record=True)
    lines = result.merged_lines or []
    if stream_path is not None:
        from repro.sim.trace import write_trace_lines
        write_trace_lines(stream_path, lines)
    return lines
