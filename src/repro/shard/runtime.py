"""The conservative window runtime: K worker processes, one coordinator.

Execution model (bulk-synchronous conservative PDES):

* Every worker **builds the full scenario** from the spec — build is
  deterministic, so replicas agree on all structural state — then masks
  execution to the entities its shard owns (the engine gate drops
  non-local events at schedule time, the fabric suppresses non-local
  sends, the trace gate silences non-local emissions).
* **Control-plane events** (topology maintenance, crash schedules,
  mobility and churn decisions) carry ``owner=None`` and run
  *replicated* in every shard, keeping shared structural state —
  hierarchy, liveness flags, ownership map — identical everywhere
  without any cross-shard state transfer.
* **Data-plane events** run only on their owner's shard.  A message to
  a remote node is exported with the arrival time and causal key the
  sequential engine would have used, batched per destination shard,
  and imported into the destination's heap at the next
  synchronization.
* Workers advance behind **per-shard grants** derived from the
  cut-latency matrix ``L[j][i]`` (:func:`repro.shard.partition
  .latency_matrix`): shard *i* may run to ``min_j(lb_j + L[j][i])``
  where ``lb_j`` lower-bounds anything shard *j* can still send.  The
  bounds are closed under multi-hop influence (a Bellman–Ford
  relaxation over the matrix), so a shard stalls only on the links
  that can actually reach it — not on the fastest link anywhere in the
  fabric.  The coordinator grants asynchronously per shard; a shard
  whose bound has not moved is simply not answered until it has.
* Events registered as **probes** (churn ticks, token-holder crashes)
  need globally-gathered inputs: every shard pauses exactly at the
  probe's ``(time, key)``, the coordinator merges the per-shard
  gathers, and the event then executes replicated with identical
  inputs.
* A :class:`~repro.shard.partition.Rebalancer` may propose MH
  ownership moves.  The coordinator announces ``(T_rb, moves)`` at a
  moment every shard has yet to reach, all shards park exactly at
  ``T_rb``, the old owners ship the MHs' migratable state
  (:mod:`repro.shard.migrate`), every shard flips its ownership map,
  and the new owners restore — the move is invisible to the merged
  trace.

``shards=1`` bypasses all of this and runs the plain sequential engine
— the exact code path every non-sharded caller uses — so non-sharded
behaviour cannot drift behind the parallel backend's back.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.spec import ExperimentSpec
from repro.shard import migrate
from repro.shard.context import ShardContext
from repro.shard.partition import (PartitionPlan, Partitioner, Rebalancer,
                                   get_rebalancer, latency_matrix,
                                   min_lookahead, partition_spec)
from repro.shard.record import KeyedRecorder, merge_streams

_INF = float("inf")


@dataclass
class ShardRunResult:
    """Aggregate outcome of one sharded run."""

    n_shards: int
    lookahead: float
    horizon: float
    #: Per-shard-pair lookahead matrix (``None`` for sequential runs).
    lookahead_matrix: Optional[List[List[float]]] = None
    windows: int = 0
    windows_per_shard: List[int] = field(default_factory=list)
    probe_syncs: int = 0
    events: int = 0
    shard_events: List[int] = field(default_factory=list)
    shard_walls: List[float] = field(default_factory=list)
    stalled_windows: List[int] = field(default_factory=list)
    stall_causes: List[Dict[str, int]] = field(default_factory=list)
    barrier_wait_s: List[float] = field(default_factory=list)
    export_q_peaks: List[int] = field(default_factory=list)
    exported: int = 0
    peak_heap: int = 0
    compactions: int = 0
    migrations: int = 0
    migration_log: List[Tuple] = field(default_factory=list)
    #: Rebalance decisions executed: count, total moves, and the
    #: ``(T_rb, n_moves)`` log.
    rebalances: int = 0
    rebalance_moves: int = 0
    rebalance_log: List[Tuple[float, int]] = field(default_factory=list)
    deliveries: int = 0
    sent: int = 0
    members: int = 0
    build_s: float = 0.0
    wall_s: float = 0.0
    trace_counts: Dict[str, int] = field(default_factory=dict)
    merged_lines: Optional[List[str]] = None
    #: Assembled obs run report / timeline rows (``obs=True`` runs only).
    obs_report: Optional[Dict[str, Any]] = None
    obs_timeline: Optional[List[Dict[str, Any]]] = None
    #: Merged span events across shards (``spans=True`` runs only);
    #: assemble with :func:`repro.obs.spans.assemble`.
    span_events: Optional[List[Tuple]] = None

    @property
    def events_per_sec(self) -> float:
        """Aggregate engine throughput over the parallel section."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def stats_dict(self) -> Dict[str, Any]:
        """Machine-readable summary (bench reports embed this)."""
        matrix = None
        if self.lookahead_matrix is not None:
            matrix = [[None if v == _INF else v for v in row]
                      for row in self.lookahead_matrix]
        return {
            "shards": self.n_shards,
            "lookahead_ms": self.lookahead if self.lookahead != _INF
            else None,
            "lookahead_matrix_ms": matrix,
            "windows": self.windows,
            "windows_per_shard": list(self.windows_per_shard),
            "probe_syncs": self.probe_syncs,
            "window_stalls": sum(self.stalled_windows),
            "window_stalls_per_shard": list(self.stalled_windows),
            "stall_causes": list(self.stall_causes),
            "barrier_wait_s": [round(b, 6) for b in self.barrier_wait_s],
            "shard_wall_s": [round(w, 6) for w in self.shard_walls],
            "export_queue_peak_per_shard": list(self.export_q_peaks),
            "events": self.events,
            "shard_events": list(self.shard_events),
            "exported": self.exported,
            "peak_heap": self.peak_heap,
            "compactions": self.compactions,
            "migrations": self.migrations,
            "rebalances": self.rebalances,
            "rebalance_moves": self.rebalance_moves,
            "rebalance_log": [list(e) for e in self.rebalance_log],
            "deliveries": self.deliveries,
            "wall_s": round(self.wall_s, 6),
            "build_s": round(self.build_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
        }

    def span_overlays(self) -> Dict[str, Any]:
        """Run-level pseudo-stages for the critpath summary.

        Window-stall time is wall-clock coordination cost, a property
        of the sharded run rather than of any message's logical
        latency, so it reports as an overlay instead of a stage.
        """
        if self.n_shards <= 1:
            return {}
        return {"window_stall": {
            "wall_ms_total": round(sum(self.barrier_wait_s) * 1e3, 3),
            "stalled_windows_per_shard": list(self.stalled_windows),
            "barrier_wait_s_per_shard": [round(b, 6)
                                         for b in self.barrier_wait_s],
        }}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _bind(ctx: ShardContext, scenario) -> None:
    """Attach probe gatherers and the migration hook to a built scenario."""
    net = scenario.net

    def membership() -> Dict[str, bool]:
        return {mid: mh.is_member for mid, mh in net.mobile_hosts.items()
                if ctx.is_local(mid)}

    def token_holders() -> List[str]:
        # Consumed by crash_token_holder schedules *and* by fault-plan
        # partitions with an @token_holder_subtree group (the fault
        # driver registers its activation event under this probe kind).
        return [ne.id for ne in net.top_ring_nes()
                if ctx.is_local(ne.id) and ne.held_token is not None]

    ctx.gatherers["churn.membership"] = membership
    ctx.gatherers["token.holders"] = token_holders

    if scenario.mobility is not None:
        sim = scenario.sim

        def migration_hook(mh, old_ap, new_ap):
            # Every driven handoff of a locally-owned MH is noted — the
            # rebalancer needs returns-home as much as departures to
            # keep its co-location picture straight; only cross-shard
            # moves count as migrations.
            if ctx.is_local(mh):
                dest = ctx.shard_of(new_ap)
                if dest != ctx.shard_id:
                    ctx.migrations += 1
                ctx.migration_notes.append(
                    (sim.now, mh, old_ap, new_ap, dest))

        scenario.mobility.migration_hook = migration_hook


def _apply_imports(sim, fabric, imports) -> int:
    for (time_, key, dst, msg) in imports:
        sim.schedule_keyed(time_, key, dst, fabric._arrive, dst, msg)
    return len(imports)


def _windowed_run(sim, ctx: ShardContext, net, conn,
                  horizon: float) -> Dict[str, Any]:
    """Drive the engine through coordinator-granted windows."""
    fabric = net.fabric
    front = 0.0
    granted: Optional[float] = None
    pending_rebal: Optional[Tuple[float, Tuple]] = None
    windows = stalls = probes = rebalances = moves_in = moves_out = 0
    barrier_wait = 0.0
    stall_causes: Dict[str, int] = {}

    def payload(kind: str) -> Dict[str, Any]:
        return {"t": kind, "front": front,
                "earliest": sim.peek_entry(),
                "events": sim.events_processed,
                "exports": ctx.take_outbox(),
                "migrations": ctx.take_migration_notes()}

    def sync(msg: Dict[str, Any]) -> Dict[str, Any]:
        nonlocal barrier_wait, pending_rebal
        conn.send(msg)
        t0 = time.perf_counter()
        reply = conn.recv()
        waited = time.perf_counter() - t0
        barrier_wait += waited
        obs = sim.obs
        if obs is not None:
            obs.observe("shard.barrier_wait_ms", waited * 1e3)
        rb = reply.get("rebal")
        if rb is not None:
            pending_rebal = rb
        return reply

    def apply(reply: Dict[str, Any]) -> None:
        ctx.imported += _apply_imports(sim, fabric, reply["imports"])

    def run_probe(probe) -> None:
        nonlocal probes
        probe_t, probe_k, kind, _ev = probe
        sim.run_window(probe_t, probe_k)
        msg = payload("probe")
        msg["probe"] = (kind, probe_t, probe_k)
        msg["data"] = ctx.gather(kind)
        reply = sync(msg)
        apply(reply)
        ctx.stash_probe(reply["probe_data"])
        entry = sim.peek_entry()
        if entry != (probe_t, probe_k):  # pragma: no cover - invariant
            raise RuntimeError(f"probe desync: expected {(probe_t, probe_k)}, "
                               f"heap top is {entry}")
        sim.step()
        ctx.pop_probe()
        probes += 1

    def run_rebalance() -> None:
        nonlocal pending_rebal, rebalances, moves_in, moves_out
        t_rb, moves = pending_rebal
        msg = payload("rebal")
        msg["rb"] = t_rb
        # Old owners collect (and locally cancel) the outgoing state
        # *before* the exchange; the blobs ride the sync itself.
        outgoing = [migrate.collect(sim, net, mv.mh) for mv in moves
                    if mv.from_shard == ctx.shard_id]
        msg["states"] = outgoing
        reply = sync(msg)
        # Every shard flips the (replicated) ownership map, then the
        # new owners restore; imports land afterwards so an arrival for
        # a moved MH schedules on its post-move owner.
        ctx.apply_moves(moves)
        for blob in reply["states"]:
            migrate.restore(sim, net, blob)
        apply(reply)
        moves_out += len(outgoing)
        moves_in += len(reply["states"])
        rebalances += 1
        pending_rebal = None
        obs = sim.obs
        if obs is not None:
            obs.inc("shard.rebalance")
            if outgoing or reply["states"]:
                obs.inc("shard.rebalance.moves",
                        len(outgoing) + len(reply["states"]))

    tail = False
    while not tail:
        if granted is None:
            reply = sync(payload("window"))
            apply(reply)
            if reply.get("tail"):
                tail = True
                break
            granted = reply["grant"]
            continue
        stop_t = granted
        at_rebal = False
        if pending_rebal is not None and pending_rebal[0] <= granted:
            stop_t = pending_rebal[0]
            at_rebal = True
        probe = ctx.peek_probe()
        if probe is not None and (probe[0], probe[1]) < (stop_t, 0):
            run_probe(probe)
            continue
        n = sim.run_window(stop_t)
        front = stop_t
        if at_rebal:
            run_rebalance()
            granted = None
            continue
        granted = None
        windows += 1
        if n == 0:
            stalls += 1
            # Attribute the stall: blocked on a pending probe barrier,
            # genuinely idle (empty heap), or work beyond the granted
            # boundary (partition-quality signal).
            entry = sim.peek_entry()
            if probe is not None and (entry is None
                                      or (probe[0], probe[1]) <= entry):
                cause = "probe"
            elif entry is None:
                cause = "idle"
            else:
                cause = "lookahead"
            stall_causes[cause] = stall_causes.get(cause, 0) + 1
            obs = sim.obs
            if obs is not None:
                obs.inc("shard.stall." + cause)

    # Tail: every live shard sits at the horizon, so only events at
    # exactly t == horizon remain and their exports land beyond it.
    # Probes at the horizon still need their gather exchange.
    while True:
        probe = ctx.peek_probe()
        if probe is not None and probe[0] <= horizon:
            run_probe(probe)
            continue
        sim.run_window(horizon, inclusive=True)
        break

    if sim.now < horizon:
        sim.now = horizon
    return {"windows": windows, "stalls": stalls, "probes": probes,
            "stall_causes": stall_causes, "barrier_wait_s": barrier_wait,
            "rebalances": rebalances, "moves_in": moves_in,
            "moves_out": moves_out}


def _worker_main(conn, spec_dict: Dict[str, Any], plan: PartitionPlan,
                 shard_id: int, record: bool, obs: bool = False,
                 spans: bool = False) -> None:
    try:
        from repro.experiments.runner import build_scenario
        from repro.sim.engine import Simulator
        from repro.sim.trace import TraceBus

        spec = ExperimentSpec.from_dict(spec_dict)
        # Unrecorded (benchmark) runs use the same counting=False trace
        # fast path measure_spec's sequential side uses, so speedup
        # ratios compare like with like; recorded runs need counts for
        # the aggregate-equals-sequential cross-check.
        sim = Simulator(seed=spec.seed,
                        trace=TraceBus(counting=record))
        ctx = ShardContext(shard_id, plan, sim)
        sim.shard = ctx
        sim.gate = ctx.is_local
        sim.trace.gate = ctx.emission_gate
        recorder = KeyedRecorder(sim.trace) if record else None
        collector = None
        if spans:
            # The trace gate masks subscriber callbacks to locally-owned
            # records, and transport hooks only fire inside owner-gated
            # events, so each span event lands on exactly one shard —
            # the merged streams equal the sequential collection.
            from repro.obs.spans import SpanCollector
            collector = SpanCollector()
            collector.attach(sim.trace)

        t0 = time.perf_counter()
        scenario = build_scenario(spec, sim=sim)
        build_s = time.perf_counter() - t0
        fabric = scenario.net.fabric
        wireless = getattr(scenario.net, "wireless", None)
        matrix = latency_matrix(
            fabric, plan,
            wireless_floor=wireless.latency if wireless is not None
            else None)
        ctx.lookahead = min_lookahead(matrix)
        ctx.lookahead_to = list(matrix[shard_id])
        _bind(ctx, scenario)

        conn.send({"t": "ready", "build_s": build_s,
                   "lookahead": ctx.lookahead, "matrix": matrix})
        go = conn.recv()
        assert go["t"] == "go"

        session = None
        if obs:
            from repro.obs.session import ObsSession
            session = ObsSession(sim, horizon_ms=spec.duration_ms,
                                 name=f"shard{shard_id}")

        t1 = time.perf_counter()
        scenario.start()
        loop_stats = _windowed_run(sim, ctx, scenario.net, conn,
                                   horizon=spec.duration_ms)
        wall = time.perf_counter() - t1

        obs_payload = None
        if session is not None:
            session.finish()
            sub_report = session.report()
            sub_report["shard"] = shard_id
            sub_report["shard_windows"] = {
                "stalls": loop_stats["stalls"],
                "stall_causes": loop_stats["stall_causes"],
                "barrier_wait_s": round(loop_stats["barrier_wait_s"], 6),
                "export_q_peak": ctx.export_q_peak,
                "rebalances": loop_stats["rebalances"],
            }
            obs_payload = {
                "report": sub_report,
                "rows": [dict(r, shard=shard_id) for r in session.rows],
            }

        net = scenario.net
        deliveries = sum(mh.delivered_count
                         for mid, mh in net.mobile_hosts.items()
                         if ctx.is_local(mid))
        members = sum(1 for mid, mh in net.mobile_hosts.items()
                      if ctx.is_local(mid) and mh.is_member)
        sent = sum(src.sent for sid, src in net.sources.items()
                   if ctx.is_local(sid))
        conn.send({
            "t": "done",
            "events": sim.events_processed,
            "wall_s": wall,
            "build_s": build_s,
            "windows": loop_stats["windows"],
            "stalls": loop_stats["stalls"],
            "stall_causes": loop_stats["stall_causes"],
            "barrier_wait_s": loop_stats["barrier_wait_s"],
            "probes": loop_stats["probes"],
            "rebalances": loop_stats["rebalances"],
            "exported": ctx.exported,
            "export_q_peak": ctx.export_q_peak,
            "obs": obs_payload,
            "spans": collector.events if collector is not None else None,
            "peak_heap": sim.peak_heap,
            "compactions": sim.compactions,
            "migrations": ctx.migrations,
            # Notes from the tail segment (after the last window sync)
            # have no boundary left to ride; ship them with the result.
            "migrations_tail": ctx.take_migration_notes(),
            "deliveries": deliveries,
            "members": members,
            "sent": sent,
            "trace_counts": dict(sim.trace.counts),
            "entries": recorder.entries if recorder is not None else None,
        })
    except BaseException:
        try:
            conn.send({"t": "error", "tb": traceback.format_exc()})
        except Exception:  # pragma: no cover - broken pipe on teardown
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
def _merge_probe_data(kind: str, datas: List[Any]) -> Any:
    if kind == "churn.membership":
        merged: Dict[str, bool] = {}
        for d in datas:
            merged.update(d)
        return merged
    if kind == "token.holders":
        merged_list: List[str] = []
        for d in datas:
            merged_list.extend(d)
        return merged_list
    raise ValueError(f"unknown probe kind {kind!r}")


def _sequential_result(spec: ExperimentSpec, record: bool,
                       obs: bool = False,
                       spans: bool = False) -> ShardRunResult:
    """The exact sequential engine path, packaged as a 1-shard result."""
    from repro.experiments.runner import build_scenario
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceBus
    from repro.validation.record import TraceRecorder

    sim = Simulator(seed=spec.seed, trace=TraceBus(counting=record))
    recorder = TraceRecorder(sim.trace) if record else None
    collector = None
    if spans:
        from repro.obs.spans import SpanCollector
        collector = SpanCollector()
        collector.attach(sim.trace)
    t0 = time.perf_counter()
    scenario = build_scenario(spec, sim=sim)
    session = None
    if obs:
        from repro.obs.session import ObsSession
        session = ObsSession(sim, horizon_ms=spec.duration_ms,
                             name=spec.name)
    t1 = time.perf_counter()
    scenario.run()
    t2 = time.perf_counter()
    if session is not None:
        session.finish()
    if recorder is not None:
        recorder.detach()
    if collector is not None:
        collector.detach()
    net = scenario.net
    result = ShardRunResult(
        n_shards=1,
        lookahead=float("inf"),
        horizon=spec.duration_ms,
        events=sim.events_processed,
        shard_events=[sim.events_processed],
        shard_walls=[t2 - t1],
        windows_per_shard=[0],
        stalled_windows=[0],
        stall_causes=[{}],
        barrier_wait_s=[0.0],
        export_q_peaks=[0],
        deliveries=net.total_app_deliveries(),
        peak_heap=sim.peak_heap,
        compactions=sim.compactions,
        sent=scenario.fleet.total_sent,
        members=len(net.member_hosts()),
        build_s=t1 - t0,
        wall_s=t2 - t1,
        trace_counts=dict(sim.trace.counts),
        merged_lines=list(recorder.lines) if recorder is not None else None,
    )
    if session is not None:
        result.obs_report = session.report()
        result.obs_timeline = list(session.rows)
    if collector is not None:
        result.span_events = collector.events
    return result


def _assemble_obs(result: ShardRunResult, spec: ExperimentSpec,
                  obs_per_shard: List[Optional[Dict[str, Any]]]) -> None:
    """Roll per-shard obs payloads into one run report + timeline."""
    from repro.obs.session import OBS_SCHEMA

    payloads = [p for p in obs_per_shard if p is not None]
    if not payloads:  # pragma: no cover - defensive
        return
    reports = [p["report"] for p in payloads]
    result.obs_report = {
        "schema": OBS_SCHEMA,
        "name": spec.name,
        "horizon_ms": spec.duration_ms,
        "window_ms": reports[0].get("window_ms"),
        "windows": max(r.get("windows", 0) for r in reports),
        "events": result.events,
        "wall_s": round(result.wall_s, 6),
        "n_shards": result.n_shards,
        "trace_counts": dict(result.trace_counts),
        "shards": reports,
    }
    result.obs_timeline = sorted(
        (row for p in payloads for row in p["rows"]),
        key=lambda r: (r.get("w", 0), r.get("shard", 0)))


class _Coordinator:
    """Round state for one sharded run: grants, probes, rebalances.

    The coordinator is message-driven: it receives exactly one payload
    from every shard it has answered, ingests side effects (export
    routing, migration notes, load counters) immediately, and then
    serves whatever round the stashed payloads allow — a probe or
    rebalance barrier when *all* live shards parked there, otherwise
    per-shard grants to the window-parked shards whose bound moved.
    """

    def __init__(self, shards: int, horizon: float,
                 matrix: List[List[float]],
                 rebalancer: Optional[Rebalancer],
                 result: ShardRunResult):
        self.n = shards
        self.horizon = horizon
        self.matrix = matrix
        self.rebalancer = rebalancer
        self.result = result
        self.fronts = [0.0] * shards
        self.earliest: List[Optional[Tuple[float, int]]] = [None] * shards
        self.shard_events = [0] * shards
        self.inbound: List[List[Tuple]] = [[] for _ in range(shards)]
        self.inbound_min = [_INF] * shards
        #: Co-location deficits: mh → (owner_shard, ap_shard), latest
        #: migration note wins, cleared when the MH comes home or moves.
        self.pending_moves: Dict[str, Tuple[int, int]] = {}
        #: Announced-but-unapplied rebalance: ``(T_rb, moves)``.
        self.pending_rebal: Optional[Tuple[float, Tuple]] = None
        self.move_dest: Dict[str, int] = {}
        self.last_rebal_t = 0.0

    # -- ingestion ------------------------------------------------------
    def ingest(self, i: int, m: Dict[str, Any]) -> None:
        self.fronts[i] = m["front"]
        self.earliest[i] = m["earliest"]
        self.shard_events[i] = m["events"]
        for note in m["migrations"]:
            mh, dest = note[1], note[4]
            if dest != i:
                self.result.migration_log.append(note)
                self.pending_moves[mh] = (i, dest)
            else:
                self.pending_moves.pop(mh, None)
        rb_t = self.pending_rebal[0] if self.pending_rebal else None
        for dest, batch in m["exports"].items():
            for item in batch:
                d = dest
                if rb_t is not None and item[0] >= rb_t:
                    d = self.move_dest.get(item[2], dest)
                self.inbound[d].append(item)
                if item[0] < self.inbound_min[d]:
                    self.inbound_min[d] = item[0]

    def drain(self, i: int) -> List[Tuple]:
        batch, self.inbound[i] = self.inbound[i], []
        self.inbound_min[i] = _INF
        return batch

    def reroute_for_moves(self) -> None:
        """Re-route undrained inbound items to moved MHs' new owners.

        Called at the rebalance barrier: anything still queued for a
        moving MH necessarily arrives at or after ``T_rb`` (grants never
        outrun queued arrivals), so the new owner can admit it.  Items
        ingested *before* the announcement missed the ingest-time
        rewrite; this sweep catches them.
        """
        moved = self.move_dest
        for i in range(self.n):
            if not self.inbound[i]:
                continue
            kept = []
            for item in self.inbound[i]:
                d = moved.get(item[2], i)
                if d != i:
                    self.inbound[d].append(item)
                else:
                    kept.append(item)
            self.inbound[i] = kept
        for i in range(self.n):
            self.inbound_min[i] = min(
                (it[0] for it in self.inbound[i]), default=_INF)

    # -- grant math -----------------------------------------------------
    def lower_bounds(self) -> List[float]:
        """Earliest time each shard can still influence anyone.

        Base: its earliest unexecuted event or queued inbound arrival.
        Relaxed over the latency matrix (Bellman–Ford) so multi-hop
        wake-up chains — shard k wakes j, j then reaches i sooner than
        j's own events would — are bounded too.
        """
        lb = []
        for j in range(self.n):
            e = self.earliest[j]
            b = e[0] if e is not None else _INF
            if self.inbound_min[j] < b:
                b = self.inbound_min[j]
            lb.append(b)
        mat = self.matrix
        for _ in range(self.n):
            changed = False
            for j in range(self.n):
                row_j = lb[j]
                for k in range(self.n):
                    if k == j:
                        continue
                    c = lb[k] + mat[k][j]
                    if c < row_j:
                        row_j = c
                        changed = True
                lb[j] = row_j
            if not changed:
                break
        return lb

    def grant_for(self, i: int, lb: List[float]) -> float:
        raw = _INF
        mat = self.matrix
        for j in range(self.n):
            if j == i:
                continue
            c = lb[j] + mat[j][i]
            if c < raw:
                raw = c
        grant = min(self.horizon, raw)
        return max(grant, self.fronts[i])

    # -- rebalance decisions --------------------------------------------
    def maybe_announce(self) -> None:
        """Decide a rebalance when every shard is window-parked."""
        rb = self.rebalancer
        if rb is None or self.pending_rebal is not None \
                or not self.pending_moves:
            return
        t_rb = max(self.fronts)
        if not (0.0 < t_rb < self.horizon):
            return
        if t_rb - self.last_rebal_t < rb.min_interval:
            return
        moves = [mv for mv in rb.propose(dict(self.pending_moves),
                                         tuple(self.shard_events))
                 if mv.from_shard != mv.to_shard]
        if not moves:
            return
        self.pending_rebal = (t_rb, tuple(moves))
        self.move_dest = {mv.mh: mv.to_shard for mv in moves}
        for mv in moves:
            self.pending_moves.pop(mv.mh, None)
        self.result.rebalances += 1
        self.result.rebalance_moves += len(moves)
        self.result.rebalance_log.append((t_rb, len(moves)))

    def finish_rebalance(self) -> None:
        t_rb, moves = self.pending_rebal
        # An MH that handed off again between announcement and barrier
        # left a note naming the *old* owner; the move just executed, so
        # rewrite the deficit to the new owner (or drop it if satisfied).
        for mv in moves:
            entry = self.pending_moves.get(mv.mh)
            if entry is not None:
                if entry[1] == mv.to_shard:
                    self.pending_moves.pop(mv.mh)
                else:
                    self.pending_moves[mv.mh] = (mv.to_shard, entry[1])
        self.pending_rebal = None
        self.move_dest = {}
        self.last_rebal_t = t_rb


def run_sharded(spec: ExperimentSpec, shards: int,
                record: bool = False, obs: bool = False,
                spans: bool = False,
                partitioner: Union[None, str, Partitioner] = None,
                rebalancer: Union[None, str, Rebalancer] = None,
                ) -> ShardRunResult:
    """Run one spec on ``shards`` worker processes.

    ``record=True`` captures every shard's keyed trace stream and
    merges them into :attr:`ShardRunResult.merged_lines` — the stream
    that must be byte-identical to a sequential
    :func:`~repro.validation.record.record_spec` run.

    ``obs=True`` attaches one out-of-band
    :class:`~repro.obs.session.ObsSession` per worker and assembles
    the per-shard reports into :attr:`ShardRunResult.obs_report` /
    :attr:`ShardRunResult.obs_timeline` (rows tagged with ``shard``).
    Because observability never touches the trace stream, ``record``
    and ``obs`` compose freely.

    ``spans=True`` attaches one out-of-band
    :class:`~repro.obs.spans.SpanCollector` per worker; each shard
    collects only the events its gate admits, and the coordinator
    merges the streams into :attr:`ShardRunResult.span_events` in a
    deterministic order (time, event code, fields), so the merged
    stream assembles identically to a sequential collection.

    ``partitioner`` / ``rebalancer`` pick strategies from the
    :mod:`repro.shard.partition` registries (instances work too);
    ``rebalancer="none"`` disables ownership moves.  The defaults —
    the balanced partitioner with the load-aware rebalancer — are what
    the identity matrix runs, so adaptivity is exercised, not opt-in.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return _sequential_result(spec, record, obs=obs, spans=spans)

    plan = partition_spec(spec, shards, partitioner)
    rb = get_rebalancer(rebalancer)
    mp = multiprocessing.get_context()
    conns = []
    procs = []
    for shard_id in range(shards):
        parent_conn, child_conn = mp.Pipe()
        proc = mp.Process(
            target=_worker_main,
            args=(child_conn, spec.to_dict(), plan, shard_id, record, obs,
                  spans),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)

    result = ShardRunResult(n_shards=shards, lookahead=0.0,
                            horizon=spec.duration_ms)
    entries_per_shard: List[Optional[list]] = [None] * shards
    obs_per_shard: List[Optional[Dict[str, Any]]] = [None] * shards
    spans_per_shard: List[Optional[list]] = [None] * shards
    done = [False] * shards

    def recv(i: int) -> Dict[str, Any]:
        try:
            msg = conns[i].recv()
        except EOFError:
            raise RuntimeError(f"shard {i} worker died unexpectedly")
        if msg["t"] == "error":
            raise RuntimeError(f"shard {i} worker failed:\n{msg['tb']}")
        return msg

    try:
        readies = [recv(i) for i in range(shards)]
        matrices = [r["matrix"] for r in readies]
        if any(m != matrices[0] for m in matrices):  # pragma: no cover
            raise RuntimeError(
                f"workers disagree on the lookahead matrix: {matrices}")
        result.lookahead_matrix = matrices[0]
        result.lookahead = min_lookahead(matrices[0])
        result.build_s = max(r["build_s"] for r in readies)

        wall_start = time.perf_counter()
        for conn in conns:
            conn.send({"t": "go"})

        coord = _Coordinator(shards, spec.duration_ms, matrices[0], rb,
                             result)
        stash: List[Optional[Dict[str, Any]]] = [None] * shards

        def collect_done(i: int, m: Dict[str, Any]) -> None:
            done[i] = True
            result.shard_events.append(m["events"])
            result.shard_walls.append(m["wall_s"])
            result.windows_per_shard.append(m["windows"])
            result.stalled_windows.append(m["stalls"])
            result.stall_causes.append(m["stall_causes"])
            result.barrier_wait_s.append(m["barrier_wait_s"])
            result.export_q_peaks.append(m["export_q_peak"])
            result.events += m["events"]
            result.exported += m["exported"]
            # Tail notes cover every driven handoff; only cross-shard
            # ones are migrations (mirrors ingest()'s filter).
            result.migration_log.extend(
                n for n in m["migrations_tail"] if n[4] != i)
            result.peak_heap = max(result.peak_heap, m["peak_heap"])
            result.compactions += m["compactions"]
            result.migrations += m["migrations"]
            result.deliveries += m["deliveries"]
            result.members += m["members"]
            result.sent += m["sent"]
            result.windows = max(result.windows, m["windows"])
            result.probe_syncs = max(result.probe_syncs, m["probes"])
            for kind, n in m["trace_counts"].items():
                result.trace_counts[kind] = \
                    result.trace_counts.get(kind, 0) + n
            entries_per_shard[i] = m["entries"]
            obs_per_shard[i] = m["obs"]
            spans_per_shard[i] = m["spans"]

        while not all(done):
            for i in range(shards):
                if not done[i] and stash[i] is None:
                    m = recv(i)
                    if m["t"] != "done":
                        coord.ingest(i, m)
                    stash[i] = m
            kinds = {stash[i]["t"] for i in range(shards) if not done[i]}

            if kinds == {"done"}:
                for i in range(shards):
                    if not done[i]:
                        collect_done(i, stash[i])
                        stash[i] = None
                break
            if "done" in kinds:  # pragma: no cover - invariant
                raise RuntimeError(
                    f"shards desynchronized at completion: {kinds}")

            if kinds == {"probe"}:
                idents = {stash[i]["probe"] for i in range(shards)}
                if len(idents) != 1:  # pragma: no cover - invariant
                    raise RuntimeError(
                        f"probe desync across shards: {idents}")
                kind = idents.pop()[0]
                merged = _merge_probe_data(
                    kind, [stash[i]["data"] for i in range(shards)])
                for i in range(shards):
                    conns[i].send({"imports": coord.drain(i),
                                   "probe_data": merged,
                                   "rebal": coord.pending_rebal})
                    stash[i] = None
                continue

            if kinds == {"rebal"}:
                t_rb, moves = coord.pending_rebal
                rbs = {stash[i]["rb"] for i in range(shards)}
                if rbs != {t_rb}:  # pragma: no cover - invariant
                    raise RuntimeError(f"rebalance desync: {rbs} != {t_rb}")
                coord.reroute_for_moves()
                states = {}
                for i in range(shards):
                    for blob in stash[i]["states"]:
                        states[blob["mh"]] = blob
                for i in range(shards):
                    mine = [states[mv.mh] for mv in moves
                            if mv.to_shard == i]
                    conns[i].send({"imports": coord.drain(i),
                                   "states": mine})
                    stash[i] = None
                coord.finish_rebalance()
                continue

            # Mixed round: answer the window-parked shards whose bound
            # lets them advance; probe/rebal-parked shards stay stashed
            # until everyone reaches their barrier.
            widx = [i for i in range(shards)
                    if stash[i] is not None and stash[i]["t"] == "window"]
            if len(widx) == shards:
                coord.maybe_announce()
                if (coord.pending_rebal is None
                        and all(f >= spec.duration_ms
                                for f in coord.fronts)):
                    for i in range(shards):
                        conns[i].send({"imports": coord.drain(i),
                                       "tail": True})
                        stash[i] = None
                    continue
            lb = coord.lower_bounds()
            rb_t = (coord.pending_rebal[0]
                    if coord.pending_rebal is not None else None)
            served = 0
            for i in widx:
                grant = coord.grant_for(i, lb)
                # Hold zero-width grants — a shard whose bound has not
                # moved stays parked instead of spinning — EXCEPT when a
                # grant would carry the shard to a pending rebalance
                # barrier: it must be answered to park there.
                if grant <= coord.fronts[i] and not (
                        rb_t is not None and grant >= rb_t):
                    continue
                conns[i].send({"imports": coord.drain(i),
                               "grant": grant,
                               "rebal": coord.pending_rebal})
                stash[i] = None
                served += 1
            if served == 0:  # pragma: no cover - invariant
                raise RuntimeError(
                    "window protocol stalled: no shard can advance "
                    f"(fronts={coord.fronts}, lb={lb})")

        result.wall_s = time.perf_counter() - wall_start

        if record:
            result.merged_lines = merge_streams(
                [e for e in entries_per_shard if e is not None])
        if obs:
            _assemble_obs(result, spec, obs_per_shard)
        if spans:
            # Stitch per-shard span streams across the export
            # boundaries: assembly is order-independent, but a stable
            # merged order keeps streamed artifacts byte-comparable.
            merged_spans = [tuple(ev)
                            for events in spans_per_shard if events
                            for ev in events]
            merged_spans.sort(
                key=lambda ev: (ev[1], ev[0],
                                tuple(str(x) for x in ev[2:])))
            result.span_events = merged_spans
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
        for conn in conns:
            conn.close()
    return result


def record_sharded(spec: ExperimentSpec, shards: int,
                   stream_path: Optional[str] = None,
                   partitioner: Union[None, str, Partitioner] = None,
                   rebalancer: Union[None, str, Rebalancer] = None,
                   ) -> List[str]:
    """Canonical merged JSONL lines of a ``shards``-way run.

    With ``stream_path`` the merged stream is also written to a
    (``.gz``-compressed, byte-stable) JSONL file via
    :func:`repro.sim.trace.write_trace_lines` — the sharded face of the
    streaming trace sink.
    """
    result = run_sharded(spec, shards, record=True,
                         partitioner=partitioner, rebalancer=rebalancer)
    lines = result.merged_lines or []
    if stream_path is not None:
        from repro.sim.trace import write_trace_lines
        write_trace_lines(stream_path, lines)
    return lines
