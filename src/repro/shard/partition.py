"""Topology partitioner: BR subtrees → shards, MHs ride with their APs.

The partition unit is a **BR subtree** — one top-ring member plus every
NE below it (AG rings, nested AG rings in deep hierarchies, APs) plus
the MHs initially attached under it.  Subtrees are indivisible on
purpose: all the chatty tree traffic (parent→child delivery, membership
relay, path reservations) stays shard-local, and only top-ring traffic
(token passes, ring forwarding between BRs) and roaming MHs cross
shards.  Both cross on provisioned fabric links with positive latency,
which is exactly what gives the conservative runtime its lookahead.

Assignment is greedy LPT (heaviest subtree first onto the lightest
shard), deterministic under ties, so every worker — and the coordinator
— derives the identical plan independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.address import NodeId
from repro.topology.hierarchy import Hierarchy
from repro.topology.tiers import Tier


class PartitionError(ValueError):
    """Raised when a topology cannot be partitioned as requested."""


@dataclass(frozen=True)
class PartitionPlan:
    """A complete shard assignment for one built topology.

    Attributes
    ----------
    n_shards:
        Requested shard count.  Shards may be empty when the topology
        has fewer BR subtrees than shards (they simply idle).
    shard_of:
        Node id → shard index, covering every NE and every initially
        attached MH.  Entities created during the run (sources, churn
        MHs) are adopted into the map by the runtime via
        :meth:`repro.shard.context.ShardContext.adopt`.
    subtree_shard:
        BR id → shard index (the assignment's coarse form).
    weights:
        Node count per shard (NEs + MHs), the balance the LPT greedy
        optimized.
    """

    n_shards: int
    shard_of: Dict[NodeId, int] = field(default_factory=dict)
    subtree_shard: Dict[NodeId, int] = field(default_factory=dict)
    weights: Tuple[int, ...] = ()

    def shard(self, node: NodeId) -> int:
        """Shard index of ``node`` (KeyError for unknown nodes)."""
        return self.shard_of[node]

    def nodes_of(self, shard: int) -> List[NodeId]:
        """All assigned nodes of one shard (sorted, for stable output)."""
        return sorted(n for n, s in self.shard_of.items() if s == shard)

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_shards": self.n_shards,
            "shard_of": dict(self.shard_of),
            "subtree_shard": dict(self.subtree_shard),
            "weights": list(self.weights),
        }


def _subtree_nodes(h: Hierarchy, root: NodeId) -> List[NodeId]:
    """``root`` plus every descendant NE.

    Descent follows parent→child tree links *and* ring membership: only
    a ring's leader carries the tree link to its parent, so reaching a
    leader pulls in its whole ring, and every ring member's children in
    turn (this is the paper's self-similarity — "if we consider each
    logical ring as one node, the RingNet hierarchy becomes a tree").
    The top ring itself is excluded: its members are the subtree roots.
    """
    out: List[NodeId] = []
    seen = {root}
    stack = [root]
    top_ring_id = h.top_ring_id
    while stack:
        node = stack.pop()
        out.append(node)
        ring_id = h.ring_of.get(node)
        if ring_id is not None and ring_id != top_ring_id:
            for member in h.rings[ring_id].members:
                if member not in seen:
                    seen.add(member)
                    stack.append(member)
        for child in reversed(h.children.get(node, ())):
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return out


def partition_hierarchy(
    h: Hierarchy,
    n_shards: int,
    attachments: Optional[Mapping[NodeId, NodeId]] = None,
) -> PartitionPlan:
    """Partition a hierarchy into ``n_shards`` BR-subtree groups.

    ``attachments`` maps each initial MH to its AP; every MH is placed
    on its AP's shard (the co-location invariant the partition tests
    pin).  MHs present in the hierarchy but absent from ``attachments``
    are rejected — an unplaced MH would make ownership ambiguous.
    """
    if n_shards < 1:
        raise PartitionError(f"n_shards must be >= 1, got {n_shards}")
    if h.top_ring_id is None:
        raise PartitionError("hierarchy has no top ring to partition")
    attachments = dict(attachments or {})

    brs = list(h.top_ring.members)
    subtrees: Dict[NodeId, List[NodeId]] = {
        br: _subtree_nodes(h, br) for br in brs
    }
    # MHs weigh into their AP's subtree.
    mhs_under: Dict[NodeId, List[NodeId]] = {br: [] for br in brs}
    ap_to_br: Dict[NodeId, NodeId] = {}
    for br, nodes in subtrees.items():
        for node in nodes:
            ap_to_br[node] = br
    for mh, ap in attachments.items():
        br = ap_to_br.get(ap)
        if br is None:
            raise PartitionError(f"MH {mh!r} attaches to unknown AP {ap!r}")
        mhs_under[br].append(mh)
    unplaced = [mh for mh in h.nodes_of_tier(Tier.MH) if mh not in attachments]
    if unplaced:
        raise PartitionError(
            f"MHs without an initial attachment cannot be placed: {unplaced}")

    # Greedy LPT: heaviest subtree first onto the lightest shard.
    # Deterministic: ties break on BR id, then on shard index.
    order = sorted(brs, key=lambda br: (-(len(subtrees[br])
                                          + len(mhs_under[br])), br))
    loads = [0] * n_shards
    shard_of: Dict[NodeId, int] = {}
    subtree_shard: Dict[NodeId, int] = {}
    for br in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        weight = len(subtrees[br]) + len(mhs_under[br])
        loads[target] += weight
        subtree_shard[br] = target
        for node in subtrees[br]:
            shard_of[node] = target
        for mh in mhs_under[br]:
            shard_of[mh] = target

    return PartitionPlan(
        n_shards=n_shards,
        shard_of=shard_of,
        subtree_shard=subtree_shard,
        weights=tuple(loads),
    )


def partition_spec(spec, n_shards: int) -> PartitionPlan:
    """Build the topology a spec describes and partition it.

    Only the full RingNet system is shardable — the baselines have no
    hierarchy to cut.
    """
    from repro.topology.builder import (HierarchySpec, build_deep_hierarchy,
                                        build_hierarchy,
                                        deep_initial_attachments,
                                        initial_attachments)

    if spec.system != "ringnet":
        raise PartitionError(
            f"sharded execution supports the ringnet system, "
            f"not {spec.system!r}")
    shape = spec.hierarchy
    if shape.depth > 1:
        h = build_deep_hierarchy(n_br=shape.n_br, ring_size=shape.ring_size,
                                 depth=shape.depth,
                                 aps_per_ag=shape.aps_per_ag,
                                 mhs_per_ap=shape.mhs_per_ap)
        attach = deep_initial_attachments(h)
    else:
        hs = HierarchySpec(n_br=shape.n_br, ags_per_br=shape.ags_per_br,
                           aps_per_ag=shape.aps_per_ag,
                           mhs_per_ap=shape.mhs_per_ap)
        h = build_hierarchy(hs)
        attach = initial_attachments(hs)
    return partition_hierarchy(h, n_shards, attach)


# ----------------------------------------------------------------------
# Cut analysis (computed against the *built* fabric)
# ----------------------------------------------------------------------
def cut_edges(fabric, plan: PartitionPlan) -> List[Tuple[NodeId, NodeId, float]]:
    """``(a, b, latency)`` for every fabric link crossing shards.

    Endpoints the plan does not cover (sources adopted later, churn
    MHs) are resolved through the fabric's shard context when present;
    at plan time only provisioned NE/MH links exist, which is exactly
    the set the lookahead must bound.
    """
    out: List[Tuple[NodeId, NodeId, float]] = []
    for link in fabric.links:
        sa = plan.shard_of.get(link.a)
        sb = plan.shard_of.get(link.b)
        if sa is None or sb is None or sa == sb:
            continue
        out.append((link.a, link.b, link.spec.latency))
    return out


def lookahead_of(cut: Sequence[Tuple[NodeId, NodeId, float]]) -> float:
    """Conservative window width: the minimum cut-link latency.

    Every cross-shard effect rides a message over a cut link, so
    nothing sent at time ``t`` can matter to another shard before
    ``t + lookahead`` — the bounded-lag guarantee the window protocol
    rests on.  A cut link with non-positive latency would break it, so
    that is a hard error, not a warning.  An empty cut (everything on
    one shard) has unbounded lookahead.
    """
    if not cut:
        return float("inf")
    lookahead = min(lat for _, _, lat in cut)
    if not lookahead > 0.0:
        offenders = [(a, b) for a, b, lat in cut if not lat > 0.0]
        raise PartitionError(
            f"cut links with non-positive latency break the lookahead "
            f"bound: {offenders}")
    return lookahead
