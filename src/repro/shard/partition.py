"""Topology partitioners and ownership rebalancers for sharded runs.

The partition unit is a **subtree** of the RingNet hierarchy — the
paper's self-similarity ("if we consider each logical ring as one node,
the RingNet hierarchy becomes a tree") means any closed subtree keeps
the chatty tree traffic (parent→child delivery, membership relay, path
reservations) shard-local, while cross-shard traffic rides provisioned
fabric links with positive latency — exactly what gives the
conservative runtime its lookahead.

Two partitioners implement the :class:`Partitioner` interface:

* :class:`LPTPartitioner` — the original greedy LPT over whole BR
  subtrees (heaviest first onto the lightest shard).
* :class:`BalancedPartitioner` (default) — starts from BR subtrees and,
  when the resulting load imbalance exceeds a threshold (or shards
  would sit empty), splits every BR subtree one ring level down into
  the BR core plus one unit per child-ring member, then re-runs LPT.
  On the symmetric topologies this turns a 2.0x max/min event split
  into ~1.0x without giving up co-location of any subtree's traffic.

Ownership is not static either: a :class:`Rebalancer` proposes MH
ownership *moves* at window boundaries, consumed by the runtime as
replicated control-plane decisions with explicit state handoff.  The
built-in :class:`LoadAwareRebalancer` chases MH→AP co-location (an MH
that handed off to an AP on another shard should follow it) while
refusing moves that would pile more load onto an already-hot shard.

Both partitioners and rebalancers are deterministic: every worker and
the coordinator derive identical plans and identical move lists from
identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (AbstractSet, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.net.address import NodeId
from repro.topology.hierarchy import Hierarchy
from repro.topology.tiers import Tier


class PartitionError(ValueError):
    """Raised when a topology cannot be partitioned as requested."""


@dataclass(frozen=True)
class PartitionPlan:
    """A complete shard assignment for one built topology.

    Attributes
    ----------
    n_shards:
        Requested shard count.  Shards may be empty when the topology
        has fewer partition units than shards (they simply idle).
    shard_of:
        Node id → shard index, covering every NE and every initially
        attached MH.  Entities created during the run (sources, churn
        MHs) are adopted into the map by the runtime via
        :meth:`repro.shard.context.ShardContext.adopt`.
    subtree_shard:
        Unit root id → shard index (the assignment's coarse form).
        Roots are BRs for coarse plans; a split plan adds the child
        subtree roots the balancer carved out.
    weights:
        Node count per shard (NEs + MHs), the balance the LPT greedy
        optimized.
    """

    n_shards: int
    shard_of: Dict[NodeId, int] = field(default_factory=dict)
    subtree_shard: Dict[NodeId, int] = field(default_factory=dict)
    weights: Tuple[int, ...] = ()

    def shard(self, node: NodeId) -> int:
        """Shard index of ``node`` (KeyError for unknown nodes)."""
        return self.shard_of[node]

    def nodes_of(self, shard: int) -> List[NodeId]:
        """All assigned nodes of one shard (sorted, for stable output).

        The per-shard lists are built once on first use — a single pass
        over ``shard_of`` — instead of rescanning the full map per
        shard (O(N·S) across the partition CLI and tests).
        """
        cache = self.__dict__.get("_nodes_cache")
        if cache is None:
            buckets: List[List[NodeId]] = [[] for _ in range(self.n_shards)]
            for node, s in self.shard_of.items():
                buckets[s].append(node)
            cache = tuple(tuple(sorted(b)) for b in buckets)
            object.__setattr__(self, "_nodes_cache", cache)
        return list(cache[shard])

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_shards": self.n_shards,
            "shard_of": dict(self.shard_of),
            "subtree_shard": dict(self.subtree_shard),
            "weights": list(self.weights),
        }


# ----------------------------------------------------------------------
# Partition units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Unit:
    """One indivisible assignment unit: a subtree root, its NEs, its MHs."""

    root: NodeId
    nodes: Tuple[NodeId, ...]
    mhs: Tuple[NodeId, ...]

    @property
    def weight(self) -> int:
        return len(self.nodes) + len(self.mhs)


def _subtree_nodes(
    h: Hierarchy,
    root: NodeId,
    skip_rings: Optional[AbstractSet[object]] = None,
) -> List[NodeId]:
    """``root`` plus every descendant NE.

    Descent follows parent→child tree links *and* ring membership: only
    a ring's leader carries the tree link to its parent, so reaching a
    leader pulls in its whole ring, and every ring member's children in
    turn.  Rings in ``skip_rings`` are not expanded — the top ring when
    cutting at BRs, plus the root's own ring when carving one member's
    subtree out of a child ring (its siblings are separate units).  The
    default skips exactly the root's own ring: the closed subtree.
    """
    if skip_rings is None:
        skip_rings = {h.ring_of.get(root)}
    out: List[NodeId] = []
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        ring_id = h.ring_of.get(node)
        if ring_id is not None and ring_id not in skip_rings:
            for member in h.rings[ring_id].members:
                if member not in seen:
                    seen.add(member)
                    stack.append(member)
        for child in reversed(h.children.get(node, ())):
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return out


def _attach_mhs(
    units: Sequence[Tuple[NodeId, List[NodeId]]],
    h: Hierarchy,
    attachments: Mapping[NodeId, NodeId],
) -> List[_Unit]:
    """Weigh every initially attached MH into the unit owning its AP."""
    unit_of_ap: Dict[NodeId, int] = {}
    for idx, (_, nodes) in enumerate(units):
        for node in nodes:
            unit_of_ap[node] = idx
    mhs: List[List[NodeId]] = [[] for _ in units]
    for mh, ap in attachments.items():
        idx = unit_of_ap.get(ap)
        if idx is None:
            raise PartitionError(f"MH {mh!r} attaches to unknown AP {ap!r}")
        mhs[idx].append(mh)
    unplaced = [mh for mh in h.nodes_of_tier(Tier.MH) if mh not in attachments]
    if unplaced:
        raise PartitionError(
            f"MHs without an initial attachment cannot be placed: {unplaced}")
    return [_Unit(root, tuple(nodes), tuple(sorted(ms)))
            for (root, nodes), ms in zip(units, mhs)]


def _br_units(
    h: Hierarchy,
    attachments: Mapping[NodeId, NodeId],
) -> List[_Unit]:
    """One unit per top-ring member: the whole BR subtree."""
    skip = {h.top_ring_id}
    pairs = [(br, _subtree_nodes(h, br, skip)) for br in h.top_ring.members]
    return _attach_mhs(pairs, h, attachments)


def _split_unit(h: Hierarchy, unit: _Unit,
                attachments: Mapping[NodeId, NodeId]) -> List[_Unit]:
    """Split one BR unit one ring level down.

    Yields the BR core (the root plus anything not below a child ring)
    and one unit per child-ring member's closed subtree.  A root with
    no child ring is returned unchanged — there is nothing to split.
    """
    top = h.top_ring_id
    child_roots: List[NodeId] = []
    for child in h.children.get(unit.root, ()):
        ring_id = h.ring_of.get(child)
        if ring_id is None or ring_id == top:
            continue
        for member in h.rings[ring_id].members:
            if member not in child_roots:
                child_roots.append(member)
    if not child_roots:
        return [unit]
    pairs = []
    covered = set()
    for root in child_roots:
        skip = {top, h.ring_of.get(root)}
        nodes = _subtree_nodes(h, root, skip)
        covered.update(nodes)
        pairs.append((root, nodes))
    core = [n for n in unit.nodes if n not in covered]
    pairs.insert(0, (unit.root, core))
    sub_attach = {mh: ap for mh, ap in attachments.items()
                  if mh in set(unit.mhs)}
    unit_of_ap: Dict[NodeId, int] = {}
    for idx, (_, nodes) in enumerate(pairs):
        for node in nodes:
            unit_of_ap[node] = idx
    mhs: List[List[NodeId]] = [[] for _ in pairs]
    for mh, ap in sub_attach.items():
        mhs[unit_of_ap[ap]].append(mh)
    return [_Unit(root, tuple(nodes), tuple(sorted(ms)))
            for (root, nodes), ms in zip(pairs, mhs)]


def _lpt_assign(units: Sequence[_Unit], n_shards: int) -> PartitionPlan:
    """Greedy LPT: heaviest unit first onto the lightest shard.

    Deterministic: ties break on unit root id, then on shard index.
    """
    order = sorted(units, key=lambda u: (-u.weight, u.root))
    loads = [0] * n_shards
    shard_of: Dict[NodeId, int] = {}
    subtree_shard: Dict[NodeId, int] = {}
    for unit in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        loads[target] += unit.weight
        subtree_shard[unit.root] = target
        for node in unit.nodes:
            shard_of[node] = target
        for mh in unit.mhs:
            shard_of[mh] = target
    return PartitionPlan(
        n_shards=n_shards,
        shard_of=shard_of,
        subtree_shard=subtree_shard,
        weights=tuple(loads),
    )


# ----------------------------------------------------------------------
# Partitioner interface
# ----------------------------------------------------------------------
class Partitioner:
    """Strategy interface: hierarchy + attachments → :class:`PartitionPlan`.

    Implementations must be deterministic — every worker derives the
    plan independently and the traces must stay byte-identical at every
    shard count, so any total, co-located assignment is correct and the
    choice is purely a load/locality tradeoff.
    """

    name: str = "base"

    def partition(
        self,
        h: Hierarchy,
        n_shards: int,
        attachments: Optional[Mapping[NodeId, NodeId]] = None,
    ) -> PartitionPlan:
        raise NotImplementedError

    def _check(self, h: Hierarchy, n_shards: int) -> None:
        if n_shards < 1:
            raise PartitionError(f"n_shards must be >= 1, got {n_shards}")
        if h.top_ring_id is None:
            raise PartitionError("hierarchy has no top ring to partition")


class LPTPartitioner(Partitioner):
    """Greedy LPT over whole BR subtrees (the original strategy)."""

    name = "lpt"

    def partition(self, h, n_shards, attachments=None):
        self._check(h, n_shards)
        units = _br_units(h, dict(attachments or {}))
        return _lpt_assign(units, n_shards)


class BalancedPartitioner(Partitioner):
    """LPT that splits BR subtrees when the coarse plan is lopsided.

    A BR-granular plan is kept when its max/min shard weight stays
    within ``max_imbalance`` — it has the best locality (no tree link
    is ever cut).  When it exceeds the threshold, or leaves shards
    empty, every BR unit is split one ring level down (BR core + one
    unit per child-ring member) and LPT re-runs over the finer units.
    New cut edges are provisioned WIRED tree/ring links with positive
    latency, so the lookahead bound survives.
    """

    name = "balanced"

    def __init__(self, max_imbalance: float = 1.25):
        if max_imbalance < 1.0:
            raise PartitionError(
                f"max_imbalance must be >= 1.0, got {max_imbalance}")
        self.max_imbalance = max_imbalance

    def partition(self, h, n_shards, attachments=None):
        self._check(h, n_shards)
        attachments = dict(attachments or {})
        units = _br_units(h, attachments)
        coarse = _lpt_assign(units, n_shards)
        if n_shards == 1 or self._balanced(coarse.weights):
            return coarse
        fine_units: List[_Unit] = []
        for unit in units:
            fine_units.extend(_split_unit(h, unit, attachments))
        return _lpt_assign(fine_units, n_shards)

    def _balanced(self, weights: Sequence[int]) -> bool:
        lo, hi = min(weights), max(weights)
        if lo <= 0:
            return False
        return hi <= self.max_imbalance * lo


#: Registry of partitioner strategies for CLI/config lookup.
PARTITIONERS: Dict[str, type] = {
    LPTPartitioner.name: LPTPartitioner,
    BalancedPartitioner.name: BalancedPartitioner,
}

DEFAULT_PARTITIONER = BalancedPartitioner.name


def get_partitioner(
    which: Union[None, str, Partitioner] = None,
) -> Partitioner:
    """Resolve a partitioner name (or pass an instance through)."""
    if which is None:
        which = DEFAULT_PARTITIONER
    if isinstance(which, Partitioner):
        return which
    cls = PARTITIONERS.get(which)
    if cls is None:
        raise PartitionError(
            f"unknown partitioner {which!r} "
            f"(have: {sorted(PARTITIONERS)})")
    return cls()


def partition_hierarchy(
    h: Hierarchy,
    n_shards: int,
    attachments: Optional[Mapping[NodeId, NodeId]] = None,
) -> PartitionPlan:
    """Partition a hierarchy into ``n_shards`` BR-subtree groups.

    The original LPT entry point, kept for callers that want the
    coarse BR-granular plan; :func:`partition_spec` routes through the
    pluggable :class:`Partitioner` registry instead.

    ``attachments`` maps each initial MH to its AP; every MH is placed
    on its AP's shard (the co-location invariant the partition tests
    pin).  MHs present in the hierarchy but absent from ``attachments``
    are rejected — an unplaced MH would make ownership ambiguous.
    """
    return LPTPartitioner().partition(h, n_shards, attachments)


def partition_spec(
    spec,
    n_shards: int,
    partitioner: Union[None, str, Partitioner] = None,
) -> PartitionPlan:
    """Build the topology a spec describes and partition it.

    Only the full RingNet system is shardable — the baselines have no
    hierarchy to cut.
    """
    from repro.topology.builder import (HierarchySpec, build_deep_hierarchy,
                                        build_hierarchy,
                                        deep_initial_attachments,
                                        initial_attachments)

    if spec.system != "ringnet":
        raise PartitionError(
            f"sharded execution supports the ringnet system, "
            f"not {spec.system!r}")
    shape = spec.hierarchy
    if shape.depth > 1:
        h = build_deep_hierarchy(n_br=shape.n_br, ring_size=shape.ring_size,
                                 depth=shape.depth,
                                 aps_per_ag=shape.aps_per_ag,
                                 mhs_per_ap=shape.mhs_per_ap)
        attach = deep_initial_attachments(h)
    else:
        hs = HierarchySpec(n_br=shape.n_br, ags_per_br=shape.ags_per_br,
                           aps_per_ag=shape.aps_per_ag,
                           mhs_per_ap=shape.mhs_per_ap)
        h = build_hierarchy(hs)
        attach = initial_attachments(hs)
    return get_partitioner(partitioner).partition(h, n_shards, attach)


# ----------------------------------------------------------------------
# Cut analysis (computed against the *built* fabric)
# ----------------------------------------------------------------------
def cut_edges(fabric, plan: PartitionPlan) -> List[Tuple[NodeId, NodeId, float]]:
    """``(a, b, latency)`` for every fabric link crossing shards.

    Endpoints the plan does not cover (sources adopted later, churn
    MHs) are resolved through the fabric's shard context when present;
    at plan time only provisioned NE/MH links exist, which is exactly
    the set the lookahead must bound.
    """
    out: List[Tuple[NodeId, NodeId, float]] = []
    for link in fabric.links:
        sa = plan.shard_of.get(link.a)
        sb = plan.shard_of.get(link.b)
        if sa is None or sb is None or sa == sb:
            continue
        out.append((link.a, link.b, link.spec.latency))
    return out


def lookahead_of(cut: Sequence[Tuple[NodeId, NodeId, float]]) -> float:
    """Conservative window width: the minimum cut-link latency.

    Every cross-shard effect rides a message over a cut link, so
    nothing sent at time ``t`` can matter to another shard before
    ``t + lookahead`` — the bounded-lag guarantee the window protocol
    rests on.  A cut link with non-positive latency would break it, so
    that is a hard error, not a warning.  An empty cut (everything on
    one shard) has unbounded lookahead.
    """
    if not cut:
        return float("inf")
    lookahead = min(lat for _, _, lat in cut)
    if not lookahead > 0.0:
        offenders = [(a, b) for a, b, lat in cut if not lat > 0.0]
        raise PartitionError(
            f"cut links with non-positive latency break the lookahead "
            f"bound: {offenders}")
    return lookahead


def latency_matrix(
    fabric,
    plan: PartitionPlan,
    wireless_floor: Optional[float] = None,
) -> List[List[float]]:
    """Per-shard-pair lookahead: ``L[j][i]`` bounds influence j → i.

    Nothing shard *j* does at time ``t`` can affect shard *i* before
    ``t + L[j][i]``: every direct cross-shard effect rides a fabric
    link, so the bound for a pair is the minimum latency over links
    crossing it.  Two terms contribute:

    * provisioned links crossing the cut right now, and
    * ``wireless_floor`` — the facade's wireless spec latency — on
      *every* pair, because the one kind of link minted mid-run is an
      MH↔AP attachment at exactly that spec (``handoff`` /
      ``add_mobile_host``), and a roaming MH can wire any shard pair
      together.  With the floor in place the matrix is invariant for
      the whole run and every worker derives it identically at build
      time — no recompute protocol needed.

    Pairs with no link and no floor are ``inf`` (never constrain); the
    diagonal is 0.  Non-positive entries would break the bounded-lag
    guarantee and raise :class:`PartitionError`.
    """
    n = plan.n_shards
    inf = float("inf")
    mat = [[0.0 if i == j else inf for i in range(n)] for j in range(n)]
    for a, b, lat in cut_edges(fabric, plan):
        if not lat > 0.0:
            raise PartitionError(
                f"cut link ({a!r}, {b!r}) with non-positive latency {lat} "
                f"breaks the lookahead bound")
        sa, sb = plan.shard_of[a], plan.shard_of[b]
        if lat < mat[sa][sb]:
            mat[sa][sb] = lat
            mat[sb][sa] = lat
    if wireless_floor is not None:
        if not wireless_floor > 0.0:
            raise PartitionError(
                f"wireless floor latency must be positive, "
                f"got {wireless_floor}")
        for j in range(n):
            for i in range(n):
                if i != j and wireless_floor < mat[j][i]:
                    mat[j][i] = wireless_floor
    return mat


def min_lookahead(matrix: Sequence[Sequence[float]]) -> float:
    """Smallest finite off-diagonal entry (the old scalar lookahead)."""
    best = float("inf")
    for j, row in enumerate(matrix):
        for i, lat in enumerate(row):
            if i != j and lat < best:
                best = lat
    return best


# ----------------------------------------------------------------------
# Rebalancers: ownership moves at window boundaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MoveProposal:
    """One proposed ownership move, applied at a rebalance barrier."""

    mh: NodeId
    from_shard: int
    to_shard: int


class Rebalancer:
    """Strategy interface: observed load + handoff hints → moves.

    ``propose`` must be a pure, deterministic function of its inputs —
    the coordinator calls it once per decision point and replicates the
    result to every worker, and reproducibility of a run's rebalance
    log depends on it.  Implementations may only move MHs (NEs anchor
    the partition's tree locality), and proposals must respect MH→AP
    co-location: an MH may move only to the shard owning its current
    AP.
    """

    name: str = "base"

    #: Minimum virtual time between decision points (ms).
    min_interval: float = 250.0

    def propose(
        self,
        pending: Mapping[NodeId, Tuple[int, int]],
        shard_events: Sequence[int],
    ) -> List[MoveProposal]:
        """Decide moves.

        ``pending`` maps each displaced MH to ``(owner_shard,
        ap_shard)`` — the co-location deficits accumulated from the
        owning shards' migration notes.  ``shard_events`` is the
        cumulative per-shard event count (the observed load signal).
        """
        raise NotImplementedError


class LoadAwareRebalancer(Rebalancer):
    """Chase MH→AP co-location, unless the target shard is hot.

    Every displaced MH (owned on one shard, attached to an AP on
    another) is proposed to follow its AP — that re-localizes its
    wireless traffic — except when the target shard's share of
    processed events exceeds ``overload_factor`` × the mean while the
    current owner is no busier: then the MH stays put and its traffic
    keeps flowing over the cut, which is cheaper than feeding a hot
    shard more work.  Proposals iterate MHs in sorted order, so the
    move list is deterministic.
    """

    name = "load-aware"

    def __init__(self, min_interval: float = 250.0,
                 overload_factor: float = 1.5):
        self.min_interval = min_interval
        self.overload_factor = overload_factor

    def propose(self, pending, shard_events):
        moves: List[MoveProposal] = []
        n = len(shard_events)
        mean = (sum(shard_events) / n) if n else 0.0
        for mh in sorted(pending):
            frm, to = pending[mh]
            if frm == to:
                continue
            if (mean > 0
                    and shard_events[to] > self.overload_factor * mean
                    and shard_events[to] >= shard_events[frm]):
                continue
            moves.append(MoveProposal(mh, frm, to))
        return moves


#: Registry of rebalancer strategies ("none" disables rebalancing).
REBALANCERS: Dict[str, Optional[type]] = {
    LoadAwareRebalancer.name: LoadAwareRebalancer,
    "none": None,
}

DEFAULT_REBALANCER = LoadAwareRebalancer.name


def get_rebalancer(
    which: Union[None, str, Rebalancer] = None,
) -> Optional[Rebalancer]:
    """Resolve a rebalancer name; ``"none"`` → None (disabled)."""
    if which is None:
        which = DEFAULT_REBALANCER
    if isinstance(which, Rebalancer):
        return which
    if which not in REBALANCERS:
        raise PartitionError(
            f"unknown rebalancer {which!r} (have: {sorted(REBALANCERS)})")
    cls = REBALANCERS[which]
    return None if cls is None else cls()
