"""Per-worker shard context: ownership, exports, probes, migrations.

One :class:`ShardContext` is installed on a worker's simulator
(``sim.shard``) before the scenario is built.  It is the single object
the rest of the codebase talks to when running sharded:

* the engine's gate asks :meth:`is_local` to drop events owned by
  entities living on other shards;
* the trace gate suppresses emissions that are another shard's to make
  (control-plane records are shard 0's job — every shard executes them,
  exactly one may speak);
* the fabric calls :meth:`export` instead of scheduling an arrival when
  the destination is remote;
* scenario drivers call :meth:`register_probe` for events whose
  decision needs globally-gathered state (churn membership,
  token-holder crash), and :meth:`consume_probe` for the merged answer;
* the facade calls :meth:`adopt` when it creates entities mid-run
  (sources, churn MHs) so ownership stays total.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.address import NodeId
from repro.shard.partition import PartitionPlan


class ShardContext:
    """Everything one worker knows about the sharded world."""

    def __init__(self, shard_id: int, plan: PartitionPlan, sim):
        self.shard_id = shard_id
        self.n_shards = plan.n_shards
        self.sim = sim
        self._shard_of: Dict[NodeId, int] = dict(plan.shard_of)
        #: Cross-shard messages produced since the last sync, batched
        #: per destination shard: ``dest → [(time, key, dst, msg), …]``.
        #: Batches travel the coordinator pipe as one object per
        #: destination instead of one per message.
        self.outbox: Dict[int, List[Tuple[float, int, NodeId, Any]]] = {}
        self._outbox_depth = 0
        #: Pending synchronization probes: ``(time, key, kind, event)``.
        self._probes: List[Tuple[float, int, str, Any]] = []
        self._probe_result: Any = None
        #: Probe gather functions by kind, bound by the runtime.
        self.gatherers: Dict[str, Callable[[], Any]] = {}
        #: Scalar lookahead floor (minimum over the matrix), kept for
        #: reporting; the per-destination row below is what the export
        #: bound actually checks.
        self.lookahead: float = 0.0
        #: Per-destination lookahead row ``L[self][dest]`` (set by the
        #: runtime once the fabric exists); asserts the bounded-lag
        #: invariant on every export.
        self.lookahead_to: Optional[List[float]] = None
        #: Cross-shard handoff notes since the last sync, recorded by
        #: the owning shard: ``(time, mh, old_ap, new_ap, new_shard)``.
        self.migration_notes: List[Tuple[float, NodeId, NodeId, NodeId, int]] = []
        self.migrations = 0
        self.exported = 0
        self.imported = 0
        #: Peak outbox depth between syncs (how bursty cross-shard
        #: traffic gets before a window boundary drains it).
        self.export_q_peak = 0

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def shard_of(self, node: NodeId) -> int:
        """Shard index owning ``node`` (strict: unknown ids are bugs)."""
        return self._shard_of[node]

    def is_local(self, node: NodeId) -> bool:
        """True when this shard owns ``node``."""
        return self._shard_of[node] == self.shard_id

    def adopt(self, node: NodeId, alongside: NodeId) -> None:
        """Register a new entity on the shard of an existing one.

        Called from replicated control code (``add_source``,
        ``add_mobile_host``), so every shard's map stays identical.
        """
        self._shard_of[node] = self._shard_of[alongside]

    def apply_moves(self, moves) -> None:
        """Apply rebalance ownership moves to the local map.

        Called on *every* shard at a rebalance barrier (the decision is
        replicated), so the maps stay identical; the state handoff
        itself happens only on the two shards involved.
        """
        for mv in moves:
            self._shard_of[mv.mh] = mv.to_shard

    def emission_gate(self) -> bool:
        """Trace-bus gate: may the current context emit?

        Entity contexts emit on the owner's shard; control-plane
        contexts run replicated everywhere, so exactly one shard —
        shard 0 — speaks for them.
        """
        owner = self.sim._ctx_owner
        if owner is None:
            return self.shard_id == 0
        return self._shard_of[owner] == self.shard_id

    # ------------------------------------------------------------------
    # Cross-shard messages
    # ------------------------------------------------------------------
    def export(self, time: float, delay: float, key: int, dst: NodeId,
               msg: Any) -> None:
        """Queue a message arrival for another shard.

        ``key`` is the causal key the sequential engine would have given
        the arrival event (the fabric minted it from the sending
        context), so the importing shard slots the event into exactly
        the sequential position.  ``delay`` is the fabric's computed
        transit delay — checked directly rather than re-derived as
        ``time - now``, which loses a ulp to float rounding exactly when
        the delay equals the lookahead.
        """
        dest = self._shard_of[dst]
        bound = (self.lookahead_to[dest] if self.lookahead_to is not None
                 else self.lookahead)
        if delay < bound:
            raise RuntimeError(
                f"bounded-lag violation: export to shard {dest} arriving "
                f"{delay}ms ahead, lookahead {bound}ms — partition "
                f"assumption broken")
        self.outbox.setdefault(dest, []).append((time, key, dst, msg))
        self.exported += 1
        self._outbox_depth += 1
        if self._outbox_depth > self.export_q_peak:
            self.export_q_peak = self._outbox_depth
            obs = self.sim.obs
            if obs is not None:
                obs.gauge_max("shard.export_q_peak", self._outbox_depth)

    def take_outbox(self) -> Dict[int, List[Tuple[float, int, NodeId, Any]]]:
        """Drain the per-destination export batches queued since last sync."""
        out, self.outbox = self.outbox, {}
        self._outbox_depth = 0
        return out

    def take_migration_notes(self):
        out, self.migration_notes = self.migration_notes, []
        return out

    # ------------------------------------------------------------------
    # Synchronization probes
    # ------------------------------------------------------------------
    def register_probe(self, event, kind: str) -> None:
        """Mark a scheduled control event as needing a global gather.

        The runtime forces a synchronization point exactly at the
        event's ``(time, key)``: all shards pause there, exchange the
        ``kind`` gatherer's data, and only then execute the event —
        replicated, with identical inputs.
        """
        self._probes.append((event.time, event.key, kind, event))

    def peek_probe(self) -> Optional[Tuple[float, int, str, Any]]:
        """Earliest live probe, discarding cancelled ones."""
        while self._probes:
            entry = min(self._probes)
            if entry[3].cancelled:
                self._probes.remove(entry)
                continue
            return entry
        return None

    def pop_probe(self) -> None:
        if self._probes:
            self._probes.remove(min(self._probes))

    def gather(self, kind: str) -> Any:
        """This shard's contribution to a probe of ``kind``."""
        return self.gatherers[kind]()

    def stash_probe(self, merged: Any) -> None:
        self._probe_result = merged

    def consume_probe(self) -> Any:
        """The merged probe data for the event executing right now."""
        result, self._probe_result = self._probe_result, None
        return result
