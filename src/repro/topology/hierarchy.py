"""The RingNet hierarchy: rings wired into a tree.

Invariants maintained (checked by :meth:`Hierarchy.validate`):

* exactly one *top ring* (the BR ring, where ordering happens);
* every non-top ring's **leader** is the child of exactly one NE in the
  tier above (the "interacting with upper tiers" role of leaders);
* every AP is the child of exactly one AG;
* candidate-contactor tables (paper §3: "each AP, AG, and BR [has] some
  knowledge of its candidate contactors") are kept per node for the
  self-organization and handoff paths — at most one candidate is *active*
  at a time.

The per-node :class:`NeighborView` is the exact information set the paper
allows an NE to hold: "each NE in the hierarchy only maintains
information about its possible leader, previous, next, parent, and
children neighbors".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.address import NodeId
from repro.topology.ring import LogicalRing
from repro.topology.tiers import Tier


@dataclass
class NeighborView:
    """Everything one NE is allowed to know about the topology."""

    current: NodeId
    tier: Tier
    ring_id: Optional[str] = None
    leader: Optional[NodeId] = None
    previous: Optional[NodeId] = None
    next: Optional[NodeId] = None
    parent: Optional[NodeId] = None
    children: List[NodeId] = field(default_factory=list)

    @property
    def is_leader(self) -> bool:
        """Whether this NE leads its ring."""
        return self.leader == self.current

    @property
    def in_top_ring(self) -> bool:
        """Whether this NE sits in the top (ordering) ring."""
        return self.tier is Tier.BR


class Hierarchy:
    """Mutable ring-of-rings topology."""

    def __init__(self) -> None:
        self.rings: Dict[str, LogicalRing] = {}
        self.top_ring_id: Optional[str] = None
        self.tier_of: Dict[NodeId, Tier] = {}
        self.ring_of: Dict[NodeId, str] = {}
        # parent[x] = NE one tier up whose child x is (ring leaders & APs).
        self.parent: Dict[NodeId, NodeId] = {}
        self.children: Dict[NodeId, List[NodeId]] = {}
        # Candidate contactors (§3): configured, mostly-static fallbacks.
        self.candidate_parents: Dict[NodeId, List[NodeId]] = {}
        self.candidate_neighbors: Dict[NodeId, List[NodeId]] = {}

    # ------------------------------------------------------------------
    # Construction primitives
    # ------------------------------------------------------------------
    def add_ring(self, ring: LogicalRing, tier: Tier, top: bool = False) -> None:
        """Register a ring; each member is recorded at ``tier``."""
        if ring.ring_id in self.rings:
            raise ValueError(f"duplicate ring id {ring.ring_id!r}")
        self.rings[ring.ring_id] = ring
        for node in ring:
            self.tier_of[node] = tier
            self.ring_of[node] = ring.ring_id
        if top:
            if self.top_ring_id is not None:
                raise ValueError("hierarchy already has a top ring")
            self.top_ring_id = ring.ring_id

    def add_node(self, node: NodeId, tier: Tier) -> None:
        """Register a non-ring node (AP or MH tier entity)."""
        if node in self.tier_of:
            raise ValueError(f"duplicate node {node!r}")
        self.tier_of[node] = tier

    def set_parent(self, child: NodeId, parent: NodeId) -> None:
        """Wire a parent→child tree link (leader-of-ring or AP child)."""
        old = self.parent.get(child)
        if old is not None:
            self.children[old].remove(child)
        self.parent[child] = parent
        self.children.setdefault(parent, []).append(child)

    def drop_parent(self, child: NodeId) -> None:
        """Remove the tree link above ``child`` (if any)."""
        old = self.parent.pop(child, None)
        if old is not None:
            self.children[old].remove(child)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def top_ring(self) -> LogicalRing:
        """The single top (ordering) ring."""
        if self.top_ring_id is None:
            raise ValueError("hierarchy has no top ring")
        return self.rings[self.top_ring_id]

    def ring_containing(self, node: NodeId) -> Optional[LogicalRing]:
        """The ring ``node`` belongs to, or None."""
        rid = self.ring_of.get(node)
        return self.rings[rid] if rid is not None else None

    def nodes_of_tier(self, tier: Tier) -> List[NodeId]:
        """All registered node ids of one tier (sorted)."""
        return sorted(n for n, t in self.tier_of.items() if t is tier)

    def neighbor_view(self, node: NodeId) -> NeighborView:
        """Build the paper-limited neighbor view for one NE."""
        tier = self.tier_of[node]
        view = NeighborView(current=node, tier=tier)
        ring = self.ring_containing(node)
        if ring is not None and node in ring:
            view.ring_id = ring.ring_id
            view.leader = ring.leader
            if ring.size > 1:
                view.previous = ring.prev_of(node)
                view.next = ring.next_of(node)
        view.parent = self.parent.get(node)
        view.children = list(self.children.get(node, ()))
        return view

    def all_views(self) -> Dict[NodeId, NeighborView]:
        """Neighbor views for every NE (not MHs)."""
        return {
            n: self.neighbor_view(n)
            for n, t in self.tier_of.items()
            if t is not Tier.MH
        }

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise AssertionError when a structural invariant is broken."""
        assert self.top_ring_id is not None, "no top ring"
        for rid, ring in self.rings.items():
            assert ring.leader in ring, f"ring {rid}: leader not a member"
            for node in ring:
                assert self.ring_of.get(node) == rid, f"{node}: ring_of mismatch"
            if rid != self.top_ring_id:
                assert ring.leader in self.parent, (
                    f"ring {rid}: leader {ring.leader} has no parent NE"
                )
        for child, parent in self.parent.items():
            assert child in self.children.get(parent, ()), (
                f"tree link {parent}->{child} not mirrored"
            )
            assert self.tier_of[parent].value < self.tier_of[child].value or True
        for parent, kids in self.children.items():
            assert len(set(kids)) == len(kids), f"{parent}: duplicate children"
            for child in kids:
                assert self.parent.get(child) == parent, (
                    f"tree link {parent}->{child} not mirrored back"
                )
        # APs (non-ring NEs below AG rings) must have parents.
        for ap in self.nodes_of_tier(Tier.AP):
            assert ap in self.parent, f"AP {ap} is orphaned"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Hierarchy rings={len(self.rings)} "
            f"nodes={len(self.tier_of)} top={self.top_ring_id}>"
        )
