"""The four tiers of the RingNet hierarchy (paper §3, Figure 1)."""

from __future__ import annotations

import enum


class Tier(enum.Enum):
    """BRT / AGT / APT / MHT.

    * ``BR`` — Border Routers: communicate among administrative domains;
      the (single) BR ring is the *top logical ring* where total ordering
      happens.
    * ``AG`` — Access Gateways: bridge wireless and wired networks;
      organized into logical rings, one ring per parent BR.
    * ``AP`` — Access Proxies: talk directly to mobile hosts; children of
      AGs, not organized into rings.
    * ``MH`` — Mobile Hosts: leaf endpoints, attach to one AP at a time.
    """

    BR = "br"
    AG = "ag"
    AP = "ap"
    MH = "mh"

    @property
    def in_ring(self) -> bool:
        """Whether entities of this tier are organized into logical rings."""
        return self in (Tier.BR, Tier.AG)

    @property
    def prefix(self) -> str:
        """Node-id prefix used by :func:`repro.net.address.make_id`."""
        return self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
