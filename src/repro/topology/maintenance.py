"""Topology maintenance: the mutation side of the membership protocol.

The paper delegates topology upkeep to the membership protocol and keeps
only its *interface* visible to the multicast layer: when the maintenance
algorithm runs it may emit a **Token-Loss** or **Multiple-Token** message
to the multicast protocol (§4.2.1).  This module implements the mutations
(node removal with ring splice and leader re-election, node join, top-ring
split and merge, child re-parenting to candidates) and notifies listeners
with structured :class:`ChangeRecord` events; the protocol layer
translates those into neighbor-pointer updates and token signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.net.address import NodeId
from repro.topology.hierarchy import Hierarchy
from repro.topology.ring import LogicalRing
from repro.topology.tiers import Tier


@dataclass(frozen=True)
class ChangeRecord:
    """One topology mutation, as reported to listeners.

    Kinds: ``ring_splice``, ``leader_change``, ``reparent``,
    ``node_removed``, ``node_joined``, ``top_ring_split``,
    ``top_ring_merged``, ``ring_dropped``.
    """

    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.details[key]


Listener = Callable[[ChangeRecord], None]


class TopologyMaintenance:
    """Mutates a :class:`Hierarchy` and broadcasts change records."""

    def __init__(self, hierarchy: Hierarchy):
        self.h = hierarchy
        self.listeners: List[Listener] = []
        self.history: List[ChangeRecord] = []

    def subscribe(self, fn: Listener) -> None:
        """Register a change listener (the protocol layer does this)."""
        self.listeners.append(fn)

    def _emit(self, kind: str, **details: Any) -> ChangeRecord:
        rec = ChangeRecord(kind, details)
        self.history.append(rec)
        for fn in self.listeners:
            fn(rec)
        return rec

    # ------------------------------------------------------------------
    # Node removal (failure or leave of an NE)
    # ------------------------------------------------------------------
    def remove_ne(self, node: NodeId) -> List[ChangeRecord]:
        """Remove an NE: splice its ring, re-elect leaders, re-parent kids.

        Children of the removed node are re-parented to the first
        available candidate parent (configured per child); children with
        no surviving candidate are left orphaned and reported.
        """
        records: List[ChangeRecord] = []
        h = self.h
        if node not in h.tier_of:
            raise KeyError(f"unknown node {node!r}")

        ring = h.ring_containing(node)
        was_leader = ring is not None and ring.leader == node

        # Re-parent children first (they need a new upstream).
        for child in list(h.children.get(node, ())):
            new_parent = self._pick_candidate_parent(child, exclude=node)
            h.drop_parent(child)
            if new_parent is not None:
                h.set_parent(child, new_parent)
            records.append(
                self._emit("reparent", child=child, old=node, new=new_parent)
            )

        if ring is not None:
            old_leader = ring.leader
            if ring.size == 1:
                # Ring disappears entirely.
                h.drop_parent(node)
                del h.rings[ring.ring_id]
                if h.top_ring_id == ring.ring_id:
                    h.top_ring_id = None
                records.append(self._emit("ring_dropped", ring=ring.ring_id))
            else:
                ring.remove_member(node)
                records.append(
                    self._emit(
                        "ring_splice", ring=ring.ring_id, removed=node,
                        was_leader=was_leader,
                    )
                )
                if was_leader:
                    # New leader inherits the upstream tree link.
                    parent = h.parent.get(node)
                    h.drop_parent(node)
                    if parent is not None and ring.ring_id != h.top_ring_id:
                        h.set_parent(ring.leader, parent)
                    records.append(
                        self._emit(
                            "leader_change", ring=ring.ring_id,
                            old=old_leader, new=ring.leader,
                        )
                    )
            h.ring_of.pop(node, None)
        else:
            h.drop_parent(node)

        del h.tier_of[node]
        h.children.pop(node, None)
        h.candidate_parents.pop(node, None)
        h.candidate_neighbors.pop(node, None)
        records.append(self._emit("node_removed", node=node, was_leader=was_leader))
        return records

    def _pick_candidate_parent(self, child: NodeId, exclude: NodeId) -> Optional[NodeId]:
        for cand in self.h.candidate_parents.get(child, ()):
            if cand != exclude and cand in self.h.tier_of:
                return cand
        return None

    # ------------------------------------------------------------------
    # Node join (an NE attaching to an existing hierarchy)
    # ------------------------------------------------------------------
    def join_ring(self, node: NodeId, ring_id: str, tier: Tier,
                  after: Optional[NodeId] = None) -> ChangeRecord:
        """Insert ``node`` into an existing ring (self-organization)."""
        ring = self.h.rings[ring_id]
        ring.add_member(node, after=after)
        self.h.tier_of[node] = tier
        self.h.ring_of[node] = ring_id
        return self._emit("node_joined", node=node, ring=ring_id)

    def attach_ap(self, ap: NodeId, parent_ag: NodeId,
                  candidates: Sequence[NodeId] = ()) -> ChangeRecord:
        """Register a new AP under an AG (builds a multicast path)."""
        if ap not in self.h.tier_of:
            self.h.add_node(ap, Tier.AP)
        self.h.set_parent(ap, parent_ag)
        if candidates:
            self.h.candidate_parents[ap] = list(candidates)
        return self._emit("node_joined", node=ap, ring=None, parent=parent_ag)

    # ------------------------------------------------------------------
    # Top-ring split / merge (drives Token-Loss / Multiple-Token)
    # ------------------------------------------------------------------
    def split_top_ring(self, group_a: Sequence[NodeId],
                       group_b: Sequence[NodeId]) -> ChangeRecord:
        """Split the top ring into two BR rings (network partition).

        Both halves keep operating; ``group_a``'s ring remains the
        nominal top ring.  The protocol layer reacts by regenerating a
        token in the half that lost it.
        """
        h = self.h
        top = h.top_ring
        members = set(top.members)
        if set(group_a) | set(group_b) != members or set(group_a) & set(group_b):
            raise ValueError("split groups must partition the top ring")
        old_id = top.ring_id
        del h.rings[old_id]
        ring_a = LogicalRing(f"{old_id}.a", list(group_a))
        ring_b = LogicalRing(f"{old_id}.b", list(group_b))
        h.rings[ring_a.ring_id] = ring_a
        h.rings[ring_b.ring_id] = ring_b
        for n in group_a:
            h.ring_of[n] = ring_a.ring_id
        for n in group_b:
            h.ring_of[n] = ring_b.ring_id
        h.top_ring_id = ring_a.ring_id
        return self._emit(
            "top_ring_split", ring_a=ring_a.ring_id, ring_b=ring_b.ring_id,
            group_a=list(group_a), group_b=list(group_b),
        )

    def merge_top_rings(self, ring_a_id: str, ring_b_id: str) -> ChangeRecord:
        """Merge two BR rings back into one top ring.

        Emits ``top_ring_merged``; the protocol layer must then run its
        Multiple-Token resolution because each half may hold a live token.
        """
        h = self.h
        ring_a = h.rings.pop(ring_a_id)
        ring_b = h.rings.pop(ring_b_id)
        merged = LogicalRing("ring:br", ring_a.members + ring_b.members,
                             leader=ring_a.leader)
        h.rings[merged.ring_id] = merged
        for n in merged:
            h.ring_of[n] = merged.ring_id
        h.top_ring_id = merged.ring_id
        return self._emit(
            "top_ring_merged", ring=merged.ring_id,
            from_a=ring_a_id, from_b=ring_b_id, members=merged.members,
        )
