"""A logical ring with a leader.

Ring order is the list order; the successor of the last member is the
first.  A ring is valid with a single member (it is then its own next and
previous — the protocol handles this degenerate case by skipping
self-forwarding).  Every ring designates one **leader**, the member that
interacts with the upper tier (receives ordered messages from the parent
NE and injects them into the ring).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.net.address import NodeId


class LogicalRing:
    """Ordered membership of one logical ring."""

    def __init__(self, ring_id: str, members: Sequence[NodeId], leader: Optional[NodeId] = None):
        if not members:
            raise ValueError(f"ring {ring_id!r} needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError(f"ring {ring_id!r} has duplicate members")
        self.ring_id = ring_id
        self._members: List[NodeId] = list(members)
        self.leader: NodeId = leader if leader is not None else self._members[0]
        if self.leader not in self._members:
            raise ValueError(f"leader {self.leader!r} not a member of ring {ring_id!r}")

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[NodeId]:
        """Members in ring order (copy; mutate via add/remove)."""
        return list(self._members)

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self._members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._members

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    def index_of(self, node: NodeId) -> int:
        """Position of ``node`` in ring order (ValueError when absent)."""
        return self._members.index(node)

    def next_of(self, node: NodeId) -> NodeId:
        """Ring successor (the node itself in a singleton ring)."""
        i = self._members.index(node)
        return self._members[(i + 1) % len(self._members)]

    def prev_of(self, node: NodeId) -> NodeId:
        """Ring predecessor (the node itself in a singleton ring)."""
        i = self._members.index(node)
        return self._members[(i - 1) % len(self._members)]

    # ------------------------------------------------------------------
    def add_member(self, node: NodeId, after: Optional[NodeId] = None) -> None:
        """Splice ``node`` in after ``after`` (or append at the end)."""
        if node in self._members:
            raise ValueError(f"{node!r} already in ring {self.ring_id!r}")
        if after is None:
            self._members.append(node)
        else:
            self._members.insert(self._members.index(after) + 1, node)

    def remove_member(self, node: NodeId) -> None:
        """Splice ``node`` out; re-elect a leader if it led the ring.

        Leader re-election policy: the removed leader's successor takes
        over (deterministic and local — its neighbors know it).
        """
        if len(self._members) == 1:
            raise ValueError(f"cannot empty ring {self.ring_id!r}; drop the ring instead")
        if node == self.leader:
            self.leader = self.next_of(node)
        self._members.remove(node)

    def set_leader(self, node: NodeId) -> None:
        """Designate ``node`` (a member) as leader."""
        if node not in self._members:
            raise ValueError(f"{node!r} not a member of ring {self.ring_id!r}")
        self.leader = node

    def rotate_to(self, node: NodeId) -> None:
        """Rotate the member list so ``node`` is first (cosmetic; order
        relations are unchanged)."""
        i = self._members.index(node)
        self._members = self._members[i:] + self._members[:i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogicalRing {self.ring_id} n={self.size} leader={self.leader}>"
