"""RingNet topology: tiers, logical rings, and the ring-of-rings hierarchy.

The hierarchy (paper Figure 1) is pure data — node ids, ring membership
order, leader designation, and parent/child links — deliberately decoupled
from the fabric and from protocol state.  Builders
(:mod:`repro.topology.builder`) construct regular or randomized
hierarchies and provision the matching fabric links; maintenance
operations (:mod:`repro.topology.maintenance`) mutate the hierarchy the
way the paper's (omitted) membership/topology-maintenance protocol would:
splice a failed node out of its ring, re-elect leaders, merge rings —
returning change records the protocol layer turns into neighbor-pointer
updates and Token-Loss / Multiple-Token signals.
"""

from repro.topology.tiers import Tier
from repro.topology.ring import LogicalRing
from repro.topology.hierarchy import Hierarchy, NeighborView
from repro.topology.builder import HierarchySpec, build_hierarchy, provision_links
from repro.topology.maintenance import TopologyMaintenance, ChangeRecord

__all__ = [
    "Tier",
    "LogicalRing",
    "Hierarchy",
    "NeighborView",
    "HierarchySpec",
    "build_hierarchy",
    "provision_links",
    "TopologyMaintenance",
    "ChangeRecord",
]
