"""Builders: regular (spec-driven) hierarchies and their fabric links.

The regular builder realizes the shape of paper Figure 1: one top ring of
``n_br`` Border Routers; under each BR one AG ring of ``ags_per_br``
Access Gateways whose leader is the BR's child; under each AG
``aps_per_ag`` Access Proxies; under each AP ``mhs_per_ap`` Mobile Hosts
initially attached.  Candidate-contactor tables are filled so the handoff
and self-organization paths have fallbacks to try:

* each AP's candidate parents: its AG plus the AG ring's other members;
* each AG's candidate neighbors: the other members of its ring;
* each AG's candidate parents: its ring's parent BR plus the BR ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.address import NodeId, make_id
from repro.net.fabric import Fabric
from repro.net.link import LinkSpec, WIRED, WIRELESS
from repro.topology.hierarchy import Hierarchy
from repro.topology.ring import LogicalRing
from repro.topology.tiers import Tier


@dataclass(frozen=True)
class HierarchySpec:
    """Shape parameters for a regular RingNet hierarchy.

    ``mhs_per_ap`` may be zero; mobile hosts can instead be attached later
    by the mobility layer.
    """

    n_br: int = 3
    ags_per_br: int = 3
    aps_per_ag: int = 2
    mhs_per_ap: int = 2

    def __post_init__(self) -> None:
        if self.n_br < 1:
            raise ValueError("need at least one BR")
        if self.ags_per_br < 1:
            raise ValueError("need at least one AG per BR")
        if self.aps_per_ag < 0 or self.mhs_per_ap < 0:
            raise ValueError("counts must be non-negative")

    @property
    def n_ag(self) -> int:
        """Total number of Access Gateways."""
        return self.n_br * self.ags_per_br

    @property
    def n_ap(self) -> int:
        """Total number of Access Proxies."""
        return self.n_ag * self.aps_per_ag

    @property
    def n_mh(self) -> int:
        """Total number of Mobile Hosts created at build time."""
        return self.n_ap * self.mhs_per_ap

    @property
    def total_nes(self) -> int:
        """Total network entities excluding MHs."""
        return self.n_br + self.n_ag + self.n_ap


def build_hierarchy(spec: HierarchySpec) -> Hierarchy:
    """Construct the regular hierarchy described by ``spec``.

    Node ids follow the ``tier:indices`` convention: ``br:0``,
    ``ag:0.1`` (BR 0, AG 1), ``ap:0.1.0``, ``mh:0.1.0.1``.
    """
    h = Hierarchy()

    brs = [make_id("br", i) for i in range(spec.n_br)]
    top = LogicalRing("ring:br", brs, leader=brs[0])
    h.add_ring(top, Tier.BR, top=True)

    for i, br in enumerate(brs):
        h.candidate_neighbors[br] = [b for b in brs if b != br]
        ags = [make_id("ag", i, j) for j in range(spec.ags_per_br)]
        ag_ring = LogicalRing(f"ring:ag.{i}", ags, leader=ags[0])
        h.add_ring(ag_ring, Tier.AG)
        h.set_parent(ags[0], br)
        for ag in ags:
            h.candidate_neighbors[ag] = [a for a in ags if a != ag]
            h.candidate_parents[ag] = [br] + [b for b in brs if b != br]

        for j, ag in enumerate(ags):
            for k in range(spec.aps_per_ag):
                ap = make_id("ap", i, j, k)
                h.add_node(ap, Tier.AP)
                h.set_parent(ap, ag)
                h.candidate_parents[ap] = [ag] + [a for a in ags if a != ag]
                for m in range(spec.mhs_per_ap):
                    mh = make_id("mh", i, j, k, m)
                    h.add_node(mh, Tier.MH)

    h.validate()
    return h


def build_deep_hierarchy(
    n_br: int = 3,
    ring_size: int = 3,
    depth: int = 2,
    aps_per_ag: int = 1,
    mhs_per_ap: int = 1,
) -> Hierarchy:
    """Construct a hierarchy with **sub-tier AG rings** (paper §3).

    The paper allows "more complicated scenarios where sub-tiers of the
    AGT and BRT tiers are allowed": each AG in a ring can itself parent
    a deeper AG ring.  This builder nests ``depth`` levels of AG rings
    of ``ring_size`` members below every BR; only the deepest level's
    AGs carry APs.  Node ids encode the path: ``ag:<br>.<pos>.<pos>...``.

    The protocol layer needs no changes for this shape — ring leaders
    interact with their parent NE generically at every level — which is
    exactly the self-similarity argument of §3 ("if we consider each
    logical ring as one node, then the RingNet hierarchy becomes a
    tree").
    """
    if n_br < 1 or ring_size < 1 or depth < 1:
        raise ValueError("n_br, ring_size, and depth must be >= 1")
    if aps_per_ag < 0 or mhs_per_ap < 0:
        raise ValueError("counts must be non-negative")

    h = Hierarchy()
    brs = [make_id("br", i) for i in range(n_br)]
    h.add_ring(LogicalRing("ring:br", brs, leader=brs[0]), Tier.BR, top=True)
    for br in brs:
        h.candidate_neighbors[br] = [b for b in brs if b != br]

    def grow(parent: NodeId, path: str, level: int) -> None:
        ags = [f"ag:{path}.{j}" for j in range(ring_size)]
        ring = LogicalRing(f"ring:ag.{path}", ags, leader=ags[0])
        h.add_ring(ring, Tier.AG)
        h.set_parent(ags[0], parent)
        for ag in ags:
            h.candidate_neighbors[ag] = [a for a in ags if a != ag]
            h.candidate_parents[ag] = [parent]
        if level + 1 < depth:
            for j, ag in enumerate(ags):
                grow(ag, f"{path}.{j}", level + 1)
        else:
            for j, ag in enumerate(ags):
                for k in range(aps_per_ag):
                    ap = f"ap:{path}.{j}.{k}"
                    h.add_node(ap, Tier.AP)
                    h.set_parent(ap, ag)
                    h.candidate_parents[ap] = [ag] + [a for a in ags
                                                      if a != ag]
                    for m in range(mhs_per_ap):
                        h.add_node(f"mh:{path}.{j}.{k}.{m}", Tier.MH)

    for i, br in enumerate(brs):
        grow(br, str(i), 0)

    h.validate()
    return h


def deep_initial_attachments(h: Hierarchy) -> Dict[NodeId, NodeId]:
    """Map each MH of a deep hierarchy to its AP (by id prefix)."""
    out: Dict[NodeId, NodeId] = {}
    for mh in h.nodes_of_tier(Tier.MH):
        # mh:<path>.<j>.<k>.<m>  ->  ap:<path>.<j>.<k>
        body = mh.split(":", 1)[1]
        ap = "ap:" + body.rsplit(".", 1)[0]
        out[mh] = ap
    return out


def initial_attachments(spec: HierarchySpec) -> Dict[NodeId, NodeId]:
    """Map each build-time MH id to its initial AP id."""
    out: Dict[NodeId, NodeId] = {}
    for i in range(spec.n_br):
        for j in range(spec.ags_per_br):
            for k in range(spec.aps_per_ag):
                ap = make_id("ap", i, j, k)
                for m in range(spec.mhs_per_ap):
                    out[make_id("mh", i, j, k, m)] = ap
    return out


def provision_links(
    fabric: Fabric,
    hierarchy: Hierarchy,
    wired: LinkSpec = WIRED,
    wireless: LinkSpec = WIRELESS,
    *,
    include_candidates: bool = True,
) -> int:
    """Create fabric links for every logical adjacency in the hierarchy.

    Links created: ring next-links (both directions share one link),
    parent→child tree links, and — when ``include_candidates`` — links to
    candidate parents/neighbors so fail-over paths exist without new
    provisioning at failure time.  AP↔MH wireless links are *not* created
    here; they appear when an MH attaches (mobility layer), using the
    ``wireless`` spec stored as the fabric default by callers.

    Returns the number of links configured.
    """
    count = 0
    for ring in hierarchy.rings.values():
        members = ring.members
        n = len(members)
        if n > 1:
            for idx, node in enumerate(members):
                nxt = members[(idx + 1) % n]
                if fabric.link(node, nxt) is None:
                    fabric.connect(node, nxt, wired)
                    count += 1
    for child, parent in hierarchy.parent.items():
        if fabric.link(child, parent) is None:
            fabric.connect(child, parent, wired)
            count += 1
    if include_candidates:
        for node, cands in list(hierarchy.candidate_parents.items()) + list(
            hierarchy.candidate_neighbors.items()
        ):
            for cand in cands:
                if fabric.link(node, cand) is None:
                    fabric.connect(node, cand, wired)
                    count += 1
    return count
