"""Baseline comparison: flag events/sec and peak-RSS regressions.

Two ``BENCH_*.json`` reports compare entry-by-entry (matched on the
``name`` field — a ladder rung or a scenario).  An entry regresses when
its rate falls more than ``threshold`` (a fraction, default 20%) below
the baseline; entries present on only one side are reported but never
fail the comparison, so ladders can grow rungs without invalidating old
baselines.

When both reports carry ``events_per_sec_norm`` (the rate divided by
the host's null-engine calibration, see :func:`repro.bench.measure.
calibrate`) the comparison uses it, so a baseline committed from one
machine meaningfully gates runs on another — raw events/sec is only
comparable on the same host and is used as the fallback.

When both sides of a matched entry carry a nonzero ``peak_rss``, the
comparison also gates resident memory: growth beyond ``mem_threshold``
(default 50% — RSS varies with allocator and interpreter build far
more than a rate does) fails, shrinkage never does.  Entries without
``peak_rss`` on either side (older baselines) skip the memory gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Default allowed fractional slowdown before a comparison fails.
DEFAULT_THRESHOLD = 0.20

#: Default allowed fractional peak-RSS growth before a comparison fails.
DEFAULT_MEM_THRESHOLD = 0.50


@dataclass(frozen=True)
class Delta:
    """One matched entry's current-vs-baseline value."""

    name: str
    current: float
    baseline: float
    metric: str = "events_per_sec"
    #: peak_rss deltas regress on *growth*; rates regress on shrinkage.
    lower_is_better: bool = False
    #: Per-delta threshold override (memory deltas carry their own).
    threshold: Optional[float] = None

    @property
    def ratio(self) -> float:
        """current / baseline (``inf`` when the baseline rate is 0)."""
        if self.baseline <= 0:
            return float("inf")
        return self.current / self.baseline

    def regressed(self, threshold: float) -> bool:
        t = self.threshold if self.threshold is not None else threshold
        if self.lower_is_better:
            return self.ratio > 1.0 + t
        return self.ratio < 1.0 - t

    def describe(self) -> str:
        pct = (self.ratio - 1.0) * 100.0
        if self.metric == "peak_rss":
            mib = 1 << 20
            return (f"{self.name} [peak_rss]: {self.current / mib:,.1f} MiB "
                    f"vs baseline {self.baseline / mib:,.1f} MiB "
                    f"({pct:+.1f}%)")
        unit = "x null" if self.metric == "events_per_sec_norm" else "ev/s"
        return (f"{self.name}: {self.current:,.4g} {unit} vs baseline "
                f"{self.baseline:,.4g} {unit} ({pct:+.1f}%)")


@dataclass
class ComparisonReport:
    """Everything one baseline comparison found."""

    threshold: float
    deltas: List[Delta] = field(default_factory=list)
    only_current: List[str] = field(default_factory=list)
    only_baseline: List[str] = field(default_factory=list)
    #: Matched entries measured for memory now but whose baseline
    #: predates ``peak_rss`` — their memory gate was skipped.
    mem_skipped: List[str] = field(default_factory=list)

    #: Which rate the deltas were computed on.
    metric: str = "events_per_sec"

    #: Per-stage latency delta rows (``repro.obs.critpath.stage_delta``)
    #: for matched entries where *both* sides carry a ``span_stages``
    #: digest.  Informational only — latency attribution shifts are for
    #: humans to read, not for the rate gate to fail on.
    span_tables: Dict[str, List[Dict[str, Any]]] = field(
        default_factory=dict)

    #: Per-shard stall attribution rows (:func:`shard_stall_rows`) for
    #: every current-side entry carrying sharded ``stall_causes`` —
    #: *why* each shard stalled (lookahead / probe / idle), next to its
    #: event share and barrier wait.  Informational only.
    shard_tables: Dict[str, List[Dict[str, Any]]] = field(
        default_factory=dict)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "metric": self.metric,
            "deltas": [
                {"name": d.name, "metric": d.metric, "current": d.current,
                 "baseline": d.baseline, "ratio": round(d.ratio, 4),
                 "regressed": d.regressed(self.threshold)}
                for d in self.deltas
            ],
            "only_current": list(self.only_current),
            "only_baseline": list(self.only_baseline),
            "mem_skipped": list(self.mem_skipped),
            "span_tables": {name: list(rows)
                            for name, rows in self.span_tables.items()},
            "shard_tables": {name: list(rows)
                             for name, rows in self.shard_tables.items()},
        }


def _rates_by_name(report: Mapping[str, Any],
                   metric: str) -> Dict[str, float]:
    results = report.get("results")
    if not isinstance(results, list):
        raise ValueError("not a bench report: missing 'results' list "
                         f"(schema={report.get('schema')!r})")
    out: Dict[str, float] = {}
    for entry in results:
        out[str(entry["name"])] = float(entry[metric])
    return out


def _rss_by_name(report: Mapping[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for entry in report.get("results") or []:
        rss = float(entry.get("peak_rss", 0) or 0)
        if rss > 0:
            out[str(entry["name"])] = rss
    return out


def shard_stall_rows(stats: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-shard stall-attribution rows from a ``shard`` stats dict.

    One row per shard: its event share, stall count broken down by
    cause (``lookahead`` = work existed beyond the granted boundary,
    ``probe`` = blocked on a pending probe barrier, ``idle`` = heap
    empty), barrier wait and wall split.  This is the diagnostic that
    says *why* a sharded run failed to scale.
    """
    causes = stats.get("stall_causes") or []
    events = stats.get("shard_events") or []
    stalls = stats.get("window_stalls_per_shard") or []
    barrier = stats.get("barrier_wait_s") or []
    walls = stats.get("shard_wall_s") or []

    def at(seq, i):
        return seq[i] if i < len(seq) else None

    rows = []
    for i, cause in enumerate(causes):
        cause = cause or {}
        rows.append({
            "shard": i,
            "events": at(events, i),
            "stalls": at(stalls, i),
            "lookahead": int(cause.get("lookahead", 0)),
            "probe": int(cause.get("probe", 0)),
            "idle": int(cause.get("idle", 0)),
            "barrier_wait_s": at(barrier, i),
            "wall_s": at(walls, i),
        })
    return rows


def render_shard_table(rows: List[Mapping[str, Any]]) -> str:
    """Fixed-width text rendering of :func:`shard_stall_rows` output."""
    header = (f"  {'shard':>5} {'events':>10} {'stalls':>7} "
              f"{'lookahead':>9} {'probe':>6} {'idle':>5} "
              f"{'barrier_s':>10} {'wall_s':>8}")
    lines = [header]
    for r in rows:
        def fmt(v, spec):
            return format(v, spec) if v is not None else "-"
        lines.append(
            f"  {r['shard']:>5} {fmt(r.get('events'), ','):>10} "
            f"{fmt(r.get('stalls'), ''):>7} {r['lookahead']:>9} "
            f"{r['probe']:>6} {r['idle']:>5} "
            f"{fmt(r.get('barrier_wait_s'), '.3f'):>10} "
            f"{fmt(r.get('wall_s'), '.3f'):>8}")
    return "\n".join(lines)


def _shard_stats_by_name(
        report: Mapping[str, Any]) -> Dict[str, Mapping[str, Any]]:
    out: Dict[str, Mapping[str, Any]] = {}
    for entry in report.get("results") or []:
        stats = entry.get("shard")
        if isinstance(stats, dict) and stats.get("stall_causes"):
            out[str(entry["name"])] = stats
    return out


def _spans_by_name(report: Mapping[str, Any]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for entry in report.get("results") or []:
        stages = entry.get("span_stages")
        if isinstance(stages, dict) and stages:
            out[str(entry["name"])] = {str(k): float(v)
                                       for k, v in stages.items()}
    return out


def _pick_metric(current: Mapping[str, Any],
                 baseline: Mapping[str, Any]) -> str:
    def has_norm(report: Mapping[str, Any]) -> bool:
        results = report.get("results")
        return (isinstance(results, list) and bool(results)
                and all("events_per_sec_norm" in e for e in results))

    if has_norm(current) and has_norm(baseline):
        return "events_per_sec_norm"
    return "events_per_sec"


def compare_reports(current: Mapping[str, Any], baseline: Mapping[str, Any],
                    threshold: float = DEFAULT_THRESHOLD,
                    mem_threshold: float = DEFAULT_MEM_THRESHOLD,
                    ) -> ComparisonReport:
    """Compare two report payloads (see :func:`repro.bench.measure.
    bench_report`); entries match on ``name``.  Matched entries with a
    nonzero ``peak_rss`` on both sides additionally gate memory growth
    against ``mem_threshold``."""
    if not 0 <= threshold < 1:
        raise ValueError("threshold must be a fraction in [0, 1)")
    if mem_threshold < 0:
        raise ValueError("mem_threshold must be >= 0")
    metric = _pick_metric(current, baseline)
    cur = _rates_by_name(current, metric)
    base = _rates_by_name(baseline, metric)
    report = ComparisonReport(threshold=threshold, metric=metric)
    for name in cur:
        if name in base:
            report.deltas.append(Delta(name, cur[name], base[name],
                                       metric=metric))
        else:
            report.only_current.append(name)
    report.only_baseline.extend(n for n in base if n not in cur)
    cur_rss = _rss_by_name(current)
    base_rss = _rss_by_name(baseline)
    for name in cur_rss:
        if name in base_rss:
            report.deltas.append(Delta(name, cur_rss[name], base_rss[name],
                                       metric="peak_rss",
                                       lower_is_better=True,
                                       threshold=mem_threshold))
        elif name in base:
            # Measured now, but the baseline predates peak_rss: say so
            # explicitly rather than silently not gating memory.
            report.mem_skipped.append(name)
    cur_spans = _spans_by_name(current)
    base_spans = _spans_by_name(baseline)
    for name in cur_spans:
        if name in base_spans:
            from repro.obs.critpath import stage_delta  # lazy: optional layer
            report.span_tables[name] = stage_delta(cur_spans[name],
                                                   base_spans[name])
    for name, stats in _shard_stats_by_name(current).items():
        report.shard_tables[name] = shard_stall_rows(stats)
    return report
