"""Command-line entry point: ``python -m repro.bench``.

Subcommands
-----------
* ``run NAME`` — benchmark one registry scenario; writes
  ``BENCH_<NAME>.json``.
* ``ladder`` — benchmark the pinned NE/MH scaling ladder; writes
  ``BENCH_ladder.json``.
* ``compare CURRENT BASELINE`` — flag events/sec regressions between
  two reports.

``run`` and ``ladder`` accept ``--baseline FILE`` to compare in the
same invocation.  Exit codes: 0 ok, 1 regression beyond the threshold,
2 usage error, 3 ``--check`` found protocol-invariant violations.

Examples
--------
::

    python -m repro.bench ladder --repeat 3 --check
    python -m repro.bench run churn_heavy --duration 5000 --repeat 2
    python -m repro.bench ladder --rungs xs,s --baseline BENCH_ladder.json
    python -m repro.bench compare BENCH_ladder.json old/BENCH_ladder.json
"""

from __future__ import annotations

import argparse
import json
import sys
from statistics import median
from typing import List, Optional, Sequence

from repro.bench.compare import (DEFAULT_MEM_THRESHOLD, DEFAULT_THRESHOLD,
                                 compare_reports)
from repro.bench.ladder import (DEFAULT_RUNGS, get_rung, node_counts,
                                rung_names, rung_spec)
from repro.bench.measure import (BenchResult, bench_report, measure_spec,
                                 write_report)


def _print_result(r: BenchResult) -> None:
    line = (f"{r.name:12s} nodes={r.nodes:7d} events={r.events:9d} "
            f"wall={r.wall_s:7.3f}s  {r.events_per_sec:12,.0f} ev/s  "
            f"peak_heap={r.peak_heap} "
            f"peak_rss={r.peak_rss / (1 << 20):.0f}MiB")
    if r.trace_path is not None:
        line += f"  streamed={r.trace_records} records"
    if r.shard_stats is not None:
        line += (f"  windows={r.shard_stats['windows']} "
                 f"stalls={r.shard_stats['window_stalls']} "
                 f"rebalances={r.shard_stats.get('rebalances', 0)}")
    if r.speedup is not None:
        line += f"  speedup={r.speedup:.2f}x"
    if r.checked:
        line += ("  check=ok" if not r.violations
                 else f"  check={len(r.violations)} VIOLATIONS")
    print(line, flush=True)


def _print_comparison(cmp, threshold: float, current_label: str,
                      baseline_label: str) -> int:
    """Report a comparison; returns the exit status (0 ok, 1 regressed)."""
    print(f"comparing on {cmp.metric}")
    for delta in cmp.deltas:
        marker = "REGRESSION " if delta.regressed(threshold) else ""
        print(f"  {marker}{delta.describe()}")
    if getattr(cmp, "span_tables", None):
        from repro.obs.critpath import render_stage_delta
        for name, rows in cmp.span_tables.items():
            print(f"per-stage latency, {name} (informational):")
            print(render_stage_delta(rows, current_label, baseline_label))
    if getattr(cmp, "shard_tables", None):
        from repro.bench.compare import render_shard_table
        for name, rows in cmp.shard_tables.items():
            print(f"per-shard stall causes, {name} (informational):")
            print(render_shard_table(rows))
    for only in cmp.only_current:
        print(f"  {only}: only in {current_label} (skipped)")
    for only in cmp.only_baseline:
        print(f"  {only}: only in {baseline_label} (skipped)")
    for name in cmp.mem_skipped:
        print(f"  {name}: memory gate skipped (old baseline)")
    if not cmp.ok:
        print(f"FAIL: {len(cmp.regressions)} entries regressed more than "
              f"{threshold:.0%} vs {baseline_label}")
        return 1
    print(f"ok: no regression beyond {threshold:.0%} "
          f"({len(cmp.deltas)} entries compared)")
    return 0


def _stream_path(args: argparse.Namespace, name: str) -> Optional[str]:
    """Resolve --stream-trace DIR into DIR/<name>.jsonl.gz (or None)."""
    out_dir = getattr(args, "stream_trace", None)
    if not out_dir:
        return None
    import os
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, f"{name}.jsonl.gz")


def _write_obs(results: List[BenchResult],
               args: argparse.Namespace) -> None:
    """Write each result's OBS_* artifacts when --obs DIR was given."""
    out_dir = getattr(args, "obs", None)
    if not out_dir:
        return
    from repro.obs.session import write_artifacts
    for r in results:
        if r.obs_report is None:
            continue
        paths = write_artifacts(r.obs_report, r.obs_timeline or [],
                                out_dir=out_dir, name=r.name)
        print(f"wrote {paths['report']}")


def _write_spans(results: List[BenchResult],
                 args: argparse.Namespace) -> None:
    """Write each result's SPANS_* artifacts when --spans DIR was given."""
    out_dir = getattr(args, "spans", None)
    if not out_dir:
        return
    import os
    from repro.obs.spans import write_span_events
    os.makedirs(out_dir, exist_ok=True)
    for r in results:
        if r.span_events is None:
            continue
        path = os.path.join(out_dir, f"SPANS_{r.name}.jsonl.gz")
        write_span_events(path, r.span_events)
        print(f"wrote {path} ({len(r.span_events)} span events)")


def _finish(results: List[BenchResult], kind: str, name: str,
            args: argparse.Namespace,
            extra: Optional[dict] = None) -> int:
    report = bench_report(results, kind=kind, name=name, extra=extra)
    out = args.out or f"BENCH_{name}.json"
    write_report(out, report)
    print(f"wrote {out}")

    status = 0
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        cmp = compare_reports(report, baseline, threshold=args.threshold,
                              mem_threshold=getattr(
                                  args, "mem_threshold",
                                  DEFAULT_MEM_THRESHOLD))
        status = _print_comparison(cmp, args.threshold, out, args.baseline)
    violations = sum(len(r.violations) for r in results)
    if violations:
        print(f"FAIL: --check found {violations} protocol-invariant "
              f"violations")
        return 3
    return status


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_run(args: argparse.Namespace) -> int:
    # Shared resolver: --duration/--seed/--set mean the same thing as in
    # `python -m repro.experiments` and `python -m repro.validation`.
    from repro.experiments.__main__ import spec_for_args

    spec = spec_for_args(args)
    shards = getattr(args, "shards", 1) or 1
    result = measure_spec(spec, repeat=args.repeat, check=args.check,
                          shards=shards, obs=args.obs is not None,
                          obs_window_ms=args.obs_window,
                          progress=args.progress,
                          stream_path=_stream_path(args, spec.name),
                          spans=args.spans is not None)
    _print_result(result)
    _write_obs([result], args)
    _write_spans([result], args)
    name = spec.name if shards == 1 else f"shard_{spec.name}"
    return _finish([result], kind="run", name=name, args=args)


def cmd_ladder(args: argparse.Namespace) -> int:
    if args.rungs:
        rungs = [get_rung(n) for n in args.rungs.split(",")]
    else:
        # The lazy-population rungs (xxl, metro) are opt-in by name.
        rungs = [get_rung(n) for n in DEFAULT_RUNGS]
    shards = getattr(args, "shards", 1) or 1
    results: List[BenchResult] = []
    overhead: dict = {}
    for rung in rungs:
        spec = rung_spec(rung)
        if args.duration is not None:
            spec = spec.with_overrides({"duration_ms": args.duration})
        pops = node_counts(spec)
        print(f"[{rung.name}] nes={pops['nes']} mhs={pops['mhs']} "
              f"duration={spec.duration_ms:.0f}ms ...", flush=True)
        result = measure_spec(spec, repeat=args.repeat, check=args.check,
                              obs=args.obs is not None,
                              obs_window_ms=args.obs_window,
                              progress=args.progress,
                              stream_path=_stream_path(args, rung.name),
                              spans=args.spans is not None)
        result.name = rung.name  # rung name, not the base scenario's
        results.append(result)
        _print_result(result)
        if args.obs_overhead:
            # Telemetry tax: off/on single-repeat pairs, median of the
            # per-pair ratios.  One best-of-N per side is hostage to
            # host-speed drift between the two measurements; pairing
            # keeps each ratio tight and the median rejects the pairs a
            # noisy neighbour landed on.  Within-pair order alternates
            # so a monotone within-process drift (allocator growth,
            # frequency scaling) cancels instead of always taxing the
            # side measured second.
            pairs = max(3, args.repeat)
            offs, ons, fracs = [], [], []
            for i in range(pairs):
                def _off():
                    return measure_spec(spec, repeat=1)

                def _on():
                    return measure_spec(spec, repeat=1, obs=True,
                                        obs_window_ms=args.obs_window)
                if i % 2:
                    on, off = _on(), _off()
                else:
                    off, on = _off(), _on()
                offs.append(off.events_per_sec)
                ons.append(on.events_per_sec)
                if off.events_per_sec > 0:
                    fracs.append(1.0 - on.events_per_sec
                                 / off.events_per_sec)
            frac = median(fracs) if fracs else 0.0
            overhead[rung.name] = {
                "events_per_sec_off": round(median(offs), 1),
                "events_per_sec_on": round(median(ons), 1),
                "pairs": pairs,
                "overhead_frac": round(frac, 4),
            }
            print(f"  obs overhead: {frac:+.1%} "
                  f"(median of {pairs} off/on pairs)")
        if shards > 1:
            sharded = measure_spec(spec, repeat=args.repeat, shards=shards)
            sharded.name = f"{rung.name}@{shards}shards"
            sharded.speedup = (result.wall_s / sharded.wall_s
                               if sharded.wall_s > 0 else 0.0)
            results.append(sharded)
            _print_result(sharded)
    _write_obs(results, args)
    _write_spans(results, args)
    name = "shard_ladder" if shards > 1 else "ladder"
    return _finish(results, kind="ladder", name=name, args=args,
                   extra={"obs_overhead": overhead} if overhead else None)


def cmd_compare(args: argparse.Namespace) -> int:
    with open(args.current, "r", encoding="utf-8") as fh:
        current = json.load(fh)
    with open(args.baseline_file, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    cmp = compare_reports(current, baseline, threshold=args.threshold,
                          mem_threshold=args.mem_threshold)
    return _print_comparison(cmp, args.threshold, args.current,
                             args.baseline_file)


# ----------------------------------------------------------------------
def _add_measure_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--shards", type=int, default=1, metavar="K",
                   help="also measure on the space-parallel backend with "
                        "K worker processes (repro.shard); ladder reports "
                        "a per-rung speedup column")
    p.add_argument("--repeat", type=int, default=1,
                   help="fresh build+run repetitions; headline numbers "
                        "are the fastest (default 1)")
    p.add_argument("--check", action="store_true",
                   help="also run once with the validation monitor suite "
                        "attached; exit 3 on violations")
    p.add_argument("--obs", nargs="?", const=".", default=None,
                   metavar="DIR",
                   help="attach out-of-band telemetry (repro.obs) and "
                        "write OBS_<name>.json + timeline artifacts to "
                        "DIR (default: cwd); headline ev/s then includes "
                        "the obs overhead")
    p.add_argument("--spans", nargs="?", const=".", default=None,
                   metavar="DIR",
                   help="attach causal span tracing (repro.obs.spans) and "
                        "write SPANS_<name>.jsonl.gz event streams to DIR "
                        "(default: cwd); the report gains a per-stage "
                        "latency digest (span_stages) and headline ev/s "
                        "then includes the tracing tax; sample rate via "
                        "REPRO_SPANS_SAMPLE")
    p.add_argument("--obs-window", type=float, default=None, metavar="MS",
                   help="timeline window width in simulated ms "
                        "(default: horizon/20)")
    p.add_argument("--progress", action="store_true",
                   help="heartbeat lines (events done, ev/s, ETA) every "
                        "~2 wall seconds on long runs, via the obs hook")
    p.add_argument("--stream-trace", default=None, metavar="DIR",
                   dest="stream_trace",
                   help="stream every measured run's full trace to "
                        "DIR/<name>.jsonl.gz (windowed gzip JSONL, "
                        "byte-identical to an in-memory recording); "
                        "headline ev/s then includes the serialization "
                        "cost; sequential measurements only")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="report path (default BENCH_<name>.json in cwd)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare against this report; exit 1 on regression")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="allowed fractional events/sec slowdown "
                        "(default 0.20)")
    p.add_argument("--mem-threshold", type=float,
                   default=DEFAULT_MEM_THRESHOLD, dest="mem_threshold",
                   help="allowed fractional peak-RSS growth vs baseline "
                        "(default 0.50; only gates entries with peak_rss "
                        "on both sides)")


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="events/sec benchmarks: run, ladder, compare",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="benchmark one registry scenario")
    p_run.add_argument("scenario", help="registry scenario name")
    p_run.add_argument("--duration", type=float, default=None, metavar="MS")
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="dotted-path spec override, repeatable")
    _add_measure_args(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_ladder = sub.add_parser(
        "ladder", help="benchmark the pinned scaling ladder")
    p_ladder.add_argument("--rungs", default=None, metavar="NAMES",
                          help=f"comma-separated subset of "
                               f"{','.join(rung_names())} (default: "
                               f"{','.join(DEFAULT_RUNGS)}; the lazy-"
                               f"population rungs xxl/metro are opt-in)")
    p_ladder.add_argument("--duration", type=float, default=None,
                          metavar="MS",
                          help="override every selected rung's pinned "
                               "duration (truncated smoke runs; ev/s is "
                               "a rate, so still baseline-comparable)")
    p_ladder.add_argument("--obs-overhead", action="store_true",
                          help="measure every rung as alternating obs "
                               "off/on pairs (median-of-ratios) and stamp "
                               "the per-rung telemetry tax into the "
                               "report's obs_overhead key")
    _add_measure_args(p_ladder)
    p_ladder.set_defaults(fn=cmd_ladder)

    p_cmp = sub.add_parser("compare", help="diff two bench reports")
    p_cmp.add_argument("current", help="current BENCH_*.json")
    p_cmp.add_argument("baseline_file", metavar="baseline",
                       help="baseline BENCH_*.json")
    p_cmp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="allowed fractional slowdown (default 0.20)")
    p_cmp.add_argument("--mem-threshold", type=float,
                       default=DEFAULT_MEM_THRESHOLD, dest="mem_threshold",
                       help="allowed fractional peak-RSS growth "
                            "(default 0.50)")
    p_cmp.set_defaults(fn=cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
