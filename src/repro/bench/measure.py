"""Measure a spec: wall-clock, events/sec, peak event-heap.

The measured quantity is the discrete-event engine's throughput —
``Simulator.events_processed`` divided by the ``time.perf_counter``
wall-clock of the run loop — which is what "runs as fast as the
hardware allows" means for a simulator: every protocol optimization
(fewer timer events, cheaper snapshots, leaner emit) shows up either as
fewer events for the same simulated time or as more events per second.

Measured runs use a :class:`~repro.sim.trace.TraceBus` with counting
disabled and no subscribers, so the trace fast path is what production
benchmark runs actually execute.  ``check=True`` adds one *separate*
monitored run (not timed into the headline numbers) that attaches the
full :mod:`repro.validation` suite and reports violations.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.spec import ExperimentSpec
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus

#: Schema tag written into every report, bumped on breaking changes.
BENCH_SCHEMA = "repro.bench/v1"

#: Events processed by one calibration pass (see :func:`calibrate`).
CALIBRATION_EVENTS = 50_000


def peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes.

    Linux reads ``VmHWM`` from ``/proc/self/status``; elsewhere (or in
    restricted containers) it falls back to ``resource.ru_maxrss``.
    Both are process-lifetime high-water marks — monotone across
    repeats and rungs — so the number stamped on a result is "peak RSS
    observed by the end of this measurement", and in an ascending
    ladder the largest rung dominates.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def calibrate(events: int = CALIBRATION_EVENTS) -> float:
    """Events/sec of a null workload: the engine spinning no-op events.

    This measures the host's raw engine throughput with zero protocol
    work, so dividing a scenario's events/sec by it yields a
    *machine-normalized* rate that is comparable across hosts of
    different speeds (same Python implementation).  That is what lets a
    committed baseline gate CI runs on hardware the baseline was never
    recorded on.
    """
    sim = Simulator(seed=0, trace=TraceBus(counting=False))

    def tick() -> None:
        if sim.events_processed < events:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim.events_processed / wall if wall > 0 else 0.0


@dataclass
class BenchResult:
    """One benchmarked spec (best-of-``repeat`` headline numbers)."""

    name: str
    system: str
    seed: int
    duration_ms: float
    nes: int = 0
    mhs: int = 0
    sources: int = 0
    nodes: int = 0
    events: int = 0
    build_s: float = 0.0
    wall_s: float = 0.0
    events_per_sec: float = 0.0
    peak_heap: int = 0
    compactions: int = 0
    deliveries: int = 0
    repeat: int = 1
    wall_s_all: List[float] = field(default_factory=list)
    #: Peak resident set size (bytes) observed by the end of this
    #: measurement — the out-of-heap companion to ``peak_heap``.
    peak_rss: int = 0
    #: Streaming-sink destination and record count when the run was
    #: measured with ``stream_path`` (trace subscribers attached, so
    #: ev/s then includes the serialization cost).
    trace_path: Optional[str] = None
    trace_records: int = 0
    checked: bool = False
    violations: List[str] = field(default_factory=list)
    #: Worker-process count of a sharded measurement (1 = sequential).
    shards: int = 1
    #: Window/sync counters of a sharded measurement (repro.shard).
    shard_stats: Optional[Dict[str, Any]] = None
    #: Sequential-wall / sharded-wall for the same spec, filled by the
    #: ladder when both sides were measured in one invocation.
    speedup: Optional[float] = None
    #: Out-of-band telemetry of the best repeat (``obs=True`` runs);
    #: large, so never embedded in :meth:`to_dict` — the CLI writes
    #: them as separate ``OBS_*`` artifacts.
    obs_report: Optional[Dict[str, Any]] = None
    obs_timeline: Optional[List[Dict[str, Any]]] = None
    #: Raw span-event stream of the best repeat (``spans=True`` runs);
    #: like the obs payloads it is never embedded in :meth:`to_dict` —
    #: the CLI writes it as a separate ``SPANS_*`` artifact.
    span_events: Optional[List[Any]] = None
    #: Compact per-stage mean latency digest of the best repeat
    #: (``{"uplink": ms, ...}``), small enough to embed in the report —
    #: this is what ``bench compare`` diffs across runs.
    span_stages: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "system": self.system,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "nes": self.nes,
            "mhs": self.mhs,
            "sources": self.sources,
            "nodes": self.nodes,
            "events": self.events,
            "build_s": round(self.build_s, 6),
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            # peak_heap/compactions are always present and meaningful
            # even when compaction never triggered: peak_heap is the
            # heap's true high-water mark (strictly positive for any
            # run that scheduled at all), and compactions==0 then says
            # "never needed", not "not measured".
            "peak_heap": self.peak_heap,
            "peak_rss": self.peak_rss,
            "compactions": self.compactions,
            "deliveries": self.deliveries,
            "repeat": self.repeat,
            "wall_s_all": [round(w, 6) for w in self.wall_s_all],
            "checked": self.checked,
            "violations": list(self.violations),
            "shards": self.shards,
        }
        if self.trace_path is not None:
            out["trace_path"] = self.trace_path
            out["trace_records"] = self.trace_records
        if self.shard_stats is not None:
            out["shard"] = dict(self.shard_stats)
        if self.speedup is not None:
            out["speedup"] = round(self.speedup, 3)
        if self.span_stages is not None:
            out["span_stages"] = {k: round(v, 3)
                                  for k, v in self.span_stages.items()}
        return out


def _populations(net) -> Dict[str, int]:
    # ``nodes`` = NE + MH, matching repro.bench.ladder.node_counts and
    # the documented rung totals; traffic sources are reported apart.
    # The MH count is the declared population: materialized MHs plus
    # the never-materialized remainder of the lazy catchment.
    nes = len(getattr(net, "nes", ()))
    mhs = (len(getattr(net, "mobile_hosts", ()))
           + getattr(net, "catchment_idle", 0))
    sources = len(getattr(net, "sources", ()))
    return {"nes": nes, "mhs": mhs, "sources": sources, "nodes": nes + mhs}


def measure_spec(spec: ExperimentSpec, repeat: int = 1,
                 check: bool = False, shards: int = 1,
                 obs: bool = False, obs_window_ms: Optional[float] = None,
                 progress: bool = False,
                 stream_path: Optional[str] = None,
                 spans: bool = False) -> BenchResult:
    """Benchmark one spec; headline numbers are the fastest repeat.

    Every repeat is a complete fresh build+run (same seed, so the same
    event sequence); best-of-N damps scheduler noise the way
    ``pytest-benchmark``'s min-based OPS does.  ``peak_heap`` is the
    max over *all* repeats (it is seed-determined, so repeats agree —
    reported unconditionally so "no compaction" is never ambiguous).

    ``shards > 1`` measures the same spec on the space-parallel backend
    (:func:`repro.shard.run_sharded`): ``events`` sums every worker's
    engine (replicated control events count per shard, a rounding error
    on data-plane-dominated workloads) and ``wall_s`` is the
    coordinator-observed parallel section.

    ``obs=True`` attaches one :class:`~repro.obs.session.ObsSession`
    per repeat and keeps the best repeat's report/timeline on the
    result; the headline events/sec then *includes* the observability
    overhead, which is exactly what the CI obs-overhead gate compares.
    ``progress=True`` emits wall-clock heartbeats through the same
    hook (usable with or without ``obs``).

    ``stream_path`` streams the full trace to that file (``.gz``
    compressed when the name says so) through a
    :class:`~repro.sim.trace.StreamingTraceSink`, one sink per repeat
    (each overwrites the last).  The headline events/sec then includes
    the serialization cost — the point is proving the streaming rung
    end to end, not flattering the rate.  Sequential only.

    ``spans=True`` attaches a :class:`~repro.obs.spans.SpanCollector`
    per repeat (sample rate from ``REPRO_SPANS_SAMPLE``) and keeps the
    best repeat's event stream plus a per-stage latency digest on the
    result; headline ev/s then includes the tracing tax, which is what
    the CI spans-overhead gate compares.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if shards > 1:
        if stream_path is not None:
            raise ValueError(
                "stream_path is a sequential-measure feature; stream a "
                "sharded run via repro.shard.record_sharded")
        return _measure_sharded(spec, repeat, shards, check, obs=obs,
                                spans=spans)
    from repro.experiments.runner import build_scenario  # lazy: heavy

    attach = obs or progress
    best: Optional[Dict[str, Any]] = None
    best_session = None
    best_spans: Optional[List[Any]] = None
    walls: List[float] = []
    peak_heap = 0
    trace_records = 0
    for _ in range(repeat):
        sim = Simulator(seed=spec.seed, trace=TraceBus(counting=False))
        sink = None
        if stream_path is not None:
            from repro.sim.trace import StreamingTraceSink
            sink = StreamingTraceSink(stream_path)
            sink.attach(sim.trace)
        collector = None
        if spans:
            from repro.obs.spans import SpanCollector  # lazy: optional layer
            collector = SpanCollector()
            collector.attach(sim.trace, sim=sim)
        t0 = time.perf_counter()
        scenario = build_scenario(spec, sim=sim)
        session = None
        if attach:
            from repro.obs.session import ObsSession  # lazy: optional layer
            session = ObsSession(sim, horizon_ms=spec.duration_ms,
                                 name=spec.name, window_ms=obs_window_ms,
                                 progress=progress)
        t1 = time.perf_counter()
        try:
            scenario.run()
        finally:
            if sink is not None:
                sink.close()
        t2 = time.perf_counter()
        if session is not None:
            session.finish()
        if collector is not None:
            collector.detach()
        if sink is not None:
            trace_records = sink.count
        wall = t2 - t1
        walls.append(wall)
        peak_heap = max(peak_heap, sim.peak_heap)
        rate = sim.events_processed / wall if wall > 0 else 0.0
        if best is None or rate > best["events_per_sec"]:
            best = {
                "build_s": t1 - t0,
                "wall_s": wall,
                "events": sim.events_processed,
                "events_per_sec": rate,
                "compactions": sim.compactions,
                "deliveries": scenario.net.total_app_deliveries(),
                **_populations(scenario.net),
            }
            best_session = session
            if collector is not None:
                best_spans = collector.events

    result = BenchResult(
        name=spec.name,
        system=spec.system,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        repeat=repeat,
        wall_s_all=walls,
        peak_heap=peak_heap,
        peak_rss=peak_rss_bytes(),
        trace_path=stream_path,
        trace_records=trace_records,
        **best,
    )
    if obs and best_session is not None:
        result.obs_report = best_session.report()
        result.obs_timeline = list(best_session.rows)
    if best_spans is not None:
        result.span_events = best_spans
        result.span_stages = _span_stage_digest(best_spans)
    if check:
        from repro.validation.suite import check_spec  # lazy: optional layer
        checked = check_spec(spec)
        result.checked = True
        result.violations = list(checked.violations)
    return result


def _span_stage_digest(events: List[Any]) -> Dict[str, float]:
    from repro.obs.critpath import critpath_summary, stage_means
    from repro.obs.spans import assemble

    return stage_means(critpath_summary(assemble(events)))


def _measure_sharded(spec: ExperimentSpec, repeat: int,
                     shards: int, check: bool,
                     obs: bool = False, spans: bool = False) -> BenchResult:
    from repro.bench.ladder import node_counts  # lazy: avoid import cycle
    from repro.shard.runtime import run_sharded

    if check:
        raise ValueError(
            "--check is a sequential-run feature; validate a sharded run "
            "by replaying its recorded trace (python -m repro.shard "
            "compare records one)")
    best = None
    walls: List[float] = []
    peak_heap = 0
    for _ in range(repeat):
        res = run_sharded(spec, shards, obs=obs, spans=spans)
        walls.append(res.wall_s)
        peak_heap = max(peak_heap, res.peak_heap)
        if best is None or res.events_per_sec > best.events_per_sec:
            best = res
    pops = node_counts(spec)
    return BenchResult(
        name=spec.name,
        system=spec.system,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        nes=pops["nes"],
        mhs=pops["mhs"],
        sources=len(spec.workload.source_rates),
        nodes=pops["total"],
        events=best.events,
        build_s=best.build_s,
        wall_s=best.wall_s,
        events_per_sec=best.events_per_sec,
        peak_heap=peak_heap,
        # Coordinator-process high-water mark only; worker RSS lives in
        # the workers and is not aggregated here.
        peak_rss=peak_rss_bytes(),
        compactions=best.compactions,
        deliveries=best.deliveries,
        repeat=repeat,
        wall_s_all=walls,
        shards=shards,
        shard_stats=best.stats_dict(),
        obs_report=best.obs_report,
        obs_timeline=best.obs_timeline,
        span_events=best.span_events,
        span_stages=(_span_stage_digest(best.span_events)
                     if best.span_events is not None else None),
    )


def bench_report(results: Sequence[BenchResult], kind: str, name: str,
                 calibration: Optional[float] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the machine-readable ``BENCH_*.json`` payload.

    ``calibration`` (best-of-3 :func:`calibrate` when omitted) stamps
    the host's null-engine throughput into the report and gives every
    entry an ``events_per_sec_norm`` — the machine-normalized rate the
    baseline comparison prefers.  ``extra`` merges additional top-level
    keys (e.g. the ladder's ``obs_overhead`` stamp).
    """
    if calibration is None:
        calibration = max(calibrate() for _ in range(3))
    entries = []
    for r in results:
        entry = r.to_dict()
        if calibration > 0:
            entry["events_per_sec_norm"] = round(
                r.events_per_sec / calibration, 6)
        entries.append(entry)
    report = {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "name": name,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "calibration_events_per_sec": round(calibration, 1),
        "results": entries,
    }
    if extra:
        report.update(extra)
    return report


def write_report(path: str, report: Dict[str, Any]) -> None:
    """Write a report as stable, diff-friendly JSON."""
    import json

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
