"""Events/sec benchmarking with trace-identical optimization guarantees.

The bench subsystem turns "make it faster" into a measured, regression-
guarded loop:

* :mod:`repro.bench.ladder` — a pinned NE/MH scaling ladder (tens to
  thousands of nodes) derived from the experiments registry.
* :mod:`repro.bench.measure` — wall-clock / events-per-second /
  peak-event-heap measurement of any :class:`~repro.experiments.spec.
  ExperimentSpec`, via ``time.perf_counter`` and the engine's own
  counters (``events_processed``, ``peak_heap``, ``compactions``).
* :mod:`repro.bench.compare` — baseline comparison that flags
  events/sec regressions beyond a threshold.
* ``python -m repro.bench run|ladder|compare`` — the CLI; results are
  written as machine-readable ``BENCH_<name>.json`` files.

The companion guarantee: every optimization the bench motivates must
leave recorded traces byte-identical (see ``tests/test_trace_identity
.py`` and the seed traces under ``tests/data/seed_traces/``).
"""

from repro.bench.compare import ComparisonReport, compare_reports
from repro.bench.ladder import LADDER, Rung, node_counts, rung_names, rung_spec
from repro.bench.measure import (BENCH_SCHEMA, BenchResult, bench_report,
                                 calibrate, measure_spec, write_report)

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "ComparisonReport",
    "LADDER",
    "Rung",
    "bench_report",
    "calibrate",
    "compare_reports",
    "measure_spec",
    "node_counts",
    "rung_names",
    "rung_spec",
    "write_report",
]
