"""The pinned NE/MH scaling ladder.

Every rung is the same workload shape — the registry's ``quickstart``
scenario (two CBR senders, the paper's Figure-1 hierarchy) — scaled
from tens of nodes to thousands by widening the BR ring, the AG fan-out,
the AP fan-out, and the per-AP MH population.  Simulated duration
shrinks as the population grows so a full ladder stays a
minutes-not-hours affair; events/sec is duration-independent, which is
the point of measuring a *rate*.

Above ``xl`` the ladder switches regime: the ``xxl`` (~10^5 MHs) and
``metro`` (~10^6 MHs) rungs declare almost their whole MH population as
a lazy per-AP *catchment* — entities that exist only as a count until
an open-world session arrival materializes one — with the per-MH app
log off and MQ retention pinned to the Theorem 5.1 bound.  These rungs
measure peak RSS as much as events/sec: resident memory must track the
*active* population, not the declared one.

Rungs are data, pinned here on purpose: a benchmark whose shape drifts
with the registry cannot be compared across commits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.experiments import registry
from repro.experiments.spec import ExperimentSpec

#: The registry scenario every rung derives from.
BASE_SCENARIO = "quickstart"

#: One fixed seed for the whole ladder: bench runs must be reproducible.
LADDER_SEED = 42


@dataclass(frozen=True)
class Rung:
    """One pinned point on the scaling ladder."""

    name: str
    n_br: int
    ags_per_br: int
    aps_per_ag: int
    mhs_per_ap: int
    duration_ms: float
    #: Lazily-registered idle MHs per AP: population that exists only
    #: as a catchment count until an open-world session materializes
    #: one.  The 10^5/10^6-endpoint rungs live here — they are memory-
    #: infeasible as eagerly-built objects.
    idle_per_ap: int = 0
    #: Open-world session arrivals per second over the catchment
    #: (0 = no session driver).  Requires ``idle_per_ap > 0``.
    openworld_arrivals: float = 0.0

    @property
    def overrides(self) -> Dict[str, Any]:
        """Dotted-path spec overrides realizing this rung."""
        d = {
            "hierarchy.n_br": self.n_br,
            "hierarchy.ags_per_br": self.ags_per_br,
            "hierarchy.aps_per_ag": self.aps_per_ag,
            "hierarchy.mhs_per_ap": self.mhs_per_ap,
            "duration_ms": self.duration_ms,
            "warmup_ms": 0.0,
            "seed": LADDER_SEED,
        }
        if self.idle_per_ap:
            # The big rungs run in bounded-memory mode: no per-MH app
            # log, delivered history spilled past the Theorem 5.1 MQ
            # bound.  Anything else grows with traffic, not population.
            d["hierarchy.idle_per_ap"] = self.idle_per_ap
            d["protocol.retain_app_log"] = False
            d["bound_retention"] = True
        if self.openworld_arrivals:
            d["openworld.enabled"] = True
            d["openworld.arrivals_per_sec"] = self.openworld_arrivals
        return d


#: tens → millions of nodes.  (nes, mhs, total) per rung:
#:   xs: (6, 4, 10)     s: (21, 24, 45)      m: (64, 192, 256)
#:   l: (174, 864, 1038)   xl: (368, 1920, 2288)
#:   xxl: (584, 100_352, 100_936)   metro: (4_232, 999_424, 1_003_656)
#: The xxl/metro MH populations are 1 built + idle_per_ap *registered*
#: per AP: lazy catchment counts, materialized only by open-world
#: session arrivals — the rungs that prove O(active), not O(declared),
#: memory.
LADDER: Tuple[Rung, ...] = (
    Rung("xs", n_br=2, ags_per_br=1, aps_per_ag=1, mhs_per_ap=2,
         duration_ms=4_000.0),
    Rung("s", n_br=3, ags_per_br=2, aps_per_ag=2, mhs_per_ap=2,
         duration_ms=4_000.0),
    Rung("m", n_br=4, ags_per_br=3, aps_per_ag=4, mhs_per_ap=4,
         duration_ms=2_000.0),
    Rung("l", n_br=6, ags_per_br=4, aps_per_ag=6, mhs_per_ap=6,
         duration_ms=1_000.0),
    Rung("xl", n_br=8, ags_per_br=5, aps_per_ag=8, mhs_per_ap=6,
         duration_ms=500.0),
    Rung("xxl", n_br=8, ags_per_br=8, aps_per_ag=8, mhs_per_ap=1,
         duration_ms=400.0, idle_per_ap=195, openworld_arrivals=200.0),
    Rung("metro", n_br=8, ags_per_br=16, aps_per_ag=32, mhs_per_ap=1,
         duration_ms=200.0, idle_per_ap=243, openworld_arrivals=300.0),
)

#: Rungs ``python -m repro.bench ladder`` runs when ``--rungs`` is not
#: given: the closed-world ladder.  The lazy-population rungs (xxl,
#: metro) are opt-in — they measure a different regime (million-endpoint
#: build + open-world traffic) and would dominate a default run's wall
#: clock.
DEFAULT_RUNGS: Tuple[str, ...] = ("xs", "s", "m", "l", "xl")


#: Long-form spellings accepted anywhere a rung name is: people type
#: ``--rungs xs,small`` at least as often as ``xs,s``.
RUNG_ALIASES = {
    "xsmall": "xs",
    "extra-small": "xs",
    "small": "s",
    "medium": "m",
    "large": "l",
    "xlarge": "xl",
    "extra-large": "xl",
    "xxlarge": "xxl",
    "extra-extra-large": "xxl",
    "million": "metro",
    "metropolitan": "metro",
}


def rung_names() -> List[str]:
    """Ladder rung names, smallest first."""
    return [r.name for r in LADDER]


def get_rung(name: str) -> Rung:
    """The rung called ``name`` (KeyError with the valid list otherwise).

    Accepts the canonical short names and their :data:`RUNG_ALIASES`
    long forms, case-insensitively and whitespace-tolerantly.
    """
    canon = name.strip().lower()
    canon = RUNG_ALIASES.get(canon, canon)
    for rung in LADDER:
        if rung.name == canon:
            return rung
    raise KeyError(
        f"unknown ladder rung {name!r}; known: {', '.join(rung_names())} "
        f"(aliases: {', '.join(sorted(RUNG_ALIASES))})")


def rung_spec(rung: Rung) -> ExperimentSpec:
    """Materialize a rung as a runnable spec."""
    return registry.get(BASE_SCENARIO, **rung.overrides)


def node_counts(spec: ExperimentSpec) -> Dict[str, int]:
    """NE/MH/total population of a spec's hierarchy (depth-1 and deep).

    ``mhs`` counts the *declared* population: eagerly-built MHs plus
    the lazily-registered per-AP catchment (``idle_per_ap``).
    """
    h = spec.hierarchy
    if h.depth > 1:
        ags = sum(h.n_br * h.ring_size ** level
                  for level in range(1, h.depth + 1))
        leaf_ags = h.n_br * h.ring_size ** h.depth
        aps = leaf_ags * h.aps_per_ag
    else:
        ags = h.n_br * h.ags_per_br
        aps = ags * h.aps_per_ag
    nes = h.n_br + ags + aps
    mhs = aps * (h.mhs_per_ap + h.idle_per_ap)
    return {"nes": nes, "mhs": mhs, "total": nes + mhs}
