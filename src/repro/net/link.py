"""Link models.

A link is directional in use but stored per unordered pair with symmetric
parameters.  Delay model per message::

    delay = base_latency + U(0, jitter) + size_bits / bandwidth_bps

Loss model: i.i.d. Bernoulli(loss_prob) per transmission — appropriate
for the paper's "high bit error rate" wireless channels when messages fit
in one frame.  Links can be taken down/up by the failure injector; a down
link silently drops everything (the reliable transport layer then sees
retransmission timeouts, exactly as a real protocol stack would).

Three canonical profiles are exported:

* :data:`WIRED` — backbone links between BRs/AGs/APs.
* :data:`WIRELESS` — AP↔MH access links (2% loss).
* :data:`LOSSY_WIRELESS` — stressed access links (10% loss) for the
  reliability sweeps (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.net.address import NodeId


@dataclass(frozen=True)
class LinkSpec:
    """Immutable link parameterization.

    Attributes
    ----------
    latency:
        One-way propagation delay (simulated time units; we use
        milliseconds throughout the repo).
    jitter:
        Max additional uniform random delay.
    bandwidth_bps:
        Serialization rate; ``0`` disables serialization delay.
    loss_prob:
        Per-transmission independent drop probability.
    """

    latency: float = 1.0
    jitter: float = 0.0
    bandwidth_bps: float = 0.0
    loss_prob: float = 0.0

    def with_loss(self, loss_prob: float) -> "LinkSpec":
        """Copy of this spec with a different loss probability."""
        return replace(self, loss_prob=loss_prob)

    def with_latency(self, latency: float, jitter: float | None = None) -> "LinkSpec":
        """Copy of this spec with different delay parameters."""
        if jitter is None:
            return replace(self, latency=latency)
        return replace(self, latency=latency, jitter=jitter)


#: Backbone wired link: 2 ms ± 0.5 ms, effectively lossless.
WIRED = LinkSpec(latency=2.0, jitter=0.5, bandwidth_bps=0.0, loss_prob=0.0)

#: Access wireless link: 5 ms ± 2 ms, 2% loss.
WIRELESS = LinkSpec(latency=5.0, jitter=2.0, bandwidth_bps=0.0, loss_prob=0.02)

#: Stressed wireless link used by reliability sweeps.
LOSSY_WIRELESS = LinkSpec(latency=5.0, jitter=2.0, bandwidth_bps=0.0, loss_prob=0.10)


@dataclass
class Link:
    """A live link instance: spec + operational state + counters."""

    a: NodeId
    b: NodeId
    spec: LinkSpec
    up: bool = True
    sent: int = 0
    dropped: int = 0

    @property
    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """The unordered endpoint pair as stored."""
        return (self.a, self.b)

    def connects(self, x: NodeId, y: NodeId) -> bool:
        """True if this link joins x and y (in either direction)."""
        return {self.a, self.b} == {x, y}
