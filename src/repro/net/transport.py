"""Per-link reliable transport: sequencing, acks, bounded retransmission.

The paper repeatedly invokes "some retransmission scheme" — for passing
the OrderingToken, for ring forwarding, and for parent→child / AP→MH
delivery — with *best-effort* semantics: after a bounded number of
retries the message is declared really lost and the upper layer moves on
(the "local-scope-based retransmission scheme" of §4.2.3).

:class:`ReliableChannel` provides exactly that contract to any
:class:`~repro.net.node.NetNode`:

* every payload is wrapped in a :class:`Segment` with a per-destination
  sequence number;
* the receiver acks each segment (:class:`SegAck`) and suppresses
  duplicates, delivering each payload exactly once (possibly out of
  order — ordering is the protocol layer's job);
* the sender retransmits on an RTO timer up to ``max_retries`` times and
  then *gives up*, reporting the loss through ``on_give_up``.

Usage pattern inside a node::

    self.chan = ReliableChannel(self, rto=20.0, max_retries=5,
                                on_give_up=self._lost)

    def on_message(self, msg):
        payload = self.chan.accept(msg)
        if payload is None:        # transport control or duplicate
            return
        ...handle payload...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.net.address import NodeId
from repro.net.message import Message
from repro.net.node import NetNode


class Segment(Message):
    """Channel-level wrapper: (seq, payload) between one node pair."""

    __slots__ = ("seq", "payload")

    def __init__(self, seq: int, payload: Message):
        self.seq = seq
        self.payload = payload
        self.size_bits = payload.size_bits + 64  # header overhead


class SegAck(Message):
    """Positive acknowledgement of one segment."""

    size_bits = 128

    __slots__ = ("seq",)

    def __init__(self, seq: int):
        self.seq = seq


@dataclass(slots=True)
class TransportStats:
    """Counters exposed for the reliability experiments."""

    sent: int = 0
    retransmitted: int = 0
    acked: int = 0
    gave_up: int = 0
    duplicates: int = 0
    delivered: int = 0


class _Outstanding:
    """Book-keeping for one unacked segment.

    Holds the raw scheduler handle of the pending RTO rather than a
    :class:`~repro.runtime.timers.Timer`: channels create one of
    these per sent message, and the extra wrapper object plus its
    attribute dict were measurable on the send hot path.
    """

    __slots__ = ("dst", "segment", "retries_left", "rto_event")

    def __init__(self, dst: NodeId, segment: Segment, retries_left: int):
        self.dst = dst
        self.segment = segment
        self.retries_left = retries_left
        self.rto_event: Optional[Any] = None


class ReliableChannel:
    """Best-effort reliable unicast on top of a lossy fabric.

    Parameters
    ----------
    node:
        Owning node; the channel sends through it and shares its fate.
    rto:
        Retransmission timeout (same time units as link latency — ms).
    max_retries:
        Retransmissions before giving up.  ``max_retries=0`` degrades the
        channel to pure fire-and-forget with dedup.
    on_give_up:
        Called as ``on_give_up(dst, payload)`` when a payload is dropped
        after exhausting retries — the hook the protocol layer uses to
        mark a message "really lost" (Received=False, Waiting=False).
    on_ack:
        Called as ``on_ack(dst, payload)`` when the peer acknowledges a
        segment — the hook the delivery algorithm uses to advance its
        per-child WT (max delivered global sequence number).
    """

    __slots__ = ("node", "rto", "max_retries", "on_give_up", "on_ack",
                 "stats", "_next_seq", "_outstanding", "_in_flight_by_dst",
                 "peak_in_flight_by_dst", "_seen_floor", "_seen_sparse")

    def __init__(
        self,
        node: NetNode,
        rto: float = 20.0,
        max_retries: int = 5,
        on_give_up: Optional[Callable[[NodeId, Message], None]] = None,
        on_ack: Optional[Callable[[NodeId, Message], None]] = None,
    ):
        if rto <= 0:
            raise ValueError(f"rto must be positive, got {rto}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.node = node
        self.rto = rto
        self.max_retries = max_retries
        self.on_give_up = on_give_up
        self.on_ack = on_ack
        self.stats = TransportStats()
        self._next_seq: Dict[NodeId, int] = {}
        self._outstanding: Dict[Tuple[NodeId, int], _Outstanding] = {}
        # Retransmission-state boundedness accounting (read by the
        # validation monitors): live and peak unacked segments per peer.
        self._in_flight_by_dst: Dict[NodeId, int] = {}
        self.peak_in_flight_by_dst: Dict[NodeId, int] = {}
        # Receiver-side dedup state per peer: cumulative floor + sparse set.
        self._seen_floor: Dict[NodeId, int] = {}
        self._seen_sparse: Dict[NodeId, Set[int]] = {}

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send(self, dst: NodeId, payload: Message) -> int:
        """Send ``payload`` reliably; returns the channel sequence number."""
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        seg = Segment(seq, payload)
        out = _Outstanding(dst, seg, self.max_retries)
        self._outstanding[(dst, seq)] = out
        live = self._in_flight_by_dst.get(dst, 0) + 1
        self._in_flight_by_dst[dst] = live
        if live > self.peak_in_flight_by_dst.get(dst, 0):
            self.peak_in_flight_by_dst[dst] = live
            obs = self.node.sim.obs
            if obs is not None:
                obs.gauge_max("transport.in_flight_peak", live)
        self.stats.sent += 1
        spans = self.node.sim.spans
        if spans is not None:
            spans.seg_send(self.node.now, self.node.id, dst, payload, False)
        self.node.send(dst, seg)
        out.rto_event = self.node.sim.schedule(
            self.rto, self._on_timeout, dst, seq)
        return seq

    def _drop_outstanding(self, dst: NodeId, seq: int) -> Optional[_Outstanding]:
        out = self._outstanding.pop((dst, seq), None)
        if out is not None:
            self._in_flight_by_dst[dst] = self._in_flight_by_dst.get(dst, 1) - 1
        return out

    def _cancel_rto(self, out: _Outstanding) -> None:
        if out.rto_event is not None:
            self.node.sim.cancel(out.rto_event)
            out.rto_event = None

    def _on_timeout(self, dst: NodeId, seq: int) -> None:
        out = self._outstanding.get((dst, seq))
        if out is None:
            return
        if not self.node.alive:
            # A crashed node retransmits nothing; leave state for recovery.
            return
        if out.retries_left <= 0:
            self._drop_outstanding(dst, seq)
            self.stats.gave_up += 1
            obs = self.node.sim.obs
            if obs is not None:
                obs.inc("transport.give_up")
            self.node.sim.trace.emit(
                self.node.now, "transport.give_up",
                src=self.node.id, dst=dst, msg_kind=out.segment.payload.kind,
            )
            spans = self.node.sim.spans
            if spans is not None:
                spans.give_up(self.node.now, self.node.id, dst,
                              out.segment.payload)
            if self.on_give_up is not None:
                self.on_give_up(dst, out.segment.payload)
            return
        out.retries_left -= 1
        self.stats.retransmitted += 1
        obs = self.node.sim.obs
        if obs is not None:
            obs.inc("transport.retransmitted")
        spans = self.node.sim.spans
        if spans is not None:
            spans.seg_send(self.node.now, self.node.id, dst,
                           out.segment.payload, True)
        self.node.send(dst, out.segment)
        out.rto_event = self.node.sim.schedule(
            self.rto, self._on_timeout, dst, seq)

    @property
    def in_flight(self) -> int:
        """Number of currently unacked segments."""
        return len(self._outstanding)

    def cancel_all(self, dst: Optional[NodeId] = None) -> None:
        """Abandon outstanding segments (to ``dst``, or all)."""
        keys = [k for k in self._outstanding if dst is None or k[0] == dst]
        for k in keys:
            self._cancel_rto(self._outstanding[k])
            self._drop_outstanding(*k)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def accept(self, msg: Message) -> Optional[Message]:
        """Filter transport messages; return app payload or None.

        Call with *every* incoming message.  Returns the inner payload
        exactly once per segment; returns None for acks, duplicates and
        non-transport messages are returned unchanged.
        """
        if isinstance(msg, SegAck):
            out = self._drop_outstanding(msg.src, msg.seq)
            if out is not None:
                self._cancel_rto(out)
                self.stats.acked += 1
                if self.on_ack is not None:
                    self.on_ack(out.dst, out.segment.payload)
            return None
        if isinstance(msg, Segment):
            # Always (re-)ack: the previous ack may have been lost.
            self.node.send(msg.src, SegAck(msg.seq))
            if self._already_seen(msg.src, msg.seq):
                self.stats.duplicates += 1
                return None
            self._mark_seen(msg.src, msg.seq)
            self.stats.delivered += 1
            payload = msg.payload
            payload.src = msg.src
            payload.dst = msg.dst
            payload.sent_at = msg.sent_at
            spans = self.node.sim.spans
            if spans is not None:
                spans.seg_recv(self.node.now, self.node.id, msg.src, payload)
            return payload
        return msg

    def _already_seen(self, src: NodeId, seq: int) -> bool:
        if seq < self._seen_floor.get(src, 0):
            return True
        return seq in self._seen_sparse.get(src, ())

    def _mark_seen(self, src: NodeId, seq: int) -> None:
        floor = self._seen_floor.get(src, 0)
        sparse = self._seen_sparse.setdefault(src, set())
        sparse.add(seq)
        # Compact: advance the cumulative floor over contiguous seqs.
        while floor in sparse:
            sparse.remove(floor)
            floor += 1
        self._seen_floor[src] = floor
