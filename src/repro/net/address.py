"""Node identities.

The paper distinguishes globally unique identities (GUID — e.g. a Mobile
IP home address) from locally unique ones (LUID — a care-of address).
For the simulation a single flat, human-readable string id per node is
sufficient for routing; the GUID/LUID split is kept at the protocol layer
(:mod:`repro.core.mobile_host`).

Ids are plain strings with a ``tier:index`` convention (``"br:0"``,
``"ag:1.2"``, ``"ap:1.2.3"``, ``"mh:17"``, ``"src:0"``), which keeps
traces grep-able and sorts naturally within a tier.
"""

from __future__ import annotations

NodeId = str


def make_id(tier: str, *indices: int) -> NodeId:
    """Build the conventional ``tier:i.j.k`` identifier.

    >>> make_id("ag", 1, 2)
    'ag:1.2'
    """
    if not indices:
        raise ValueError("at least one index is required")
    return f"{tier}:" + ".".join(str(i) for i in indices)


def tier_of(node_id: NodeId) -> str:
    """Extract the tier prefix of an id built by :func:`make_id`.

    >>> tier_of("ap:1.2.3")
    'ap'
    """
    tier, _, _ = node_id.partition(":")
    return tier
