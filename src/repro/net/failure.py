"""Failure injection: crash/recover nodes, down/up links, partitions.

Used by the topology-maintenance tests and the token-recovery experiment
(E9) to break the top ring at controlled instants.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.net.address import NodeId
from repro.net.fabric import Fabric


class FailureInjector:
    """Schedules fail-stop and link faults against a fabric."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.log: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    # Immediate operations
    # ------------------------------------------------------------------
    def crash_node(self, node_id: NodeId) -> None:
        """Fail-stop a node now."""
        self.fabric.node(node_id).crash()
        self.log.append((self.fabric.sim.now, "crash", node_id))
        self.fabric.sim.trace.emit(self.fabric.sim.now, "fault.crash", node=node_id)

    def recover_node(self, node_id: NodeId) -> None:
        """Recover a crashed node now (state as it was at crash)."""
        self.fabric.node(node_id).recover()
        self.log.append((self.fabric.sim.now, "recover", node_id))
        self.fabric.sim.trace.emit(self.fabric.sim.now, "fault.recover", node=node_id)

    def link_down(self, a: NodeId, b: NodeId) -> None:
        """Silently drop everything on the a<->b link from now on."""
        self.fabric.set_link_up(a, b, False)
        self.log.append((self.fabric.sim.now, "link_down", f"{a}|{b}"))

    def link_up(self, a: NodeId, b: NodeId) -> None:
        """Restore the a<->b link."""
        self.fabric.set_link_up(a, b, True)
        self.log.append((self.fabric.sim.now, "link_up", f"{a}|{b}"))

    def partition(self, group_a: Iterable[NodeId], group_b: Iterable[NodeId]) -> None:
        """Down every link crossing the two groups."""
        ga, gb = set(group_a), set(group_b)
        for link in self.fabric.links:
            if (link.a in ga and link.b in gb) or (link.a in gb and link.b in ga):
                link.up = False
        self.log.append((self.fabric.sim.now, "partition", f"{sorted(ga)}|{sorted(gb)}"))

    def heal(self) -> None:
        """Bring every link back up."""
        for link in self.fabric.links:
            link.up = True
        self.log.append((self.fabric.sim.now, "heal", "*"))

    # ------------------------------------------------------------------
    # Scheduled operations
    # ------------------------------------------------------------------
    def crash_node_at(self, time: float, node_id: NodeId) -> None:
        """Schedule a fail-stop at an absolute time."""
        self.fabric.sim.schedule_at(time, self.crash_node, node_id)

    def recover_node_at(self, time: float, node_id: NodeId) -> None:
        """Schedule a recovery at an absolute time."""
        self.fabric.sim.schedule_at(time, self.recover_node, node_id)

    def link_down_at(self, time: float, a: NodeId, b: NodeId) -> None:
        """Schedule a link fault at an absolute time."""
        self.fabric.sim.schedule_at(time, self.link_down, a, b)

    def link_up_at(self, time: float, a: NodeId, b: NodeId) -> None:
        """Schedule a link restoration at an absolute time."""
        self.fabric.sim.schedule_at(time, self.link_up, a, b)
