"""Base class for every simulated network entity."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.net.address import NodeId
from repro.net.message import Message
from repro.runtime.api import Runtime
from repro.runtime.timers import PeriodicTimer, Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fabric import Fabric


class NetNode:
    """A protocol endpoint attached to a :class:`~repro.net.fabric.Fabric`.

    Subclasses override :meth:`on_message`.  Construction registers the
    node with the fabric; a node that has been :meth:`crash`-ed neither
    sends nor receives until :meth:`recover`-ed.

    Slotted so fully-slotted leaf subclasses (``MobileHost`` above all —
    the entity class that exists a million times at the metro rung) pay
    no per-instance ``__dict__``; subclasses that declare no
    ``__slots__`` of their own still get a dict and lose nothing.
    """

    __slots__ = ("fabric", "id", "alive", "rx_count", "tx_count")

    def __init__(self, fabric: "Fabric", node_id: NodeId):
        self.fabric = fabric
        self.id = node_id
        self.alive = True
        self.rx_count = 0
        self.tx_count = 0
        fabric.register(self)

    # ------------------------------------------------------------------
    @property
    def sim(self) -> Runtime:
        """The runtime driving this node's fabric (sim or live)."""
        return self.fabric.sim

    @property
    def now(self) -> float:
        """Current time (simulated or wall-clock-derived, in ms)."""
        return self.fabric.sim.now

    # ------------------------------------------------------------------
    def send(self, dst: NodeId, msg: Message) -> bool:
        """Fire-and-forget transmission over the direct link to ``dst``.

        Returns False when the message was not even handed to the fabric
        (this node crashed).  Loss in flight is *not* reported — that is
        the transport layer's problem.
        """
        if not self.alive:
            return False
        self.tx_count += 1
        return self.fabric.send(self.id, dst, msg)

    def timer(self, fn: Callable[..., Any], *args: Any) -> Timer:
        """Convenience: a one-shot timer bound to this node's simulator."""
        return Timer(self.sim, fn, *args)

    def periodic(self, period: float, fn: Callable[..., Any], *args: Any,
                 phase: float = 0.0) -> PeriodicTimer:
        """Convenience: a periodic timer bound to this node's simulator."""
        return PeriodicTimer(self.sim, period, fn, *args, phase=phase)

    # ------------------------------------------------------------------
    def deliver(self, msg: Message) -> None:
        """Called by the fabric when a message survives the link."""
        if not self.alive:
            return
        self.rx_count += 1
        self.on_message(msg)

    def on_message(self, msg: Message) -> None:
        """Override in subclasses; default drops silently."""

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop this node (messages to/from it vanish)."""
        self.alive = False

    def recover(self) -> None:
        """Bring the node back (protocol state is whatever survived)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<{type(self).__name__} {self.id} {state}>"
