"""Network substrate: nodes, links, fabric, and reliable transport.

This package simulates the "mobile Internet" the paper deploys on:
wired links between routers (low loss, moderate latency) and wireless
links between Access Proxies and Mobile Hosts (higher loss and jitter).
Protocol layers above only see :class:`~repro.net.message.Message`
arrivals at :class:`~repro.net.node.NetNode` handlers, so any protocol in
this repo runs unchanged across link parameterizations.

Layering
--------
* :class:`Fabric` owns the node registry and links and performs the
  per-hop latency/loss/bandwidth simulation.
* :class:`NetNode` is the base class for every protocol entity (BR, AG,
  AP, MH, source, baseline hosts); it offers fire-and-forget ``send``.
* :class:`ReliableChannel` adds per-peer sequencing, positive acks,
  retransmission timers, and bounded retries on top of a ``NetNode`` —
  the paper's "some retransmission scheme" for both data and the
  OrderingToken, with best-effort give-up semantics.
* :class:`FailureInjector` crashes/restores nodes and links mid-run.
"""

from repro.net.address import NodeId, make_id
from repro.net.message import Message
from repro.net.link import Link, LinkSpec, WIRED, WIRELESS, LOSSY_WIRELESS
from repro.net.node import NetNode
from repro.net.fabric import Fabric
from repro.net.transport import ReliableChannel, TransportStats
from repro.net.failure import FailureInjector

__all__ = [
    "NodeId",
    "make_id",
    "Message",
    "Link",
    "LinkSpec",
    "WIRED",
    "WIRELESS",
    "LOSSY_WIRELESS",
    "NetNode",
    "Fabric",
    "ReliableChannel",
    "TransportStats",
    "FailureInjector",
]
