"""Base message type carried by the fabric.

Concrete protocols subclass :class:`Message` (usually as frozen-ish
dataclasses) and dispatch on type in their node handlers.  The fabric
itself only reads :attr:`size_bits` (for bandwidth serialization delay)
and fills in the routing envelope (:attr:`src`, :attr:`dst`,
:attr:`sent_at`).
"""

from __future__ import annotations

from typing import Optional

from repro.net.address import NodeId

#: Default message size used when a subclass does not override it.
#: 1 KB payloads are representative of the paper's application messages.
DEFAULT_SIZE_BITS = 8 * 1024


class Message:
    """A network message.  Subclass and add payload fields.

    The envelope fields are assigned by :meth:`repro.net.fabric.Fabric.send`;
    user code never sets them directly.
    """

    #: Size on the wire, used for serialization delay: size_bits / bandwidth.
    size_bits: int = DEFAULT_SIZE_BITS

    src: Optional[NodeId] = None
    dst: Optional[NodeId] = None
    sent_at: Optional[float] = None

    @property
    def kind(self) -> str:
        """Short type tag used in traces (the class name)."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.src}->{self.dst}>"
