"""The fabric: node registry + link table + per-hop transmission model.

The fabric implements *direct-link* semantics: ``send(a, b, msg)``
requires a configured link between ``a`` and ``b``.  Protocols in this
repo (RingNet and all baselines) are overlay protocols whose logical
neighbors are always provisioned with a link by the topology builders, so
no routing layer is needed — matching the paper, where all communication
is between configured neighbors (ring next/prev, parent/child, AP↔MH).

A ``default_spec`` may be installed to auto-create links on first use,
which keeps ad-hoc tests short.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.address import NodeId
from repro.net.link import Link, LinkSpec
from repro.net.message import Message
from repro.net.node import NetNode
from repro.runtime.api import Runtime


class Fabric:
    """Message transmission substrate.

    Parameters
    ----------
    sim:
        The runtime that schedules deliveries (sim engine or live).
    default_spec:
        When given, unknown (src, dst) pairs get a link with this spec on
        first send instead of raising.
    """

    def __init__(self, sim: Runtime, default_spec: Optional[LinkSpec] = None):
        self.sim = sim
        self.nodes: Dict[NodeId, NetNode] = {}
        self._links: Dict[Tuple[NodeId, NodeId], Link] = {}
        self.default_spec = default_spec
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_delivered = 0
        # Per-sender loss/jitter stream caches.  Streams are keyed by the
        # *sending* node so a sender's draw sequence depends only on its
        # own transmission history — never on how other senders' sends
        # interleave globally.  That makes link randomness
        # decomposition-invariant, which the space-parallel backend
        # (repro.shard) requires for byte-identical traces.
        self._loss_rngs: Dict[NodeId, object] = {}
        self._jitter_rngs: Dict[NodeId, object] = {}
        #: Optional :class:`repro.faults.overlay.FaultOverlay` consulted
        #: on every send while a fault action is active (partitions,
        #: degradation, flapping, correlated loss).  ``None`` — the
        #: default — keeps the send path exactly as before.
        self.fault_overlay = None

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, node: NetNode) -> None:
        """Add a node; ids must be unique within a fabric."""
        if node.id in self.nodes:
            raise ValueError(f"duplicate node id {node.id!r}")
        self.nodes[node.id] = node

    def node(self, node_id: NodeId) -> NetNode:
        """Look up a node by id (KeyError when absent)."""
        return self.nodes[node_id]

    def has_node(self, node_id: NodeId) -> bool:
        """True when a node with this id is registered."""
        return node_id in self.nodes

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    @staticmethod
    def _key(a: NodeId, b: NodeId) -> Tuple[NodeId, NodeId]:
        return (a, b) if a <= b else (b, a)

    def connect(self, a: NodeId, b: NodeId, spec: LinkSpec) -> Link:
        """Create (or replace the spec of) the link between a and b."""
        if a == b:
            raise ValueError(f"self-link on {a!r}")
        key = self._key(a, b)
        link = self._links.get(key)
        if link is None:
            link = Link(key[0], key[1], spec)
            self._links[key] = link
        else:
            link.spec = spec
            link.up = True
        return link

    def disconnect(self, a: NodeId, b: NodeId) -> None:
        """Remove the link entirely (send() will then fail/auto-create)."""
        if self._links.pop(self._key(a, b), None) is None:
            raise KeyError(f"no link {a!r} <-> {b!r}")

    def link(self, a: NodeId, b: NodeId) -> Optional[Link]:
        """The link between a and b, or None."""
        return self._links.get(self._key(a, b))

    def set_link_up(self, a: NodeId, b: NodeId, up: bool) -> None:
        """Raise/lower a link; messages on a down link are dropped."""
        link = self._links.get(self._key(a, b))
        if link is None:
            raise KeyError(f"no link {a!r} <-> {b!r}")
        link.up = up

    @property
    def links(self) -> list[Link]:
        """All configured links (stable order for reports)."""
        return [self._links[k] for k in sorted(self._links)]

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _loss_rng(self, src: NodeId):
        rng = self._loss_rngs.get(src)
        if rng is None:
            rng = self.sim.rng(f"link.loss.{src}")
            self._loss_rngs[src] = rng
        return rng

    def _jitter_rng(self, src: NodeId):
        rng = self._jitter_rngs.get(src)
        if rng is None:
            rng = self.sim.rng(f"link.jitter.{src}")
            self._jitter_rngs[src] = rng
        return rng

    def send(self, src: NodeId, dst: NodeId, msg: Message) -> bool:
        """Simulate one transmission hop.

        Returns True when the message was accepted for transmission
        (which does *not* imply delivery — it may still be lost).

        Under the sharded backend a send from a non-local sender is a
        no-op (the sender's shard performs it); a send whose destination
        lives on another shard is exported with the exact arrival time
        and causal key the sequential engine would have used.
        """
        sim = self.sim
        sh = sim.shard
        if sh is not None:
            if sim.current_owner is None:
                # A send from replicated control context would tick the
                # action counter on the sender's shard only, silently
                # desynchronizing causal keys across shards.  Every
                # legitimate send happens inside an ownership section
                # (the entity boundaries wrap them); fail loudly here
                # rather than diverge quietly later.
                raise RuntimeError(
                    f"fabric.send({src!r} -> {dst!r}) from control-plane "
                    f"context under sharding; wrap the sender in "
                    f"sim.call_owned(...)")
            if not sh.is_local(src):
                return True
        self.messages_sent += 1
        link = self._links.get(self._key(src, dst))
        if link is None:
            if self.default_spec is None:
                raise KeyError(f"no link {src!r} <-> {dst!r} and no default spec")
            link = self.connect(src, dst, self.default_spec)

        msg.src = src
        msg.dst = dst
        msg.sent_at = sim.now
        link.sent += 1

        if not link.up:
            link.dropped += 1
            self.messages_dropped += 1
            return True
        spec = link.spec
        loss_prob = spec.loss_prob
        latency = spec.latency
        overlay = self.fault_overlay
        if overlay is not None and overlay.active:
            fx = overlay.effects(src, dst)
            if fx is not None:
                blocked = overlay.blocked_by(fx, sim.now)
                if blocked is not None:
                    # Partition / flap-down: silent drop, exactly like a
                    # down link (the reliable transport sees timeouts).
                    overlay.note_drop(blocked)
                    link.dropped += 1
                    self.messages_dropped += 1
                    return True
                if fx.bursts:
                    burst = overlay.burst_drop(fx, src)
                    if burst is not None:
                        overlay.note_drop(burst)
                        link.dropped += 1
                        self.messages_dropped += 1
                        sim.trace.emit(sim.now, "net.loss", src=src,
                                       dst=dst, msg_kind=msg.kind)
                        return True
                if fx.loss is not None:
                    loss_prob = fx.loss
                if fx.factor != 1.0:
                    latency = latency * fx.factor
        if loss_prob > 0.0:
            if self._loss_rng(src).random() < loss_prob:
                link.dropped += 1
                self.messages_dropped += 1
                sim.trace.emit(sim.now, "net.loss", src=src, dst=dst,
                               msg_kind=msg.kind)
                return True

        delay = latency
        if spec.jitter > 0.0:
            delay += self._jitter_rng(src).random() * spec.jitter
        if spec.bandwidth_bps > 0.0:
            delay += msg.size_bits / spec.bandwidth_bps * 1000.0  # ms units

        if sh is not None and not sh.is_local(dst):
            sh.export(sim.now + delay, delay, sim.mint_child_key(), dst, msg)
            return True
        self._dispatch(dst, msg, delay)
        return True

    def _dispatch(self, dst: NodeId, msg: Message, delay: float) -> None:
        """Hand one accepted transmission to the runtime for arrival.

        The single backend-specific point of the send path: everything
        above (links, faults, loss, jitter, bandwidth) is pure modelling,
        so live fabrics (:mod:`repro.live.fabric`) override only this to
        route the arrival through a queue or a socket instead of the
        scheduler.
        """
        self.sim.schedule(delay, self._arrive, dst, msg, owner=dst)

    def _arrive(self, dst: NodeId, msg: Message) -> None:
        node = self.nodes.get(dst)
        if node is None or not node.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        node.deliver(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fabric nodes={len(self.nodes)} links={len(self._links)} "
            f"sent={self.messages_sent} delivered={self.messages_delivered}>"
        )
