"""Composable fault injection: partitions, degradation, correlated loss.

The subsystem has three layers:

* :mod:`repro.faults.plan` — declarative, JSON-round-trippable
  :class:`FaultPlan`/:class:`FaultAction` data (attached to
  :class:`~repro.experiments.spec.ExperimentSpec` as its ``faults``
  section);
* :mod:`repro.faults.overlay` — the fabric-side active set consulted by
  ``Fabric.send()`` (installed as ``fabric.fault_overlay``);
* :mod:`repro.faults.driver` — control-plane activation/heal events,
  replicated across shards so K-shard traces stay byte-identical.

``python -m repro.faults`` renders and inspects plans.
"""

from repro.faults.gilbert import GilbertElliott
from repro.faults.driver import FaultDriver, structural_home, subtree_nodes
from repro.faults.overlay import FaultOverlay
from repro.faults.plan import (DIRECTIONS, REST, TOKEN_HOLDER_SUBTREE,
                               Degrade, FaultAction, FaultPlan, Flap,
                               LossBurst, Partition, selector_matches)

__all__ = [
    "DIRECTIONS",
    "REST",
    "TOKEN_HOLDER_SUBTREE",
    "Degrade",
    "FaultAction",
    "FaultDriver",
    "FaultOverlay",
    "FaultPlan",
    "Flap",
    "GilbertElliott",
    "LossBurst",
    "Partition",
    "selector_matches",
    "structural_home",
    "subtree_nodes",
]
