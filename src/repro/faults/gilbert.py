"""Gilbert–Elliott two-state correlated-loss channel model.

The classic burst-loss model: a hidden Markov chain alternates between a
*good* state (loss probability ``loss_good``, usually ~0) and a *bad*
state (``loss_bad``, usually near 1).  Per transmission the chain first
draws the drop decision from the current state, then transitions
(good→bad with ``p_gb``, bad→good with ``p_bg``).

Closed-form properties used by the property tests:

* stationary bad-state probability ``π_B = p_gb / (p_gb + p_bg)``;
* long-run loss rate ``π_B·loss_bad + (1-π_B)·loss_good``;
* bad-state sojourns are geometric with mean ``1 / p_bg``.

Determinism: a chain consumes exactly **two** uniform draws per step
(drop, then transition) whatever the outcome, so a sender's draw
sequence depends only on how many affected transmissions it has made —
never on the outcomes — which keeps replay and shard decomposition
byte-stable.
"""

from __future__ import annotations


class GilbertElliott:
    """One sender's chain state plus the model parameters.

    ``rng`` objects passed to :meth:`step` need only a ``random()``
    method (both numpy ``Generator`` and the pure-python fallback of
    :mod:`repro.sim.rand` qualify).
    """

    __slots__ = ("p_gb", "p_bg", "loss_good", "loss_bad", "bad")

    def __init__(self, p_gb: float, p_bg: float,
                 loss_good: float = 0.0, loss_bad: float = 1.0,
                 start_bad: bool = False):
        if not 0.0 < p_gb <= 1.0 or not 0.0 < p_bg <= 1.0:
            raise ValueError("transition probabilities must be in (0, 1]")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = start_bad

    # ------------------------------------------------------------------
    @property
    def stationary_bad(self) -> float:
        """Long-run probability of the bad state."""
        return self.p_gb / (self.p_gb + self.p_bg)

    @property
    def stationary_loss(self) -> float:
        """Long-run expected loss rate."""
        pi_b = self.stationary_bad
        return pi_b * self.loss_bad + (1.0 - pi_b) * self.loss_good

    @property
    def mean_burst_length(self) -> float:
        """Expected consecutive transmissions spent in the bad state."""
        return 1.0 / self.p_bg

    # ------------------------------------------------------------------
    def step(self, rng) -> bool:
        """Advance one transmission; True when it is dropped.

        Always consumes exactly two draws (drop, transition) so the
        stream position is a pure function of the step count.
        """
        loss = self.loss_bad if self.bad else self.loss_good
        drop = rng.random() < loss
        flip = rng.random()
        if self.bad:
            if flip < self.p_bg:
                self.bad = False
        elif flip < self.p_gb:
            self.bad = True
        return drop
