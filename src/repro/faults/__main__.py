"""Command-line entry point: ``python -m repro.faults``.

Subcommands
-----------
* ``list`` — registry scenarios that carry a fault plan.
* ``show NAME|FILE`` — render a scenario's (or a JSON plan/spec file's)
  fault plan as a human timeline; ``--json`` prints the canonical JSON.
* ``validate FILE`` — round-trip a plan (or spec) file and report
  whether it is structurally valid.

Examples
--------
::

    python -m repro.faults list
    python -m repro.faults show split_brain
    python -m repro.faults show split_brain --json > plan.json
    python -m repro.faults validate plan.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.faults.plan import FaultPlan


def _plan_of(source: str) -> Optional[FaultPlan]:
    """Resolve a registry scenario name or a JSON file into a plan.

    JSON files may be a bare plan (``{"actions": [...]}``) or a full
    experiment spec (the plan is taken from its ``faults`` section).
    """
    if os.path.exists(source):
        with open(source, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if "actions" in data:
            return FaultPlan.from_dict(data)
        from repro.experiments.spec import ExperimentSpec
        return ExperimentSpec.from_dict(data).faults
    from repro.experiments import registry
    return registry.get(source).faults


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments import registry
    rows = []
    for name in registry.names():
        plan = registry.entry(name).factory().faults
        if plan:
            span = plan.span()
            end = "∞" if span[1] is None else f"{span[1]:g}"
            rows.append((name, len(plan), f"[{span[0]:g}, {end}] ms"))
    if not rows:
        print("no registry scenario carries a fault plan")
        return 0
    width = max(len(r[0]) for r in rows)
    for name, n, window in rows:
        print(f"{name:<{width}}  {n} action(s)  {window}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    try:
        plan = _plan_of(args.source)
    except (KeyError, ValueError, OSError, json.JSONDecodeError) as exc:
        msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 1
    if not plan:
        print(f"{args.source}: empty fault plan")
        return 0
    if args.json:
        print(plan.to_json())
        return 0
    print(f"{args.source}: {len(plan)} fault action(s)")
    for line in plan.describe():
        print("  " + line)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        plan = _plan_of(args.file)
    except (ValueError, KeyError, OSError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    # Round-trip: dict -> plan -> dict must be a fixed point.
    again = FaultPlan.from_dict(plan.to_dict())
    if again.to_dict() != plan.to_dict():  # pragma: no cover - paranoia
        print("INVALID: plan does not round-trip", file=sys.stderr)
        return 1
    print(f"ok: {len(plan)} action(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="render and inspect fault-injection plans")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="scenarios carrying fault plans")
    p_list.set_defaults(fn=_cmd_list)

    p_show = sub.add_parser("show", help="render one plan as a timeline")
    p_show.add_argument("source", help="registry scenario name or JSON file")
    p_show.add_argument("--json", action="store_true",
                        help="print the canonical JSON instead")
    p_show.set_defaults(fn=_cmd_show)

    p_val = sub.add_parser("validate", help="check a plan/spec JSON file")
    p_val.add_argument("file", help="JSON file (bare plan or full spec)")
    p_val.set_defaults(fn=_cmd_validate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
