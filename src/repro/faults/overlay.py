"""The fault overlay: the fabric-side view of active fault actions.

One :class:`FaultOverlay` hangs off ``Fabric.fault_overlay`` and is
consulted by ``Fabric.send()`` on every transmission while any action is
active.  The overlay never schedules anything itself — activation and
expiry are control-plane events owned by
:class:`repro.faults.driver.FaultDriver`, which installs *resolved*
entries (concrete node groups, link patterns) here.

Determinism contract (what keeps K-shard traces byte-identical):

* install/remove happen in replicated control-plane events, so every
  shard sees the same active set at the same simulated instant;
* partition/degrade verdicts for a (src, dst) pair are pure functions of
  the active set, memoized per pair and invalidated on every change;
* flap up/down is a pure function of simulated time (no toggle events);
* Gilbert–Elliott chains advance per *sender* transmission from a
  per-sender random stream (``fault.ge.<src>``), so a sender's draw
  sequence depends only on its own transmission history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.gilbert import GilbertElliott
from repro.faults.plan import Flap, selector_matches


def _pair_matches(patterns: List[List[str]], src: str, dst: str) -> bool:
    """Does any ``[a, b]`` pattern pair cover the link either way round?"""
    for a, b in patterns:
        if (selector_matches(a, src) and selector_matches(b, dst)) or \
                (selector_matches(a, dst) and selector_matches(b, src)):
            return True
    return False


class _PairFx:
    """Memoized per-(src, dst) effect summary of the active set."""

    __slots__ = ("partition_of", "flaps", "loss", "factor", "bursts")

    def __init__(self, partition_of: Optional[int],
                 flaps: Tuple[Tuple[int, Flap], ...],
                 loss: Optional[float], factor: float,
                 bursts: Tuple[Tuple[int, "_BurstEntry"], ...]):
        self.partition_of = partition_of
        self.flaps = flaps
        self.loss = loss
        self.factor = factor
        self.bursts = bursts


class _BurstEntry:
    """One active LossBurst: patterns + per-sender chain states."""

    __slots__ = ("patterns", "p_gb", "p_bg", "loss_good", "loss_bad",
                 "chains")

    def __init__(self, patterns, p_gb, p_bg, loss_good, loss_bad):
        self.patterns = patterns
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.chains: Dict[str, GilbertElliott] = {}

    def chain_for(self, src: str) -> GilbertElliott:
        chain = self.chains.get(src)
        if chain is None:
            chain = GilbertElliott(self.p_gb, self.p_bg,
                                   self.loss_good, self.loss_bad)
            self.chains[src] = chain
        return chain


class FaultOverlay:
    """Active fault entries + the per-pair effect memo."""

    def __init__(self, sim):
        self.sim = sim
        #: index -> (groups as tuple of disjoint frozensets, direction)
        self._partitions: Dict[int, Tuple[Tuple[frozenset, ...], str]] = {}
        #: index -> (patterns, loss override or None, latency factor)
        self._degrades: Dict[int, Tuple[list, Optional[float], float]] = {}
        #: index -> the Flap action (time function lives on the action)
        self._flaps: Dict[int, Flap] = {}
        self._bursts: Dict[int, _BurstEntry] = {}
        self._memo: Dict[Tuple[str, str], Optional[_PairFx]] = {}
        self._ge_rngs: Dict[str, object] = {}
        #: Per-action drop tallies (diagnostics; never trace-bearing).
        self.drops_by_action: Dict[int, int] = {}
        self.active = False
        self._next_namespace = 0

    def claim_namespace(self, n_actions: int) -> int:
        """Reserve a contiguous index range for one driver's entries.

        Lets multiple :class:`~repro.faults.driver.FaultDriver`\\ s share
        a fabric without their plan-local action indices colliding; the
        first (and in practice usually only) driver gets base 0, so its
        overlay/trace indices equal its plan indices.
        """
        base = self._next_namespace
        self._next_namespace = base + n_actions
        return base

    # ------------------------------------------------------------------
    # Entry management (driver-only)
    # ------------------------------------------------------------------
    def _changed(self) -> None:
        self._memo.clear()
        self.active = bool(self._partitions or self._degrades
                           or self._flaps or self._bursts)

    def install_partition(self, index: int, groups: Tuple[frozenset, ...],
                          direction: str) -> None:
        self._partitions[index] = (groups, direction)
        self._changed()

    def install_degrade(self, index: int, patterns: list,
                        loss: Optional[float], factor: float) -> None:
        self._degrades[index] = (patterns, loss, factor)
        self._changed()

    def install_flap(self, index: int, action: Flap) -> None:
        self._flaps[index] = action
        self._changed()

    def install_burst(self, index: int, entry: _BurstEntry) -> None:
        self._bursts[index] = entry
        self._changed()

    def remove(self, index: int) -> None:
        """Deactivate the entry installed under ``index`` (heal/expire)."""
        for table in (self._partitions, self._degrades, self._flaps,
                      self._bursts):
            if table.pop(index, None) is not None:
                self._changed()
                return
        raise KeyError(f"no active fault entry with index {index}")

    # ------------------------------------------------------------------
    # Send-path queries
    # ------------------------------------------------------------------
    def _compute(self, src: str, dst: str) -> Optional[_PairFx]:
        partition_of: Optional[int] = None
        for index in sorted(self._partitions):
            groups, direction = self._partitions[index]
            gi_src = gi_dst = None
            for gi, members in enumerate(groups):
                if gi_src is None and src in members:
                    gi_src = gi
                if gi_dst is None and dst in members:
                    gi_dst = gi
            if gi_src is None or gi_dst is None or gi_src == gi_dst:
                continue
            if (direction == "both"
                    or (direction == "a_to_b" and gi_src == 0)
                    or (direction == "b_to_a" and gi_src == 1)):
                partition_of = index
                break
        flaps = tuple((i, f) for i, f in sorted(self._flaps.items())
                      if _pair_matches([f.link], src, dst))
        loss: Optional[float] = None
        factor = 1.0
        for index in sorted(self._degrades):
            patterns, d_loss, d_factor = self._degrades[index]
            if not _pair_matches(patterns, src, dst):
                continue
            if d_loss is not None:
                loss = d_loss if loss is None else max(loss, d_loss)
            factor *= d_factor
        bursts = tuple((i, e) for i, e in sorted(self._bursts.items())
                       if _pair_matches(e.patterns, src, dst))
        if partition_of is None and not flaps and loss is None \
                and factor == 1.0 and not bursts:
            return None
        return _PairFx(partition_of, flaps, loss, factor, bursts)

    def effects(self, src: str, dst: str) -> Optional[_PairFx]:
        """The (memoized) effect summary for a pair, or None."""
        pair = (src, dst)
        try:
            return self._memo[pair]
        except KeyError:
            fx = self._compute(src, dst)
            self._memo[pair] = fx
            return fx

    def blocked_by(self, fx: _PairFx, now: float) -> Optional[int]:
        """Action index silencing this pair right now, or None."""
        if fx.partition_of is not None:
            return fx.partition_of
        for index, flap in fx.flaps:
            if not flap.is_up(now):
                return index
        return None

    def burst_drop(self, fx: _PairFx, src: str) -> Optional[int]:
        """Advance every matching Gilbert–Elliott chain for ``src``;
        returns the index of a chain that dropped the transmission (every
        chain still advances, keeping draw counts outcome-independent)."""
        rng = self._ge_rngs.get(src)
        if rng is None:
            rng = self.sim.rng(f"fault.ge.{src}")
            self._ge_rngs[src] = rng
        dropped: Optional[int] = None
        for index, entry in fx.bursts:
            if entry.chain_for(src).step(rng) and dropped is None:
                dropped = index
        return dropped

    def note_drop(self, index: int) -> None:
        self.drops_by_action[index] = self.drops_by_action.get(index, 0) + 1

    def report(self) -> Dict[str, object]:
        """Diagnostic snapshot (active entries + drop tallies)."""
        return {
            "active_partitions": sorted(self._partitions),
            "active_degrades": sorted(self._degrades),
            "active_flaps": sorted(self._flaps),
            "active_bursts": sorted(self._bursts),
            "drops_by_action": dict(sorted(self.drops_by_action.items())),
        }
