"""Declarative fault plans: composable, timed network-fault actions.

A :class:`FaultPlan` is an ordered list of timed :class:`FaultAction`\\ s
describing *network* faults — conditions the binary link up/down and
fail-stop crash model of :mod:`repro.net.failure` cannot express:

* :class:`Partition` — drop all traffic crossing a set of node groups
  (including **asymmetric** one-way partitions), healing at a scheduled
  instant;
* :class:`Degrade` — dynamic per-link loss/latency overrides layered on
  top of the static :class:`~repro.net.link.LinkSpec`;
* :class:`Flap` — a periodically flapping link (up ``duty`` of every
  ``period_ms``);
* :class:`LossBurst` — correlated loss bursts from a Gilbert–Elliott
  two-state channel (see :mod:`repro.faults.gilbert`).

Like :class:`~repro.experiments.spec.ExperimentSpec` (which carries a
plan in its ``faults`` section), this module is pure data: plans
round-trip through dicts and JSON, so a fault schedule can live in a
spec file, travel to a sweep worker, or be diffed between campaigns.
Executing a plan is the job of :class:`repro.faults.driver.FaultDriver`.

Node **selectors** are plain ids (``"br:0"``), ``fnmatch`` glob patterns
over ids (``"ap:0.*"``), or one of two dynamic forms resolved at
activation time:

* ``"@token_holder_subtree"`` — the hierarchy subtree under the top-ring
  NE currently holding the OrderingToken (plus the MHs structurally
  homed there and the sources feeding it);
* ``"@rest"`` — every fabric node not claimed by any other group of the
  same partition (only meaningful as a partition group).

A node matched by **no** group of a partition is unaffected by it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

#: Selector resolved dynamically to the token holder's subtree.
TOKEN_HOLDER_SUBTREE = "@token_holder_subtree"

#: Selector for "every node not in any other group" (partitions only).
REST = "@rest"

#: Valid one-way/two-way partition directions.  ``a_to_b`` drops only
#: traffic *from* group 0 *to* group 1 (and requires exactly 2 groups).
DIRECTIONS = ("both", "a_to_b", "b_to_a")


def selector_matches(selector: str, node_id: str) -> bool:
    """Does a (non-dynamic) selector cover ``node_id``?"""
    return selector == node_id or fnmatchcase(node_id, selector)


def _check_keys(cls: type, data: Mapping[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys {unknown}; valid keys: "
            f"{sorted(known)}")


def _check_pairs(name: str, links: Sequence[Sequence[str]]) -> None:
    if not links:
        raise ValueError(f"{name} needs at least one link pattern pair")
    for pair in links:
        if len(pair) != 2:
            raise ValueError(
                f"{name} link patterns must be [a, b] pairs, got {pair!r}")


@dataclass
class FaultAction:
    """Base of all fault actions: a kind plus an activation instant."""

    kind: str = ""
    at_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be >= 0")

    #: Time the action stops affecting traffic (None = never).
    def end_ms(self) -> Optional[float]:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultAction":
        kinds = {"partition": Partition, "degrade": Degrade,
                 "flap": Flap, "loss_burst": LossBurst}
        kind = data.get("kind")
        if kind not in kinds:
            raise ValueError(
                f"unknown fault action kind {kind!r}; valid: "
                f"{sorted(kinds)}")
        sub = kinds[kind]
        _check_keys(sub, data)
        return sub(**data)


@dataclass
class Partition(FaultAction):
    """Drop traffic crossing ``groups`` from ``at_ms`` until healed.

    ``groups`` is a list of at least two selector lists.  A message is
    dropped when its source and destination resolve into *different*
    groups (and ``direction`` covers that crossing); nodes in no group
    are unaffected.  ``heal_at_ms=None`` never heals.
    """

    kind: str = "partition"
    groups: List[List[str]] = field(default_factory=list)
    heal_at_ms: Optional[float] = None
    direction: str = "both"

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        for g in self.groups:
            if not g:
                raise ValueError("partition groups must be non-empty")
        n_rest = sum(1 for g in self.groups if REST in g)
        if n_rest > 1:
            raise ValueError(f"at most one group may contain {REST!r}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        if self.direction != "both" and len(self.groups) != 2:
            raise ValueError(
                "one-way partitions need exactly two groups")
        if self.heal_at_ms is not None and self.heal_at_ms <= self.at_ms:
            raise ValueError("heal_at_ms must be after at_ms")

    def end_ms(self) -> Optional[float]:
        return self.heal_at_ms

    @property
    def dynamic(self) -> bool:
        """True when resolution needs run-time state (the token holder)."""
        return any(TOKEN_HOLDER_SUBTREE in g for g in self.groups)


@dataclass
class Degrade(FaultAction):
    """Loss/latency overrides on matching links for a time window.

    ``links`` lists ``[a, b]`` selector-pattern pairs (direction-
    agnostic: a pair covers a link when its endpoints match the
    patterns either way round).  ``loss`` (when given) replaces the
    link's configured loss probability; ``latency_factor`` multiplies
    its base latency.  ``latency_factor`` must be **>= 1**: the shard
    runtime's lookahead is the minimum *configured* cut-link latency,
    so a fault may slow a link but never speed it up.
    """

    kind: str = "degrade"
    until_ms: float = 0.0
    links: List[List[str]] = field(default_factory=list)
    loss: Optional[float] = None
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pairs("Degrade", self.links)
        if self.until_ms <= self.at_ms:
            raise ValueError("until_ms must be after at_ms")
        if self.loss is not None and not 0.0 <= self.loss <= 1.0:
            raise ValueError("loss must be in [0, 1]")
        if self.latency_factor < 1.0:
            raise ValueError(
                "latency_factor must be >= 1 (the sharded backend's "
                "lookahead assumes configured latencies are lower bounds)")
        if self.loss is None and self.latency_factor == 1.0:
            raise ValueError("Degrade must override loss or latency")

    def end_ms(self) -> Optional[float]:
        return self.until_ms


@dataclass
class Flap(FaultAction):
    """A periodically flapping link: up ``duty`` of every ``period_ms``.

    The link is up during the first ``duty * period_ms`` of each period
    (phase anchored at ``at_ms``) and drops everything for the rest.
    Pure function of simulated time — no per-toggle events — so the
    schedule is identical at any shard count by construction.
    """

    kind: str = "flap"
    until_ms: float = 0.0
    link: List[str] = field(default_factory=list)
    period_ms: float = 100.0
    duty: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.link) != 2:
            raise ValueError("Flap link must be an [a, b] pattern pair")
        if self.until_ms <= self.at_ms:
            raise ValueError("until_ms must be after at_ms")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ValueError("duty must be in (0, 1)")

    def end_ms(self) -> Optional[float]:
        return self.until_ms

    def is_up(self, now: float) -> bool:
        """Flap phase at simulated time ``now`` (up or down)."""
        phase = (now - self.at_ms) % self.period_ms
        return phase < self.duty * self.period_ms


@dataclass
class LossBurst(FaultAction):
    """Gilbert–Elliott correlated loss on matching links.

    The two-state chain (good/bad) advances once per transmission by
    each affected *sender*, drawing from a per-sender random stream
    (``fault.ge.<src>``) exactly like the fabric's jitter streams — so
    shard decomposition cannot change any sender's draw sequence.
    """

    kind: str = "loss_burst"
    until_ms: float = 0.0
    links: List[List[str]] = field(default_factory=list)
    p_gb: float = 0.05
    p_bg: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_pairs("LossBurst", self.links)
        if self.until_ms <= self.at_ms:
            raise ValueError("until_ms must be after at_ms")
        for name in ("p_gb", "p_bg"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        for name in ("loss_good", "loss_bad"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    def end_ms(self) -> Optional[float]:
        return self.until_ms

    @property
    def stationary_loss(self) -> float:
        """Long-run expected loss rate of the chain."""
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


@dataclass
class FaultPlan:
    """An ordered list of timed fault actions (JSON round-trippable)."""

    actions: List[FaultAction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[FaultAction]:
        return iter(self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"actions": [a.to_dict() for a in self.actions]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        _check_keys(cls, data)
        return cls(actions=[FaultAction.from_dict(a)
                            for a in data.get("actions", [])])

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def span(self) -> Optional[tuple]:
        """(first activation, last known end) or None when empty.

        The end is None when any action never ends (an unhealed
        partition).
        """
        if not self.actions:
            return None
        start = min(a.at_ms for a in self.actions)
        ends = [a.end_ms() for a in self.actions]
        return (start, None if any(e is None for e in ends) else max(ends))

    def describe(self) -> List[str]:
        """One human-readable line per action, in activation order.

        Each line leads with the action's *plan index* — the same index
        the driver stamps into ``fault.*`` trace records and overlay
        drop tallies — so timelines and traces cross-reference.
        """
        lines = []
        order = sorted(enumerate(self.actions),
                       key=lambda pair: (pair[1].at_ms, pair[0]))
        for i, a in order:
            end = a.end_ms()
            window = (f"[{a.at_ms:g}, {end:g}) ms" if end is not None
                      else f"[{a.at_ms:g}, ∞) ms")
            if isinstance(a, Partition):
                detail = (f"{len(a.groups)} groups, {a.direction}, "
                          + " | ".join(",".join(g) for g in a.groups))
            elif isinstance(a, Degrade):
                detail = (f"links={['<->'.join(p) for p in a.links]} "
                          f"loss={a.loss} x{a.latency_factor:g} latency")
            elif isinstance(a, Flap):
                detail = (f"{'<->'.join(a.link)} period={a.period_ms:g}ms "
                          f"duty={a.duty:g}")
            elif isinstance(a, LossBurst):
                detail = (f"links={['<->'.join(p) for p in a.links]} "
                          f"p_gb={a.p_gb:g} p_bg={a.p_bg:g} "
                          f"loss_bad={a.loss_bad:g} "
                          f"(stationary {a.stationary_loss:.3f})")
            else:  # pragma: no cover - future kinds
                detail = ""
            lines.append(f"{i:2d}. {a.kind:<10s} {window:<18s} {detail}")
        return lines
