"""Execute a :class:`~repro.faults.plan.FaultPlan` against a scenario.

The driver schedules one **control-plane** activation event per action
(plus a heal/expiry event for bounded actions).  Control-plane events
run replicated in every shard under :mod:`repro.shard` — exactly like
churn ticks and scheduled crashes — so all shards install identical
overlay entries at identical instants and the per-send verdicts in
``Fabric.send()`` cannot depend on the shard count.

Selector resolution happens at activation time:

* glob/exact selectors resolve against the fabric's node registry
  (replicated structural state — nodes are created by replicated
  control code, so every shard sees the same registry);
* ``@token_holder_subtree`` needs the data-plane answer to "who holds
  the token".  Sequentially the driver scans the top ring; under
  sharding the activation event is registered as a ``token.holders``
  synchronization probe (the same probe kind ``crash_token_holder``
  uses), so every shard resolves from the same merged holder set;
* ``@rest`` takes every fabric node not claimed by an earlier group.

Groups are made disjoint by first-match-wins over the group order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.faults.overlay import FaultOverlay, _BurstEntry
from repro.faults.plan import (REST, TOKEN_HOLDER_SUBTREE, Degrade,
                               FaultPlan, Flap, LossBurst, Partition,
                               selector_matches)


def structural_home(mh_id: str) -> Optional[str]:
    """The AP an MH id is structurally homed under (builder convention).

    ``mh:<path>.<m>`` lives under ``ap:<path>``; ids outside the
    convention (e.g. churn-created MHs) have no structural home and
    resolve into no subtree.
    """
    if not mh_id.startswith("mh:"):
        return None
    path, sep, _ = mh_id[3:].rpartition(".")
    return f"ap:{path}" if sep else None


def subtree_nodes(net, root: str) -> set:
    """The hierarchy subtree under ``root`` plus attached leaves.

    NEs come from the (replicated) hierarchy: the child map plus ring
    membership — only a ring's *leader* is parented to the tier above,
    so reaching one member of a sub-ring pulls in the whole ring (never
    the top ring: the root's siblings are not its subtree).  MHs join
    the subtree of their *structural* home AP, sources that of their
    corresponding NE.  Everything used here is replicated state, so all
    shards compute the same set.
    """
    h = net.hierarchy
    group = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in group:
            continue
        group.add(node)
        for child in h.children.get(node, ()):
            ring = h.ring_containing(child)
            if ring is not None and ring.ring_id != h.top_ring_id:
                stack.extend(ring.members)
            else:
                stack.append(child)
    for mh_id in getattr(net, "mobile_hosts", {}):
        home = structural_home(mh_id)
        if home in group:
            group.add(mh_id)
    for sid, src in getattr(net, "sources", {}).items():
        target = getattr(src, "corresponding", None)
        if target is None:
            target = getattr(src, "sink", None)
        if target in group:
            group.add(sid)
    return group


class FaultDriver:
    """Schedules a plan's activation/heal events and owns the overlay."""

    def __init__(self, sim, net, plan: FaultPlan):
        self.sim = sim
        self.net = net
        self.plan = plan
        fabric = net.fabric
        if fabric.fault_overlay is None:
            fabric.fault_overlay = FaultOverlay(sim)
        self.overlay: FaultOverlay = fabric.fault_overlay
        self.fabric = fabric
        self._scheduled = False
        # Overlay entries (and fault.* trace indices) live in a driver-
        # local namespace so two drivers sharing a fabric cannot clobber
        # each other's entries; a lone driver gets base 0, keeping its
        # emitted indices equal to the plan's action indices.
        self._base = self.overlay.claim_namespace(len(plan.actions))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self) -> None:
        """Arm every action (call once, at build time)."""
        if self._scheduled:
            raise RuntimeError("fault plan already scheduled")
        self._scheduled = True
        for index, action in enumerate(self.plan.actions):
            event = self.sim.schedule_at(action.at_ms, self._activate, index)
            if isinstance(action, Partition) and action.dynamic \
                    and self.sim.shard is not None:
                # Resolution reads "who holds the token" — data-plane
                # state no single shard knows; gather it exactly like
                # crash_token_holder does.
                self.sim.shard.register_probe(event, "token.holders")

    # ------------------------------------------------------------------
    # Group resolution
    # ------------------------------------------------------------------
    def _token_holder(self) -> str:
        sim, net = self.sim, self.net
        members = net.hierarchy.top_ring.members
        if sim.shard is not None:
            holding = set(sim.shard.consume_probe())
            holder = next((n for n in members if n in holding), None)
        else:
            ne = next((ne for ne in net.top_ring_nes()
                       if ne.held_token is not None), None)
            holder = ne.id if ne is not None else None
        return holder if holder is not None else members[-1]

    def _resolve_groups(self, action: Partition) -> Tuple[frozenset, ...]:
        all_nodes = sorted(self.fabric.nodes)
        holder_subtree: Optional[set] = None
        if action.dynamic:
            holder_subtree = subtree_nodes(self.net, self._token_holder())
        resolved: List[set] = []
        rest_at: Optional[int] = None
        claimed: set = set()
        for gi, selectors in enumerate(action.groups):
            members: set = set()
            for sel in selectors:
                if sel == REST:
                    rest_at = gi
                elif sel == TOKEN_HOLDER_SUBTREE:
                    members |= holder_subtree or set()
                else:
                    members.update(n for n in all_nodes
                                   if selector_matches(sel, n))
            members -= claimed  # first-match-wins disjointness
            claimed |= members
            resolved.append(members)
        if rest_at is not None:
            resolved[rest_at] |= set(all_nodes) - claimed
        for gi, members in enumerate(resolved):
            if not members:
                # A group matching nothing makes the whole partition a
                # silent no-op — a checked scenario would "pass" while
                # testing nothing.  Fail loudly (this runs replicated,
                # so every shard fails identically).
                raise ValueError(
                    f"partition group {gi} {action.groups[gi]!r} resolved "
                    f"to no fabric node")
        return tuple(frozenset(g) for g in resolved)

    # ------------------------------------------------------------------
    # Activation / expiry (control-plane events)
    # ------------------------------------------------------------------
    def _activate(self, index: int) -> None:
        sim, overlay = self.sim, self.overlay
        action = self.plan.actions[index]
        key = self._base + index
        if isinstance(action, Partition):
            groups = self._resolve_groups(action)
            overlay.install_partition(key, groups, action.direction)
            sim.trace.emit(
                sim.now, "fault.partition", index=key,
                direction=action.direction,
                group_sizes=[len(g) for g in groups],
                heal_at=action.heal_at_ms)
            if action.heal_at_ms is not None:
                sim.schedule_at(action.heal_at_ms, self._heal, index)
        elif isinstance(action, Degrade):
            overlay.install_degrade(key, action.links, action.loss,
                                    action.latency_factor)
            sim.trace.emit(
                sim.now, "fault.degrade", index=key, links=action.links,
                loss=action.loss, latency_factor=action.latency_factor,
                until=action.until_ms)
            sim.schedule_at(action.until_ms, self._restore, index)
        elif isinstance(action, Flap):
            overlay.install_flap(key, action)
            sim.trace.emit(
                sim.now, "fault.flap", index=key, link=action.link,
                period_ms=action.period_ms, duty=action.duty,
                until=action.until_ms)
            sim.schedule_at(action.until_ms, self._restore, index)
        elif isinstance(action, LossBurst):
            overlay.install_burst(key, _BurstEntry(
                action.links, action.p_gb, action.p_bg,
                action.loss_good, action.loss_bad))
            sim.trace.emit(
                sim.now, "fault.loss_burst", index=key,
                links=action.links, p_gb=action.p_gb, p_bg=action.p_bg,
                loss_bad=action.loss_bad, until=action.until_ms)
            sim.schedule_at(action.until_ms, self._restore, index)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise TypeError(f"unknown fault action {action!r}")

    def _heal(self, index: int) -> None:
        self.overlay.remove(self._base + index)
        self.sim.trace.emit(self.sim.now, "fault.heal",
                            index=self._base + index)

    def _restore(self, index: int) -> None:
        action_kind = self.plan.actions[index].kind
        self.overlay.remove(self._base + index)
        self.sim.trace.emit(self.sim.now, "fault.restore",
                            index=self._base + index, action=action_kind)
