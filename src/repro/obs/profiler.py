"""Stride-sampling profiler for the engine dispatch loop.

The compiled-kernel roadmap item needs to know *which handlers* the
pure-python event loop spends its wall time in.  cProfile answers that
but distorts the loop it measures (and cannot run inside a benchmark
whose events/sec is the deliverable); this profiler instead samples one
event in every ``stride`` dispatched, timing just that event with
``perf_counter`` and attributing the elapsed wall time to the event's
handler function and its module-derived *kind*.  The engine's event
sequence is untouched — sampling is driven purely by a countdown over
already-ordered dispatches, never by timers or RNG — so profiled runs
stay byte-identical to unprofiled ones.

Estimates scale by the stride: with ``stride=32``, sampled wall time
×32 approximates true wall time, and per-handler *shares* (the number
the compiled-kernel PR actually needs: "port these five first") are
unbiased as long as a handler fires more than a handful of times.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

#: Sample one event in every this-many dispatches.  At the xs rung one
#: event costs ~10 µs, so stride 32 still collects thousands of samples
#: per bench run while the sampled path (a perf_counter pair plus a few
#: dict folds, ~1-2 µs) amortizes to well under 0.5% of dispatch cost.
DEFAULT_STRIDE = 32


def handler_ident(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Stable identity for a handler: unwrap bound methods.

    ``sim.schedule(..., self._on_timeout, ...)`` creates a fresh bound
    method object per call; ``__func__`` is the shared underlying
    function, so attribution pools across instances and schedules.
    """
    return getattr(fn, "__func__", fn)


def kind_of(fn: Callable[..., Any]) -> str:
    """Coarse cost-center kind: the defining module sans ``repro.``."""
    mod = getattr(fn, "__module__", None) or "?"
    if mod.startswith("repro."):
        mod = mod[len("repro."):]
    return mod


class DispatchProfiler:
    """Accumulates (handler → samples, wall seconds) over one run.

    Driven by :meth:`ObsSession.slow_dispatch
    <repro.obs.session.ObsSession.slow_dispatch>` — the engine loop owns
    the stride countdown as a local, so this class only ever sees
    sampled events.
    """

    def __init__(self, stride: int = DEFAULT_STRIDE):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.samples = 0
        self.sampled_wall_s = 0.0
        # handler function -> [samples, wall_seconds]
        self._stats: Dict[Any, List[float]] = {}
        self.started_wall = perf_counter()

    # ------------------------------------------------------------------
    def record(self, fn: Callable[..., Any], elapsed: float) -> None:
        """Fold one sampled dispatch (``elapsed`` wall seconds)."""
        self.samples += 1
        self.sampled_wall_s += elapsed
        key = getattr(fn, "__func__", fn)
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = [1, elapsed]
        else:
            stat[0] += 1
            stat[1] += elapsed

    # ------------------------------------------------------------------
    def summary(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Cost centers, heaviest first — the compiled-kernel target list.

        Each row: ``handler`` (qualified name), ``kind`` (module sans
        ``repro.``), ``samples``, ``est_events`` (samples × stride),
        ``wall_ms_est`` (sampled wall × stride), ``share`` of total
        sampled wall, ``mean_us`` per dispatch.
        """
        total = self.sampled_wall_s
        rows = []
        for fn, (n, wall) in self._stats.items():
            rows.append({
                "handler": getattr(fn, "__qualname__", repr(fn)),
                "kind": kind_of(fn),
                "samples": int(n),
                "est_events": int(n) * self.stride,
                "wall_ms_est": round(wall * self.stride * 1e3, 3),
                "share": round(wall / total, 4) if total > 0 else 0.0,
                "mean_us": round(wall / n * 1e6, 2) if n else 0.0,
            })
        rows.sort(key=lambda r: (-r["wall_ms_est"], r["handler"]))
        return rows[:top] if top is not None else rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stride": self.stride,
            "samples": self.samples,
            "sampled_wall_s": round(self.sampled_wall_s, 6),
            "top": self.summary(),
        }


def render_top(rows: List[Dict[str, Any]], limit: int = 10) -> str:
    """The ``top``-style table: heaviest dispatch cost centers first."""
    rows = rows[:limit]
    if not rows:
        return "(no profiler samples)"
    headers = ["#", "share", "wall_ms", "mean_us", "samples",
               "kind", "handler"]
    body = [[str(i + 1),
             f"{r['share'] * 100:5.1f}%",
             f"{r['wall_ms_est']:.1f}",
             f"{r['mean_us']:.1f}",
             str(r["samples"]),
             r["kind"],
             r["handler"]] for i, r in enumerate(rows)]
    widths = [max(len(h), *(len(b[i]) for b in body))
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(c.rjust(w) if i < 5 else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))
    lines = [fmt(headers)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(b) for b in body)
    return "\n".join(lines)


__all__ = ["DEFAULT_STRIDE", "DispatchProfiler", "render_top",
           "handler_ident", "kind_of"]
