"""One observability session: registry + profiler + windowed timeline.

An :class:`ObsSession` attaches to a :class:`~repro.sim.engine.Simulator`
**out-of-band**: it installs itself as the engine's dispatch hook
(``sim.obs_hook``) and exposes its :class:`~repro.obs.registry.
MetricsRegistry` as ``sim.obs``, which instrumented protocol code
null-checks before touching.  It never emits trace records, never
schedules events, and never draws randomness, so a run with a session
attached produces a canonical trace byte-identical to a run without —
the invariant every optimization in this repo is already held to.

Windowed aggregation is *piggybacked on sampled dispatch*, not
timer-driven: every ``stride``-th dispatched event's timestamp is
compared against the next window edge, and crossing an edge folds the
since-last-edge deltas (event count, per-kind trace counts, registry
counter deltas, last sampled heap depth) into one timeline row.  Fixed
simulated-time windows make rows comparable across runs of the same
spec regardless of host speed; edge detection trails the true boundary
by at most ``stride - 1`` events (counts themselves stay exact — they
are deltas of the engine's event counter).

Artifacts: :meth:`write` produces ``OBS_<name>.json`` — the final
machine-readable run report (registry snapshot, profiler cost centers,
engine counters) — plus ``OBS_<name>_timeline.jsonl.gz``, the
compressed per-window timeline.  ``python -m repro.obs`` renders both.
"""

from __future__ import annotations

import gzip
import json
import os
import sys
from time import perf_counter
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.profiler import DEFAULT_STRIDE, DispatchProfiler
from repro.obs.registry import MetricsRegistry, diff_counts

#: Schema tag written into every run report, bumped on breaking changes.
OBS_SCHEMA = "repro.obs/v1"

#: Default number of timeline windows a run is folded into.
DEFAULT_WINDOWS = 20

#: Wall-clock seconds between ``--progress`` heartbeat lines.
PROGRESS_INTERVAL_S = 2.0

#: Environment override for the profiler's dispatch-sampling stride.
STRIDE_ENV = "REPRO_OBS_SAMPLE_EVERY"


def effective_stride(stride: Optional[int] = None) -> int:
    """Resolve the sampling stride: explicit arg > env > default.

    ``REPRO_OBS_SAMPLE_EVERY=1`` times every dispatch (exact but slow);
    larger strides cheapen observation proportionally.  The resolved
    value is stamped into the run report as ``sample_every`` so a
    report always says what rate produced it.
    """
    if stride is not None:
        return stride
    raw = os.environ.get(STRIDE_ENV)
    if raw is None:
        return DEFAULT_STRIDE
    value = int(raw)
    if value < 1:
        raise ValueError(f"{STRIDE_ENV} must be >= 1, got {raw!r}")
    return value


class ObsSession:
    """Attach-to-finish lifecycle of one observed run.

    Parameters
    ----------
    sim:
        The simulator to observe.  Attachment happens immediately;
        events dispatched from here on are counted, sampled, and folded.
    horizon_ms:
        The run's simulated end time (windows and ETA derive from it).
    name:
        Stamped into the report and artifact filenames.
    window_ms:
        Timeline window width; defaults to ``horizon_ms / 20``.
    stride:
        Profiler sampling stride (1 = time every event).  ``None`` (the
        default) resolves through :func:`effective_stride` — the
        ``REPRO_OBS_SAMPLE_EVERY`` environment override, else
        :data:`~repro.obs.profiler.DEFAULT_STRIDE`.
    progress:
        Emit a heartbeat line (events done, ev/s, ETA) roughly every
        :data:`PROGRESS_INTERVAL_S` wall seconds, piggybacked on
        sampled dispatches so the un-sampled fast path never reads the
        wall clock.
    """

    def __init__(self, sim, horizon_ms: float, name: str = "run",
                 window_ms: Optional[float] = None,
                 stride: Optional[int] = None,
                 progress: bool = False,
                 progress_sink: Optional[TextIO] = None):
        if horizon_ms <= 0:
            raise ValueError(f"horizon_ms must be positive, got {horizon_ms}")
        if window_ms is not None and window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        self.sim = sim
        self.name = name
        self.horizon_ms = horizon_ms
        self.window_ms = window_ms if window_ms is not None \
            else horizon_ms / DEFAULT_WINDOWS
        self.registry = MetricsRegistry()
        self.profiler = DispatchProfiler(effective_stride(stride))
        self.rows: List[Dict[str, Any]] = []
        self.events_total = 0
        self._stride = self.profiler.stride
        self._countdown = 1  # sample the very first event
        self._last_heap = 0
        self._t0 = sim.now
        self._edge = sim.now + self.window_ms
        self._finished = False
        self.wall_s = 0.0
        # Heap-depth distribution fed from sampled dispatches only.
        self._heap_hist = self.registry.hist("engine.heap_depth")
        # Progress heartbeat (wall-clock throttled, sampled path only).
        self._progress = progress
        self._progress_sink = progress_sink
        self._wall_start = perf_counter()
        self._last_beat = self._wall_start
        # Baselines for per-window deltas.
        self._counters_before = self.registry.counter_values()
        self._events_at_attach = sim.events_processed
        self._win_mark = sim.events_processed
        self._saved_counting = sim.trace.counting
        self._kinds_at_attach = dict(sim.trace.counts)
        self._kinds_before = dict(sim.trace.counts)
        # Attach: the engine consults these two attributes and nothing
        # else; "events by kind" rides the trace bus's counting mode.
        sim.trace.counting = True
        sim.obs = self.registry
        sim.obs_hook = self

    # ------------------------------------------------------------------
    # The engine-facing hot path
    # ------------------------------------------------------------------
    def slow_dispatch(self, sim, ev) -> int:
        """Execute one *sampled* event on the engine's behalf.

        The run loops keep the sampling countdown as a *local int* —
        unsampled events never leave the loop, so attaching a session
        adds only a decrement and a truth test to the per-event fast
        path.  Every ``stride``-th dispatch lands here: roll any window
        edges the simulation clock has crossed, time the event for the
        profiler, sample the heap depth, maybe heartbeat.  Returns the
        refreshed countdown; the loop writes it back to ``_countdown``
        on exit so repeated ``run_window`` calls stay in phase.

        Window edges are therefore detected at sample granularity — a
        roll can trail the true boundary by up to ``stride - 1``
        events.  Per-window event counts stay exact regardless (they
        are deltas of the engine's own counter); only the attribution
        of those few boundary events can shift one window earlier.
        """
        if ev.time >= self._edge:
            self._roll(ev.time)
        t0 = perf_counter()
        sim._execute(ev)
        elapsed = perf_counter() - t0
        self.profiler.record(ev.fn, elapsed)
        heap = len(sim._heap)
        self._last_heap = heap
        self._heap_hist.observe(heap)
        if self._progress and t0 + elapsed - self._last_beat \
                >= PROGRESS_INTERVAL_S:
            self._heartbeat(t0 + elapsed)
        return self._stride

    # ------------------------------------------------------------------
    # Window folding
    # ------------------------------------------------------------------
    def _roll(self, t: float) -> None:
        """Close every window whose edge is at or before ``t``."""
        edge = self._edge
        w = self.window_ms
        while t >= edge:
            self._close_window(edge)
            edge += w
        self._edge = edge

    def _close_window(self, t1: float) -> None:
        counters = self.registry.counter_values()
        kinds = self.sim.trace.counts
        # Window event counts come from the engine's own counter (the
        # boundary event is not yet executed when a roll happens, so the
        # delta covers exactly the closing window).
        done = self.sim.events_processed
        win_events = done - self._win_mark
        row: Dict[str, Any] = {
            "w": len(self.rows),
            "t0": round(self._t0, 6),
            "t1": round(t1, 6),
            "events": win_events,
            "heap": self._last_heap,
        }
        kind_delta = diff_counts(kinds, self._kinds_before)
        if kind_delta:
            row["kinds"] = kind_delta
        counter_delta = diff_counts(counters, self._counters_before)
        if counter_delta:
            row["counters"] = counter_delta
        if self.registry.gauges:
            row["gauges"] = {n: g.value
                            for n, g in self.registry.gauges.items()}
        self.rows.append(row)
        self.events_total += win_events
        self._win_mark = done
        self._t0 = t1
        self._counters_before = counters
        self._kinds_before = dict(kinds)

    # ------------------------------------------------------------------
    def _heartbeat(self, wall_now: float) -> None:
        self._last_beat = wall_now
        sim = self.sim
        elapsed = wall_now - self._wall_start
        events = sim.events_processed - self._events_at_attach
        rate = events / elapsed if elapsed > 0 else 0.0
        now_ms = sim.now
        eta = ((self.horizon_ms - now_ms) / now_ms * elapsed
               if 0 < now_ms < self.horizon_ms else 0.0)
        sink = self._progress_sink if self._progress_sink is not None \
            else sys.stderr
        print(f"[obs] {self.name}: {events:,} events  {rate:,.0f} ev/s  "
              f"sim {now_ms:,.0f}/{self.horizon_ms:,.0f} ms  "
              f"eta {eta:,.1f}s", file=sink, flush=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close trailing windows and detach from the simulator.

        Idempotent.  After this the simulator is exactly as found
        (``obs``/``obs_hook`` cleared, trace counting restored), so a
        finished session is pure data.
        """
        if self._finished:
            return
        self._finished = True
        sim = self.sim
        now = sim.now
        # Close every full window the run actually covered, then the
        # trailing partial (if the run ended mid-window).
        while self._edge <= now:
            edge = self._edge
            self._close_window(edge)
            self._edge = edge + self.window_ms
        if now > self._t0 or sim.events_processed > self._win_mark:
            self._close_window(now)
        self.wall_s = perf_counter() - self._wall_start
        if sim.obs is self.registry:
            sim.obs = None
        if sim.obs_hook is self:
            sim.obs_hook = None
        sim.trace.counting = self._saved_counting

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The machine-readable run report (JSON-able)."""
        self.finish()
        sim = self.sim
        return {
            "schema": OBS_SCHEMA,
            "name": self.name,
            "horizon_ms": self.horizon_ms,
            "window_ms": round(self.window_ms, 6),
            "windows": len(self.rows),
            "events": self.events_total,
            "wall_s": round(self.wall_s, 6),
            "sample_every": self._stride,
            "engine": {
                "events_processed": sim.events_processed,
                "peak_heap": sim.peak_heap,
                "compactions": sim.compactions,
                "pending_end": sim.pending,
            },
            "trace_counts": diff_counts(dict(sim.trace.counts),
                                        self._kinds_at_attach),
            "registry": self.registry.snapshot(),
            "profiler": self.profiler.to_dict(),
        }

    def write(self, out_dir: str = ".",
              name: Optional[str] = None) -> Dict[str, str]:
        """Write ``OBS_<name>.json`` + timeline; returns the paths."""
        return write_artifacts(self.report(), self.rows, out_dir=out_dir,
                               name=name if name is not None else self.name)


def write_artifacts(report: Dict[str, Any], rows: List[Dict[str, Any]],
                    out_dir: str = ".", name: str = "run") -> Dict[str, str]:
    """Write one run report + timeline pair; returns the paths.

    Shared by :meth:`ObsSession.write` (sequential runs) and the CLIs
    that receive already-assembled report/rows pairs (the sharded
    coordinator, bench repeats).
    """
    safe = name.replace("/", "_").replace(" ", "_")
    os.makedirs(out_dir, exist_ok=True)
    timeline = os.path.join(out_dir, f"OBS_{safe}_timeline.jsonl.gz")
    with gzip.open(timeline, "wt", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True,
                                separators=(",", ":")) + "\n")
    report = dict(report)
    report["timeline"] = os.path.basename(timeline)
    path = os.path.join(out_dir, f"OBS_{safe}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return {"report": path, "timeline": timeline}


__all__ = ["OBS_SCHEMA", "DEFAULT_WINDOWS", "PROGRESS_INTERVAL_S",
           "STRIDE_ENV", "ObsSession", "effective_stride",
           "write_artifacts"]
