"""The metrics registry: counters, gauges, log-bucketed histograms.

Strictly **out-of-band**: nothing in this module ever touches the trace
bus, the random streams, or the event heap, so attaching (or not
attaching) a registry cannot move a single simulated event — the
trace-identity suite (`tests/test_obs_identity.py`) holds the subsystem
to that byte for byte.

Cost model
----------
Instrumented call sites in protocol code follow one idiom::

    obs = self.sim.obs           # None unless an ObsSession attached
    if obs is not None:
        obs.inc("transport.retransmitted")

so a run with observability disabled executes **zero** registry
callbacks — the property test in ``tests/test_obs_identity.py`` patches
every registry entry point and counts.  When enabled, the convenience
methods (:meth:`MetricsRegistry.inc` & co.) cost one dict lookup plus
one attribute update; hot loops that observe per message hoist the
instrument object itself (``hist = obs.hist(...)``) outside the loop.

Histograms are **log-bucketed**: bucket ``b`` holds values in
``[2^(b-1), 2^b)`` (bucket 0 holds zero; negatives go to a dedicated
underflow slot), which keeps a
latency distribution spanning five orders of magnitude in a handful of
integers and makes per-window snapshots cheap to fold and serialize.
Quantiles are read back from the bucket upper edges — exact enough to
rank cost centers and spot regressions, never used for protocol logic.
"""

from __future__ import annotations

import math
from typing import Any, Dict


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value; tracks the maximum it ever held."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def update_max(self, value: float) -> None:
        """Record ``value`` only if it is a new maximum (cheap peaks)."""
        if value > self.max:
            self.max = value
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value} max={self.max}>"


class Histogram:
    """Log-bucketed distribution: bucket ``b`` covers ``[2^(b-1), 2^b)``.

    Negative observations land in a dedicated *underflow* slot rather
    than aliasing into bucket 0 (whose range is ``[0.5, 1)``): a signed
    metric — a clock skew, a budget delta — would otherwise have its
    negative tail counted as sub-1.0 positives and every quantile
    estimate dragged toward 1.0.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets",
                 "underflow")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}
        self.underflow = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < 0:
            self.underflow += 1
            return
        # frexp(v) = (m, e) with v = m * 2**e and 0.5 <= |m| < 1, so e
        # is exactly the [2^(e-1), 2^e) bucket index; 0 pools in 0.
        b = math.frexp(value)[1] if value > 0 else 0
        buckets = self.buckets
        buckets[b] = buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-quantile.

        The underflow slot sorts below every log bucket; its upper edge
        is 0.0 (every value in it is negative).
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = self.underflow
        if seen >= rank and seen:
            return 0.0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= rank:
                return float(2 ** b)
        return float(self.max)  # pragma: no cover - defensive

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary (bucket keys stringified for stable JSON)."""
        if not self.count:
            return {"count": 0}
        out = {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }
        if self.underflow:
            out["underflow"] = self.underflow
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class MetricsRegistry:
    """Named instruments, created on first use.

    The registry is what :attr:`repro.sim.engine.Simulator.obs` holds
    when an :class:`~repro.obs.session.ObsSession` is attached;
    instrumented protocol code only ever reaches it through that
    attribute, so a ``None`` there means not one line in this class
    runs.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.hists: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def hist(self, name: str) -> Histogram:
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = Histogram(name)
        return h

    # ------------------------------------------------------------------
    # One-call conveniences (the instrumented-code idiom).  These are
    # protocol-hot-path code: the instrument accessors are inlined so an
    # enabled-run inc costs one dict probe and one attribute add, not
    # two nested method calls.
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        c.value += n

    def set_gauge(self, name: str, value: float) -> None:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        g.value = value
        if value > g.max:
            g.max = value

    def gauge_max(self, name: str, value: float) -> None:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        if value > g.max:
            g.max = value
            g.value = value

    def observe(self, name: str, value: float) -> None:
        h = self.hists.get(name)
        if h is None:
            h = self.hists[name] = Histogram(name)
        h.observe(value)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, int]:
        """Current cumulative counter values (window folds diff these)."""
        return {name: c.value for name, c in self.counters.items()}

    def snapshot(self) -> Dict[str, Any]:
        """Full JSON-able registry state for the final run report."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: {"value": g.value, "max": g.max}
                       for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self.hists.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsRegistry counters={len(self.counters)} "
                f"gauges={len(self.gauges)} hists={len(self.hists)}>")


def merge_counter_dicts(dicts) -> Dict[str, int]:
    """Sum plain ``{name: value}`` counter dicts (per-shard roll-up)."""
    out: Dict[str, int] = {}
    for d in dicts:
        for name, value in d.items():
            out[name] = out.get(name, 0) + value
    return out


def diff_counts(now: Dict[str, int],
                before: Dict[str, int]) -> Dict[str, int]:
    """Per-window delta of two cumulative count snapshots (zeros elided)."""
    out: Dict[str, int] = {}
    for name, value in now.items():
        d = value - before.get(name, 0)
        if d:
            out[name] = d
    return out


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "merge_counter_dicts", "diff_counts"]
