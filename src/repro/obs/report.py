"""Load and render ``OBS_*`` run reports and timelines.

The writers live on :class:`~repro.obs.session.ObsSession` (sequential
runs) and in :mod:`repro.shard.runtime` (per-shard reports rolled up by
the coordinator); this module is the read side shared by the
``python -m repro.obs`` CLI and tests.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Iterable, List

from repro.obs.profiler import render_top
from repro.obs.registry import merge_counter_dicts


def load_report(path: str) -> Dict[str, Any]:
    """Read one ``OBS_*.json`` run report."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "schema" not in report:
        raise ValueError(f"{path} is not an obs run report")
    return report


def load_timeline(path: str) -> List[Dict[str, Any]]:
    """Read a ``*_timeline.jsonl.gz`` (or plain ``.jsonl``) timeline."""
    opener = gzip.open if path.endswith(".gz") else open
    rows = []
    with opener(path, "rt", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def shard_reports(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-shard sub-reports of a sharded run report ([] otherwise)."""
    return list(report.get("shards") or [])


def _fmt_value(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:,.6g}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


def _kv_lines(title: str, data: Dict[str, Any], limit: int = 0) -> List[str]:
    lines = [f"{title}:"]
    items = sorted(data.items(), key=lambda kv: (-_sort_key(kv[1]), kv[0]))
    if limit:
        items = items[:limit]
    for k, v in items:
        lines.append(f"  {k:40s} {_fmt_value(v)}")
    return lines


def _sort_key(v: Any) -> float:
    try:
        return float(v)
    except (TypeError, ValueError):
        return 0.0


def render_summary(report: Dict[str, Any], top: int = 5) -> str:
    """Human-readable digest of one run report."""
    shards = shard_reports(report)
    lines = [f"{report.get('name', '?')}: "
             f"{report.get('events', 0):,} events over "
             f"{report.get('windows', 0)} windows of "
             f"{report.get('window_ms', 0):g} ms "
             f"(horizon {report.get('horizon_ms', 0):g} ms)"]
    engine = report.get("engine") or {}
    if engine:
        lines.append(
            f"engine: {engine.get('events_processed', 0):,} processed  "
            f"peak_heap={engine.get('peak_heap', 0):,}  "
            f"compactions={engine.get('compactions', 0)}")
    if report.get("sample_every"):
        lines.append(f"sampling: every {report['sample_every']} dispatches")
    registry = report.get("registry") or {}
    counters = registry.get("counters") or {}
    if counters:
        lines.extend(_kv_lines("counters", counters))
    gauges = registry.get("gauges") or {}
    if gauges:
        lines.extend(_kv_lines(
            "gauges (max)", {n: g.get("max") for n, g in gauges.items()}))
    for name, h in sorted((registry.get("histograms") or {}).items()):
        if h.get("count"):
            lines.append(
                f"hist {name}: n={h['count']:,} mean={h['mean']:,.3g} "
                f"p50<={h['p50']:g} p99<={h['p99']:g} max={h['max']:,.6g}")
    kinds = report.get("trace_counts") or {}
    if kinds:
        lines.extend(_kv_lines(f"trace records by kind "
                               f"(top {min(top * 2, len(kinds))})",
                               kinds, limit=top * 2))
    prof = report.get("profiler") or {}
    if prof.get("top"):
        lines.append(f"dispatch cost centers (stride {prof.get('stride')}, "
                     f"{prof.get('samples', 0):,} samples):")
        lines.append(render_top(prof["top"], limit=top))
    if shards:
        lines.append(f"shards: {len(shards)}")
        for i, sub in enumerate(shards):
            win = sub.get("shard_windows") or {}
            lines.append(
                f"  shard {i}: {sub.get('events', 0):,} events  "
                f"stalls={win.get('stalls', 0)} "
                f"{_causes(win.get('stall_causes') or {})} "
                f"barrier_wait={win.get('barrier_wait_s', 0.0):.3f}s  "
                f"export_q_peak={win.get('export_q_peak', 0)}")
        merged = merge_counter_dicts(
            [(s.get("registry") or {}).get("counters") or {}
             for s in shards])
        if merged:
            lines.extend(_kv_lines("counters (all shards)", merged))
    return "\n".join(lines)


def _causes(causes: Dict[str, int]) -> str:
    if not causes:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(causes.items()))
    return f"({inner})"


def render_timeline(rows: Iterable[Dict[str, Any]],
                    metrics: Iterable[str] = (),
                    tail: int = 0) -> str:
    """Tabulate timeline rows: window, span, events, heap, + metrics.

    ``metrics`` names either per-window counter deltas (matched in the
    row's ``counters`` dict) or trace kinds (matched in ``kinds``).
    """
    rows = list(rows)
    if tail:
        rows = rows[-tail:]
    if not rows:
        return "(empty timeline)"
    metrics = list(metrics)
    headers = ["w", "shard", "t0", "t1", "events", "heap"] + metrics
    has_shard = any("shard" in r for r in rows)
    if not has_shard:
        headers.remove("shard")
    body = []
    for r in rows:
        cells = [str(r.get("w", ""))]
        if has_shard:
            cells.append(str(r.get("shard", "")))
        cells.extend([f"{r.get('t0', 0):g}", f"{r.get('t1', 0):g}",
                      f"{r.get('events', 0):,}", f"{r.get('heap', 0):,}"])
        for m in metrics:
            v = (r.get("counters") or {}).get(m)
            if v is None:
                v = (r.get("kinds") or {}).get(m)
            if v is None:
                v = (r.get("gauges") or {}).get(m)
            cells.append("" if v is None else _fmt_value(v))
        body.append(cells)
    widths = [max(len(h), *(len(b[i]) for b in body))
              for i, h in enumerate(headers)]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    out.extend("  ".join(c.rjust(w) for c, w in zip(b, widths))
               for b in body)
    return "\n".join(out)


__all__ = ["load_report", "load_timeline", "shard_reports",
           "render_summary", "render_timeline"]
