"""Critical-path latency attribution over assembled message spans.

Answers the question the aggregate collectors cannot: *where* did each
delivered message's end-to-end latency go?  Every delivery's latency is
partitioned into causally ordered stages:

``uplink``
    Application send → SourceData arrival at the ordering NE
    (``source.send`` → ``wq.insert``), including uplink
    retransmissions.
``order_wait``
    Waiting-queue insert → global-sequence assignment when the token
    reaches the ordering NE (``wq.insert`` → ``ordered`` at the
    ordering node).
``ring`` / ``downlink``
    Assignment → first transmission of the final hop into the MH, and
    that hop's flight time (requires transport hop events from a live
    :class:`~repro.obs.spans.SpanCollector`).
``mh_reorder``
    Physical arrival at the MH → in-order delivery out of the MQ.
``fanout``
    The coarse merged stage used when hop detail is missing — e.g.
    spans assembled offline from a recorded golden trace
    (:func:`~repro.obs.spans.events_from_trace`) or messages delivered
    via gap-repair paths that bypass the normal hop chain.

Two overlays ride along without being part of the partition:
``retransmit`` (per-hop extra send-window time) and, for sharded runs,
``window_stall`` (wall-clock time shards spent blocked at window
barriers — a property of the run, not of any one message).

The summary groups percentile breakdowns per multicast group (``gid``
when the spans carry one, else per source stream) and names the
dominant stage per percentile band — the artifact the ROADMAP's
compiled-kernel and shard-rebalancing items want for target picking.
:func:`chrome_trace` exports spans as Chrome-trace / Perfetto JSON.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.metrics.report import percentile
from repro.obs.spans import Delivery, MessageSpan, SpanSet

#: Schema tag for critpath summary payloads.
CRITPATH_SCHEMA = "repro.critpath/v1"

#: Causal order of the partition stages (for rendering and export).
STAGE_ORDER = ("uplink", "order_wait", "ring", "downlink", "fanout",
               "mh_reorder")

#: Percentile bands the dominant-stage extraction reports over.
DEFAULT_BANDS: Tuple[Tuple[float, float], ...] = (
    (0, 50), (50, 90), (90, 99), (99, 100))

#: Most groups a summary enumerates (stable: largest first).
MAX_GROUPS = 16


# ----------------------------------------------------------------------
# Per-delivery stage math
# ----------------------------------------------------------------------
def delivery_stages(span: MessageSpan, d: Delivery,
                    ) -> Optional[Tuple[float, Dict[str, float]]]:
    """``(total_ms, {stage: ms})`` for one delivery, or None if unrooted.

    The stages partition ``total`` exactly: a cursor walks the causal
    waypoints and every gap lands in exactly one stage.  Waypoints that
    are missing or out of causal order (possible on gap-repair
    re-deliveries) collapse the remainder into ``fanout``.
    """
    t0 = span.send_t
    if t0 is None:
        return None
    total = d.t - t0
    stages: Dict[str, float] = {}
    cursor = t0
    if span.wq_t is not None and span.wq_t >= cursor:
        stages["uplink"] = span.wq_t - cursor
        cursor = span.wq_t
        ordered = span.ordered_t if span.ordered_t is not None \
            else span.ordered_first
        if ordered is not None and ordered >= cursor:
            stages["order_wait"] = ordered - cursor
            cursor = ordered
    if d.arrive_t is not None and d.arrive_t >= cursor:
        hop = span.hop_into(d.mh)
        if (hop is not None and "order_wait" in stages
                and hop.first_send is not None
                and cursor <= hop.first_send <= d.arrive_t):
            stages["ring"] = hop.first_send - cursor
            stages["downlink"] = d.arrive_t - hop.first_send
        else:
            stages["fanout"] = d.arrive_t - cursor
        cursor = d.arrive_t
        stages["mh_reorder"] = max(0.0, d.t - cursor)
    else:
        stages["fanout"] = stages.get("fanout", 0.0) + max(0.0, d.t - cursor)
    return total, stages


def iter_deliveries(spanset: SpanSet,
                    ) -> Iterable[Tuple[MessageSpan, Delivery, float,
                                        Dict[str, float]]]:
    """Every rooted delivery with its stage partition."""
    for span in spanset.spans.values():
        for d in span.deliveries:
            staged = delivery_stages(span, d)
            if staged is not None:
                yield span, d, staged[0], staged[1]


def _group_of(span: MessageSpan) -> str:
    return span.gid if span.gid is not None else f"src:{span.source}"


def _stats(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p90_ms": 0.0,
                "p99_ms": 0.0}
    return {
        "count": len(values),
        "mean_ms": sum(values) / len(values),
        "p50_ms": percentile(values, 50),
        "p90_ms": percentile(values, 90),
        "p99_ms": percentile(values, 99),
    }


def dominant_stage(stage_ms: Dict[str, float]) -> Optional[str]:
    """The stage carrying the most time (ties break in causal order)."""
    best = None
    best_ms = -1.0
    for stage in STAGE_ORDER:
        ms = stage_ms.get(stage)
        if ms is not None and ms > best_ms:
            best, best_ms = stage, ms
    return best


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------
def critpath_summary(spanset: SpanSet,
                     bands: Tuple[Tuple[float, float], ...] = DEFAULT_BANDS,
                     overlays: Optional[Dict[str, Any]] = None,
                     ) -> Dict[str, Any]:
    """The full attribution report for one assembled span set.

    ``overlays`` lets backends add run-level pseudo-stages — the shard
    coordinator passes ``window_stall`` wall-time here.
    """
    rows = sorted(iter_deliveries(spanset), key=lambda r: r[2])
    totals = [r[2] for r in rows]

    by_stage: Dict[str, List[float]] = {}
    by_group: Dict[str, List[Tuple[float, Dict[str, float]]]] = {}
    for span, _d, total, stages in rows:
        for stage, ms in stages.items():
            by_stage.setdefault(stage, []).append(ms)
        by_group.setdefault(_group_of(span), []).append((total, stages))

    mean_total = (sum(totals) / len(totals)) if totals else 0.0
    stage_summary: Dict[str, Dict[str, float]] = {}
    for stage in STAGE_ORDER:
        vals = by_stage.get(stage)
        if not vals:
            continue
        st = _stats(vals)
        # Share of the fleet's total delivery latency this stage carries
        # (stages missing on some deliveries still divide by the fleet).
        st["share"] = (sum(vals) / sum(totals)) if sum(totals) > 0 else 0.0
        stage_summary[stage] = st

    band_rows: List[Dict[str, Any]] = []
    n = len(rows)
    for lo, hi in bands:
        lo_i = int(n * lo / 100.0)
        hi_i = n if hi >= 100 else int(n * hi / 100.0)
        chunk = rows[lo_i:hi_i]
        if not chunk:
            continue
        means: Dict[str, float] = {}
        for _s, _d, _total, stages in chunk:
            for stage, ms in stages.items():
                means[stage] = means.get(stage, 0.0) + ms
        for stage in means:
            means[stage] /= len(chunk)
        band_rows.append({
            "band": f"p{lo:g}-p{hi:g}",
            "count": len(chunk),
            "mean_total_ms": sum(t for _s, _d, t, _st in chunk) / len(chunk),
            "dominant": dominant_stage(means),
            "stage_means_ms": {k: means[k] for k in STAGE_ORDER
                               if k in means},
        })

    groups: Dict[str, Any] = {}
    ranked = sorted(by_group.items(), key=lambda kv: (-len(kv[1]), kv[0]))
    for name, entries in ranked[:MAX_GROUPS]:
        g_totals = [t for t, _st in entries]
        g_stage: Dict[str, List[float]] = {}
        for _t, stages in entries:
            for stage, ms in stages.items():
                g_stage.setdefault(stage, []).append(ms)
        groups[name] = {
            "total": _stats(g_totals),
            "stages": {k: _stats(v) for k, v in sorted(g_stage.items())},
        }

    retx_ms = [s.retransmit_ms() for s in spanset.spans.values()]
    retx_n = sum(s.retransmissions() for s in spanset.spans.values())
    give_ups = sum(h.give_ups for s in spanset.spans.values()
                   for h in s.hops.values())

    summary = {
        "schema": CRITPATH_SCHEMA,
        "deliveries": n,
        "messages": len(spanset),
        "total": _stats(totals),
        "stages": stage_summary,
        "bands": band_rows,
        "groups": groups,
        "groups_omitted": max(0, len(by_group) - MAX_GROUPS),
        "retransmit": {
            "count": retx_n,
            "give_ups": give_ups,
            "overlay_ms_mean": (sum(retx_ms) / len(retx_ms))
            if retx_ms else 0.0,
        },
        "mean_total_ms": mean_total,
    }
    if overlays:
        summary["overlays"] = dict(overlays)
    return summary


def stage_means(summary: Dict[str, Any]) -> Dict[str, float]:
    """Compact ``{stage: mean_ms}`` view of a critpath summary — the
    form bench reports embed as ``span_stages`` and the live diff
    compares sides with."""
    return {stage: st["mean_ms"]
            for stage, st in (summary.get("stages") or {}).items()}


def stage_delta(current: Dict[str, float], baseline: Dict[str, float],
                ) -> List[Dict[str, Any]]:
    """Per-stage delta rows between two ``{stage: mean_ms}`` views."""
    rows = []
    for stage in STAGE_ORDER:
        cur = current.get(stage)
        base = baseline.get(stage)
        if cur is None and base is None:
            continue
        rows.append({
            "stage": stage,
            "current_ms": cur,
            "baseline_ms": base,
            "delta_ms": (cur or 0.0) - (base or 0.0),
        })
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_critpath(summary: Dict[str, Any], name: str = "run") -> str:
    """Human-readable attribution tables."""
    lines = [f"critical path — {name}: {summary['deliveries']} deliveries "
             f"over {summary['messages']} messages"]
    total = summary.get("total") or {}
    if total.get("count"):
        lines.append(
            f"  end-to-end: mean {total['mean_ms']:.2f} ms  "
            f"p50 {total['p50_ms']:.2f}  p90 {total['p90_ms']:.2f}  "
            f"p99 {total['p99_ms']:.2f}")
    stages = summary.get("stages") or {}
    if stages:
        lines.append("  stage                mean      p50      p90      "
                     "p99    share")
        for stage in STAGE_ORDER:
            st = stages.get(stage)
            if st is None:
                continue
            lines.append(
                f"  {stage:<16} {st['mean_ms']:>8.2f} {st['p50_ms']:>8.2f} "
                f"{st['p90_ms']:>8.2f} {st['p99_ms']:>8.2f} "
                f"{st['share']:>7.1%}")
    bands = summary.get("bands") or []
    if bands:
        lines.append("  band        n       mean-total  dominant stage")
        for b in bands:
            lines.append(
                f"  {b['band']:<9} {b['count']:>5}  "
                f"{b['mean_total_ms']:>10.2f}  {b['dominant'] or '-'}")
    retx = summary.get("retransmit") or {}
    if retx:
        lines.append(
            f"  retransmit overlay: {retx.get('count', 0)} retx, "
            f"{retx.get('give_ups', 0)} give-ups, "
            f"mean {retx.get('overlay_ms_mean', 0.0):.2f} ms/message")
    overlays = summary.get("overlays") or {}
    for key, value in sorted(overlays.items()):
        lines.append(f"  overlay {key}: {value}")
    omitted = summary.get("groups_omitted", 0)
    groups = summary.get("groups") or {}
    if len(groups) > 1 or omitted:
        lines.append("  group breakdown (largest first):")
        for gname, g in groups.items():
            t = g["total"]
            lines.append(
                f"    {gname:<20} n={t['count']:<6} "
                f"mean {t['mean_ms']:>8.2f}  p99 {t['p99_ms']:>8.2f}")
        if omitted:
            lines.append(f"    … {omitted} more groups omitted")
    return "\n".join(lines)


def render_stage_delta(rows: List[Dict[str, Any]],
                       left: str = "current",
                       right: str = "baseline") -> str:
    """Fixed-width per-stage delta table (bench compare, live diff)."""
    # Labels are often file paths; keep the tail, which disambiguates.
    left = left if len(left) <= 24 else "…" + left[-23:]
    right = right if len(right) <= 24 else "…" + right[-23:]
    w = max(10, len(left), len(right))
    lines = [f"  {'stage':<16} {left:>{w}} {right:>{w}}      delta"]
    for r in rows:
        cur = "-" if r["current_ms"] is None else f"{r['current_ms']:.2f}"
        base = "-" if r["baseline_ms"] is None else f"{r['baseline_ms']:.2f}"
        lines.append(f"  {r['stage']:<16} {cur:>{w}} {base:>{w}} "
                     f"{r['delta_ms']:>+9.2f} ms")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome-trace / Perfetto export
# ----------------------------------------------------------------------
def chrome_trace(spanset: SpanSet, limit: Optional[int] = 200,
                 ) -> Dict[str, Any]:
    """Spans as Chrome-trace JSON (load in Perfetto / chrome://tracing).

    One thread per message (named ``source #local_seq``), complete
    ("X") slices for the first delivery's stages in causal order,
    instant events for retransmissions and any additional deliveries.
    Timestamps are microseconds (logical ms × 1000).  ``limit`` bounds
    the export (earliest-sent messages first); None exports everything.
    """
    events: List[Dict[str, Any]] = []
    spans = sorted(
        spanset.spans.values(),
        key=lambda s: (s.send_t if s.send_t is not None else float("inf"),
                       str(s.source), s.local_seq))
    if limit is not None:
        spans = spans[:limit]
    events.append({"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
                   "args": {"name": "repro messages"}})
    for tid, span in enumerate(spans, start=1):
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": f"{span.source} #{span.local_seq}"}})
        first = min(span.deliveries, key=lambda d: d.t, default=None)
        if first is not None:
            staged = delivery_stages(span, first)
            if staged is not None:
                cursor = span.send_t
                for stage in STAGE_ORDER:
                    ms = staged[1].get(stage)
                    if ms is None:
                        continue
                    events.append({
                        "ph": "X", "pid": 1, "tid": tid, "name": stage,
                        "cat": "span", "ts": cursor * 1000.0,
                        "dur": ms * 1000.0,
                        "args": {"mh": first.mh, "gseq": span.gseq}})
                    cursor += ms
            for d in span.deliveries:
                if d is not first:
                    events.append({
                        "ph": "i", "pid": 1, "tid": tid, "s": "t",
                        "name": f"deliver@{d.mh}", "cat": "span",
                        "ts": d.t * 1000.0})
        for hop in span.hops.values():
            if hop.retx and hop.last_send is not None:
                events.append({
                    "ph": "i", "pid": 1, "tid": tid, "s": "t",
                    "name": f"retx {hop.src}->{hop.dst} x{hop.retx}",
                    "cat": "retransmit", "ts": hop.last_send * 1000.0})
            if hop.give_ups:
                events.append({
                    "ph": "i", "pid": 1, "tid": tid, "s": "t",
                    "name": f"give_up {hop.src}->{hop.dst}",
                    "cat": "retransmit",
                    "ts": (hop.last_send or hop.first_send or 0.0) * 1000.0})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spanset: SpanSet,
                       limit: Optional[int] = 200) -> int:
    """Write :func:`chrome_trace` output; returns the event count."""
    import json
    payload = chrome_trace(spanset, limit=limit)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
    return len(payload["traceEvents"])
