"""Command-line entry point: ``python -m repro.obs``.

Subcommands
-----------
* ``summarize REPORT`` — digest one ``OBS_*.json`` run report: engine
  totals, registry counters/gauges/histograms, trace-kind counts, the
  profiler's heaviest cost centers, and (for sharded reports) per-shard
  stall/barrier/export-queue lines.
* ``top REPORT`` — just the profiler's ``top``-style table, heaviest
  dispatch cost centers first (the compiled-kernel target list).
* ``timeline FILE`` — tabulate a ``*_timeline.jsonl.gz`` per-window
  timeline; ``--metric`` adds per-window counter/kind/gauge columns.

Reports are produced by the ``--obs`` flag on ``python -m repro.bench``,
``python -m repro.experiments run|sweep``, and
``python -m repro.shard run``.

Examples
--------
::

    python -m repro.bench run quickstart --obs obs-out
    python -m repro.obs summarize obs-out/OBS_quickstart.json
    python -m repro.obs top obs-out/OBS_quickstart.json -n 5
    python -m repro.obs timeline obs-out/OBS_quickstart_timeline.jsonl.gz \\
        --metric transport.retransmitted --metric deliver
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.obs.profiler import render_top
from repro.obs.report import (load_report, load_timeline, render_summary,
                              render_timeline, shard_reports)


def cmd_summarize(args: argparse.Namespace) -> int:
    print(render_summary(load_report(args.report), top=args.top))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    report = load_report(args.report)
    prof = report.get("profiler") or {}
    rows = prof.get("top") or []
    if not rows:
        # A sharded report carries one profiler per shard; merge by
        # printing each (wall times are per-process, not comparable
        # across shards, so no cross-shard re-ranking).
        subs = shard_reports(report)
        if not subs:
            print("(report carries no profiler samples)")
            return 1
        for i, sub in enumerate(subs):
            print(f"shard {i}:")
            print(render_top((sub.get("profiler") or {}).get("top") or [],
                             limit=args.n))
        return 0
    print(render_top(rows, limit=args.n))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    rows = load_timeline(args.timeline)
    print(render_timeline(rows, metrics=args.metric or (), tail=args.tail))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="runtime telemetry: summarize, top, timeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="digest one OBS_*.json report")
    p_sum.add_argument("report", help="path to an OBS_*.json run report")
    p_sum.add_argument("--top", type=int, default=5,
                       help="profiler rows to include (default 5)")
    p_sum.set_defaults(fn=cmd_summarize)

    p_top = sub.add_parser("top", help="dispatch cost centers, heaviest "
                                       "first")
    p_top.add_argument("report", help="path to an OBS_*.json run report")
    p_top.add_argument("-n", type=int, default=10,
                       help="rows to show (default 10)")
    p_top.set_defaults(fn=cmd_top)

    p_tl = sub.add_parser("timeline", help="tabulate a per-window timeline")
    p_tl.add_argument("timeline", help="path to OBS_*_timeline.jsonl[.gz]")
    p_tl.add_argument("--metric", action="append", metavar="NAME",
                      help="add a per-window counter/kind/gauge column, "
                           "repeatable")
    p_tl.add_argument("--tail", type=int, default=0,
                      help="show only the last N windows")
    p_tl.set_defaults(fn=cmd_timeline)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed the pipe; the
        # conventional quiet exit, not a report error.
        sys.stderr.close()
        return 0
    except OSError as exc:
        print(f"error: {exc.strerror or exc}: {exc.filename}"
              if exc.filename else f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
