"""Command-line entry point: ``python -m repro.obs``.

Subcommands
-----------
* ``summarize REPORT`` — digest one ``OBS_*.json`` run report: engine
  totals, registry counters/gauges/histograms, trace-kind counts, the
  profiler's heaviest cost centers, and (for sharded reports) per-shard
  stall/barrier/export-queue lines.
* ``top REPORT`` — just the profiler's ``top``-style table, heaviest
  dispatch cost centers first (the compiled-kernel target list).
* ``timeline FILE`` — tabulate a ``*_timeline.jsonl.gz`` per-window
  timeline; ``--metric`` adds per-window counter/kind/gauge columns.
* ``spans INPUT`` — assemble per-message causal span trees and report
  completeness (every delivered message rooted, no orphan segments).
* ``critpath INPUT`` — per-stage latency attribution: stage shares,
  dominant stage per percentile band, retransmit overlay, per-group
  breakdown.  On a ``live diff`` report it prints the per-stage
  sim-vs-live delta table instead.
* ``export-trace INPUT`` — Chrome-trace / Perfetto JSON export (load
  the file at https://ui.perfetto.dev or chrome://tracing).

``INPUT`` for the span commands is either a registry scenario name
(the run happens in-process; ``--shards`` uses the space-parallel
backend), a ``SPANS_*.jsonl[.gz]`` span-event stream, or a recorded
trace ``*.jsonl[.gz]`` (coarse stages only — trace records carry no
per-hop detail).  Reports are produced by the ``--obs`` / ``--spans``
flags on ``python -m repro.bench``, ``python -m repro.experiments
run|sweep``, and ``python -m repro.shard run``.

Examples
--------
::

    python -m repro.bench run quickstart --obs obs-out
    python -m repro.obs summarize obs-out/OBS_quickstart.json
    python -m repro.obs top obs-out/OBS_quickstart.json -n 5
    python -m repro.obs timeline obs-out/OBS_quickstart_timeline.jsonl.gz \\
        --metric transport.retransmitted --metric deliver
    python -m repro.obs critpath handoff_storm --duration 2500
    python -m repro.obs spans quickstart --shards 4
    python -m repro.obs export-trace quickstart --out trace.json
    python -m repro.obs critpath diff-report.json   # live-diff deltas
"""

from __future__ import annotations

import argparse
import gzip
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.profiler import render_top
from repro.obs.report import (load_report, load_timeline, render_summary,
                              render_timeline, shard_reports)


def cmd_summarize(args: argparse.Namespace) -> int:
    print(render_summary(load_report(args.report), top=args.top))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    report = load_report(args.report)
    prof = report.get("profiler") or {}
    rows = prof.get("top") or []
    if not rows:
        # A sharded report carries one profiler per shard; merge by
        # printing each (wall times are per-process, not comparable
        # across shards, so no cross-shard re-ranking).
        subs = shard_reports(report)
        if not subs:
            print("(report carries no profiler samples)")
            return 1
        for i, sub in enumerate(subs):
            print(f"shard {i}:")
            print(render_top((sub.get("profiler") or {}).get("top") or [],
                             limit=args.n))
        return 0
    print(render_top(rows, limit=args.n))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    rows = load_timeline(args.timeline)
    print(render_timeline(rows, metrics=args.metric or (), tail=args.tail))
    return 0


# ----------------------------------------------------------------------
# Span subcommands
# ----------------------------------------------------------------------
def _spec_for(name: str, duration: Optional[float], seed: Optional[int]):
    from repro.experiments import registry

    overrides: Dict[str, Any] = {}
    if duration is not None:
        overrides["duration_ms"] = duration
        if registry.entry(name).factory().warmup_ms >= duration:
            overrides["warmup_ms"] = 0.0
    if seed is not None:
        overrides["seed"] = seed
    return registry.get(name, **overrides)


def _resolve_span_events(args: argparse.Namespace,
                         ) -> Tuple[List[tuple], str, Dict[str, Any]]:
    """INPUT -> (span events, display name, overlays).

    An existing file is a span-event stream (lines are JSON arrays) or
    a recorded trace (lines are JSON objects — coarse stages only);
    anything else is a registry scenario name, run in-process.
    """
    from repro.obs.spans import (RATE_ENV, events_from_trace,
                                 read_span_events)

    target = args.input
    if os.path.exists(target):
        name = os.path.basename(target)
        opener = gzip.open if target.endswith(".gz") else open
        with opener(target, "rt", encoding="utf-8") as fh:
            first = fh.readline().lstrip()
        if first.startswith("["):
            return read_span_events(target), name, {}
        with opener(target, "rt", encoding="utf-8") as fh:
            return events_from_trace(fh), name, {}

    spec = _spec_for(target, args.duration, args.seed)
    shards = getattr(args, "shards", 1) or 1
    if args.rate is not None and shards > 1:
        # Worker collectors read the rate from the environment.
        os.environ[RATE_ENV] = repr(args.rate)
    if shards > 1:
        from repro.shard.runtime import run_sharded
        res = run_sharded(spec, shards, spans=True)
        return res.span_events or [], spec.name, res.span_overlays()
    from repro.obs.spans import collect_spec
    return collect_spec(spec, rate=args.rate), spec.name, {}


def cmd_spans(args: argparse.Namespace) -> int:
    from repro.obs.spans import assemble, completeness, write_span_events

    events, name, _ = _resolve_span_events(args)
    spanset = assemble(events)
    comp = completeness(spanset)
    if args.out:
        write_span_events(args.out, events)
        print(f"wrote {args.out} ({len(events)} span events)")
    print(f"{name}: {len(events):,} span events -> "
          f"{comp['messages']:,} message span trees, "
          f"{comp['delivered']:,} delivered "
          f"({comp['deliveries']:,} deliveries)")
    retx = sum(s.retransmissions() for s in spanset.spans.values())
    print(f"retransmissions: {retx:,}")
    if comp["ok"]:
        print("completeness: ok — every tree rooted, no orphan events")
        return 0
    print(f"completeness: FAIL — {len(comp['unrooted'])} unrooted trees, "
          f"{comp['orphan_events']} orphan events")
    for key in comp["unrooted"][:10]:
        print(f"  unrooted: {key}")
    return 1


def cmd_critpath(args: argparse.Namespace) -> int:
    from repro.obs.critpath import (critpath_summary, render_critpath,
                                    render_stage_delta)

    if args.input.endswith(".json") and os.path.exists(args.input):
        with open(args.input, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        stages = payload.get("span_stages")
        if isinstance(stages, dict) and "delta" in stages:
            # A live-diff report: per-stage sim-vs-live divergence.
            print(f"{payload.get('name', args.input)}: per-stage latency, "
                  f"live vs sim")
            print(render_stage_delta(stages["delta"], "live", "sim"))
            return 0
        if "stages" in payload and "bands" in payload:
            # An already-computed CRITPATH_*.json summary.
            print(render_critpath(payload, name=os.path.basename(args.input)))
            return 0
        raise ValueError(
            f"{args.input} carries neither span_stages nor a critpath "
            f"summary")

    from repro.obs.spans import assemble
    events, name, overlays = _resolve_span_events(args)
    summary = critpath_summary(assemble(events), overlays=overlays or None)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.report}")
    print(render_critpath(summary, name=name))
    return 0


def cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.obs.critpath import write_chrome_trace
    from repro.obs.spans import assemble

    events, name, _ = _resolve_span_events(args)
    spanset = assemble(events)
    out = args.out or f"TRACE_{name}.json"
    n = write_chrome_trace(out, spanset,
                           limit=args.limit if args.limit > 0 else None)
    print(f"wrote {out} ({n} trace events; open at "
          f"https://ui.perfetto.dev or chrome://tracing)")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="runtime telemetry: summarize, top, timeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="digest one OBS_*.json report")
    p_sum.add_argument("report", help="path to an OBS_*.json run report")
    p_sum.add_argument("--top", type=int, default=5,
                       help="profiler rows to include (default 5)")
    p_sum.set_defaults(fn=cmd_summarize)

    p_top = sub.add_parser("top", help="dispatch cost centers, heaviest "
                                       "first")
    p_top.add_argument("report", help="path to an OBS_*.json run report")
    p_top.add_argument("-n", type=int, default=10,
                       help="rows to show (default 10)")
    p_top.set_defaults(fn=cmd_top)

    p_tl = sub.add_parser("timeline", help="tabulate a per-window timeline")
    p_tl.add_argument("timeline", help="path to OBS_*_timeline.jsonl[.gz]")
    p_tl.add_argument("--metric", action="append", metavar="NAME",
                      help="add a per-window counter/kind/gauge column, "
                           "repeatable")
    p_tl.add_argument("--tail", type=int, default=0,
                      help="show only the last N windows")
    p_tl.set_defaults(fn=cmd_timeline)

    def span_input(p: argparse.ArgumentParser) -> None:
        p.add_argument("input",
                       help="registry scenario name, SPANS_*.jsonl[.gz] "
                            "span stream, or recorded trace *.jsonl[.gz]")
        p.add_argument("--duration", type=float, default=None, metavar="MS",
                       help="override duration_ms (scenario input only)")
        p.add_argument("--seed", type=int, default=None,
                       help="override the scenario seed")
        p.add_argument("--shards", type=int, default=1, metavar="K",
                       help="run the scenario on the space-parallel "
                            "backend with K workers (spans are stitched "
                            "across shard export boundaries)")
        p.add_argument("--rate", type=float, default=None,
                       help="sampled tracing: keep this fraction of "
                            "messages, deterministically (default: "
                            "REPRO_SPANS_SAMPLE or 1.0)")

    p_sp = sub.add_parser("spans", help="assemble per-message span trees "
                                        "and check completeness")
    span_input(p_sp)
    p_sp.add_argument("--out", default=None, metavar="FILE",
                      help="also write the span-event stream here "
                           "(.jsonl.gz)")
    p_sp.set_defaults(fn=cmd_spans)

    p_cp = sub.add_parser("critpath", help="per-stage latency attribution "
                                           "(also reads live-diff reports)")
    span_input(p_cp)
    p_cp.add_argument("--report", default=None, metavar="FILE",
                      help="also write the critpath summary JSON here")
    p_cp.set_defaults(fn=cmd_critpath)

    p_et = sub.add_parser("export-trace",
                          help="Chrome-trace/Perfetto JSON export")
    span_input(p_et)
    p_et.add_argument("--out", default=None, metavar="FILE",
                      help="output path (default TRACE_<name>.json)")
    p_et.add_argument("--limit", type=int, default=200,
                      help="max message spans to export (default 200; "
                           "0 = all)")
    p_et.set_defaults(fn=cmd_export_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed the pipe; the
        # conventional quiet exit, not a report error.
        sys.stderr.close()
        return 0
    except OSError as exc:
        print(f"error: {exc.strerror or exc}: {exc.filename}"
              if exc.filename else f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
