"""Out-of-band runtime telemetry: metrics, profiling, windowed timelines.

``repro.obs`` watches the simulator without ever being part of it: no
trace emissions, no scheduled events, no RNG draws.  The contract —
checked byte-for-byte by ``tests/test_obs_identity.py`` across shard
counts — is that every canonical trace is identical with observability
on or off, and that a run with it off executes **zero** registry
callbacks.

Three pillars:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges, and
  log-bucketed histograms, fed by null-checked call sites in the
  engine, transport, ordering, and shard runtime;
* :class:`~repro.obs.profiler.DispatchProfiler` — stride-sampling wall
  time attribution per handler/kind in the dispatch loop (the target
  list for the compiled event-loop kernel);
* :class:`~repro.obs.session.ObsSession` — the attach-to-finish
  lifecycle folding everything into fixed simulated-time windows and
  writing ``OBS_<name>.json`` + ``OBS_<name>_timeline.jsonl.gz``.

Enable with ``--obs [DIR]`` on ``python -m repro.bench``,
``python -m repro.experiments run|sweep``, or
``python -m repro.shard run``; read artifacts back with
``python -m repro.obs summarize|top|timeline``.
"""

from repro.obs.profiler import DEFAULT_STRIDE, DispatchProfiler, render_top
from repro.obs.registry import (Counter, Gauge, Histogram, MetricsRegistry,
                                diff_counts, merge_counter_dicts)
from repro.obs.report import (load_report, load_timeline, render_summary,
                              render_timeline)
from repro.obs.session import (DEFAULT_WINDOWS, OBS_SCHEMA,
                               PROGRESS_INTERVAL_S, ObsSession,
                               write_artifacts)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "diff_counts", "merge_counter_dicts",
    "DEFAULT_STRIDE", "DispatchProfiler", "render_top",
    "DEFAULT_WINDOWS", "OBS_SCHEMA", "PROGRESS_INTERVAL_S", "ObsSession",
    "write_artifacts",
    "load_report", "load_timeline", "render_summary", "render_timeline",
]
