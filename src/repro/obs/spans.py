"""Out-of-band causal span collection and per-message tree assembly.

The trace bus already narrates every delivered payload's life — a
``source.send`` at the source, a ``wq.insert`` when the SourceData
reaches its ordering NE, an ``ordered`` when the token assigns the
global sequence, and an ``mh.deliver`` per receiving mobile host.  What
it cannot narrate is the *transport*: which link hops a message crossed,
how many retransmissions each hop took, and when the last copy landed at
the MH.  This module closes that gap the same way ``repro.obs`` closed
the metrics gap in PR 6: strictly out of band.

A :class:`SpanCollector` subscribes to the semantic trace kinds above
and additionally registers itself as ``sim.spans``, the null-checked
hook :class:`~repro.net.transport.ReliableChannel` calls on every
segment send / first-delivery receive / give-up.  A run without a
collector executes a single ``is not None`` check per hook site; trace
emission is untouched, so the seed goldens stay byte-identical with
spans on or off — sequentially, sharded, and live (the hooks read
``node.now``, which the live backend freezes per callback, so live
spans carry the same logical-ms clock the lag accounting corrects).

Collected *span events* are flat tuples (cheap to append, JSON-safe);
:func:`assemble` groups them per message key ``(source, local_seq)`` —
the identity that is stable across shard counts and backends — into
:class:`MessageSpan` trees: send root, per-hop segment stats, ordering
waypoints, one :class:`Delivery` leaf per MH.  ``wq.insert`` and
``ordered`` records do not carry the source (the ordering NE is 1:1
with its source), so assembly first learns the ``ordering NE → source``
map from the ``source.send`` records' ``corresponding`` field and then
resolves; under sharding this is why resolution happens at assembly
time, after the per-shard streams merge — a shard that owns the
ordering NE but not the source never sees the ``source.send``.

Sampling is deterministic and shard-agnostic: a message is kept iff
``crc32`` of its source-local sequence number falls under the rate
threshold.  ``local_seq`` is the one key field present at *every*
instrumentation site without cross-entity state, so every shard and
every stage agree on the sampled set (the cost: messages with the same
local seq across sources sample together, which biases no per-stage
statistic).  At the xxl/metro rungs a :class:`SpanStreamWriter` streams
events to windowed gzip JSONL instead of holding them.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple
from zlib import crc32

#: Schema tag stamped into span report payloads.
SPAN_SCHEMA = "repro.spans/v1"

#: Environment override for the sampling rate (fraction in (0, 1]).
RATE_ENV = "REPRO_SPANS_SAMPLE"

#: Trace kinds the collector subscribes to (the semantic waypoints).
TRACE_KINDS = ("source.send", "wq.insert", "ordered", "mh.deliver")

#: Message key: ``(source, local_seq)`` — stable across backends.
Key = Tuple[Any, int]

#: One span event, a flat tuple.  First element is the event code:
#:   ("send", t, source, local_seq, corresponding)
#:   ("wq",   t, node, local_seq)
#:   ("ord",  t, node, ordering_node, local_seq, gseq)
#:   ("dlv",  t, mh, source, local_seq, gseq, latency)
#:   ("segs", t, src, dst, kind, source, local_seq, retx, gid)
#:   ("segr", t, node, peer, kind, source, local_seq)
#:   ("gup",  t, src, dst, kind, source, local_seq)
SpanEvent = Tuple[Any, ...]


def default_rate() -> float:
    """The sampling rate: ``REPRO_SPANS_SAMPLE`` or 1.0 (keep all)."""
    raw = os.environ.get(RATE_ENV)
    if raw is None:
        return 1.0
    rate = float(raw)
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"{RATE_ENV} must be a fraction in (0, 1], "
                         f"got {raw!r}")
    return rate


def sampled(local_seq: Any, rate: float) -> bool:
    """Deterministic keep/drop decision for one message.

    Pure function of ``local_seq`` and ``rate`` — no RNG, no salted
    ``hash()`` — so every shard, backend, and re-run agrees.
    """
    if rate >= 1.0:
        return True
    return crc32(b"span:%r" % (local_seq,)) < int(rate * 2 ** 32)


# ----------------------------------------------------------------------
# Streaming writer / reader
# ----------------------------------------------------------------------
class SpanStreamWriter:
    """Windowed (compressed) JSONL sink for span events.

    Mirrors :class:`~repro.sim.trace.StreamingTraceSink`: ``.gz`` paths
    gzip with ``mtime=0`` for byte-stable output, at most ``window``
    events are buffered, and :meth:`close` is idempotent.
    """

    def __init__(self, path: str, window: int = 4096):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.path = path
        self.window = window
        self.count = 0
        self._buffer: List[str] = []
        if path.endswith(".gz"):
            self._fh = gzip.GzipFile(path, "wb", mtime=0)
        else:
            self._fh = open(path, "wb")
        self._closed = False

    def write(self, ev: SpanEvent) -> None:
        self._buffer.append(json.dumps(ev, separators=(",", ":"),
                                       default=list))
        self.count += 1
        if len(self._buffer) >= self.window:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            data = "".join(line + "\n" for line in self._buffer)
            self._fh.write(data.encode("utf-8"))
            self._buffer.clear()

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "SpanStreamWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_span_events(path: str) -> List[SpanEvent]:
    """Load span events written by :class:`SpanStreamWriter`."""
    opener = gzip.open if path.endswith(".gz") else open
    out: List[SpanEvent] = []
    with opener(path, "rt", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(tuple(json.loads(line)))
    return out


def write_span_events(path: str, events: Iterable[SpanEvent],
                      window: int = 4096) -> int:
    """Write pre-collected events through a :class:`SpanStreamWriter`."""
    with SpanStreamWriter(path, window=window) as sink:
        n = 0
        for ev in events:
            sink.write(ev)
            n += 1
    return n


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
class SpanCollector:
    """Collect span events from a running backend, out of band.

    Attach with the same ``attach(trace)`` / ``detach()`` surface the
    validation observers use, so it composes with
    :func:`repro.validation.suite.observed_scenario` unchanged; the
    owning runtime is found through the bus back-reference (or passed
    explicitly for runtimes built ahead of the bus).  Attaching
    installs the collector as ``sim.spans`` for the transport hooks and
    subscribes the semantic :data:`TRACE_KINDS`.

    Never emits, schedules, or mutates protocol state — the AST guard
    in ``tests/test_obs_identity.py`` enforces this for the whole
    module.
    """

    def __init__(self, rate: Optional[float] = None,
                 sink: Optional[SpanStreamWriter] = None):
        rate = default_rate() if rate is None else float(rate)
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = rate
        self.events: List[SpanEvent] = []
        self._sink = sink
        self._add = sink.write if sink is not None else self.events.append
        # None means "keep everything" (the fast path); otherwise a
        # local_seq -> bool memo so the crc is paid once per message.
        self._keep: Optional[Dict[Any, bool]] = None if rate >= 1.0 else {}
        self._limit = int(rate * 2 ** 32)
        # payload class -> kind tag when the class carries a
        # (source, local_seq) identity, else None.  The protocol
        # messages are __slots__ classes, so this is a true class
        # property; the memo turns the hook's dominant path — control
        # traffic (tokens, acks, WTSNP) with no message identity — into
        # one dict hit, and spares keyed payloads the ``.kind``
        # property call (it computes ``type(self).__name__`` each time).
        self._keyed: Dict[type, Optional[str]] = {}
        self._trace = None
        self._sim = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, trace, sim=None) -> "SpanCollector":
        sim = sim if sim is not None else trace._sim
        if sim is None:
            raise RuntimeError("trace bus has no runtime back-reference; "
                               "pass sim= explicitly")
        if self._trace is not None:
            raise RuntimeError("collector is already attached")
        if sim.spans is not None:
            raise RuntimeError("runtime already has a span collector")
        self._trace = trace
        self._sim = sim
        sim.spans = self
        for kind, fn in self._handlers():
            trace.subscribe(kind, fn)
        return self

    def detach(self) -> None:
        if self._trace is None:
            return
        for kind, fn in self._handlers():
            self._trace.unsubscribe(kind, fn)
        self._sim.spans = None
        self._trace = None
        self._sim = None

    def _handlers(self):
        return (("source.send", self._on_send),
                ("wq.insert", self._on_wq),
                ("ordered", self._on_ordered),
                ("mh.deliver", self._on_deliver))

    # -- sampling -------------------------------------------------------
    def _sampled(self, local_seq: Any) -> bool:
        keep = self._keep
        v = keep.get(local_seq)
        if v is None:
            v = crc32(b"span:%r" % (local_seq,)) < self._limit
            keep[local_seq] = v
        return v

    # -- trace-bus side (one bound handler per kind: no branch chain) ---
    def _on_deliver(self, rec) -> None:
        a = rec.attrs
        lseq = a.get("local_seq")
        if lseq is None:
            return
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("dlv", rec.time, a["mh"], a["source"], lseq,
                   a["gseq"], a["latency"]))

    def _on_ordered(self, rec) -> None:
        a = rec.attrs
        lseq = a.get("local_seq")
        if lseq is None:
            return
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("ord", rec.time, a["node"], a["ordering_node"],
                   lseq, a["gseq"]))

    def _on_wq(self, rec) -> None:
        a = rec.attrs
        lseq = a.get("local_seq")
        if lseq is None:
            return
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("wq", rec.time, a["node"], lseq))

    def _on_send(self, rec) -> None:
        a = rec.attrs
        lseq = a.get("local_seq")
        if lseq is None:
            return
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("send", rec.time, a["source"], lseq,
                   a.get("corresponding")))

    # -- transport hooks (called from ReliableChannel) ------------------
    def _payload_kind(self, payload: Any) -> Optional[str]:
        cls = payload.__class__
        kind = self._keyed.get(cls, False)
        if kind is False:
            carries = (getattr(payload, "local_seq", None) is not None
                       and getattr(payload, "source", None) is not None)
            kind = self._keyed.setdefault(
                cls, cls.__name__ if carries else None)
        return kind

    def seg_send(self, t: float, src: Any, dst: Any, payload: Any,
                 retx: bool) -> None:
        kind = self._payload_kind(payload)
        if kind is None:
            return
        lseq = payload.local_seq
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("segs", t, src, dst, kind, payload.source, lseq,
                   1 if retx else 0, getattr(payload, "gid", None)))

    def seg_recv(self, t: float, node: Any, peer: Any,
                 payload: Any) -> None:
        kind = self._payload_kind(payload)
        if kind is None:
            return
        lseq = payload.local_seq
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("segr", t, node, peer, kind, payload.source, lseq))

    def give_up(self, t: float, src: Any, dst: Any, payload: Any) -> None:
        kind = self._payload_kind(payload)
        if kind is None:
            return
        lseq = payload.local_seq
        if self._keep is not None and not self._sampled(lseq):
            return
        self._add(("gup", t, src, dst, kind, payload.source, lseq))


# ----------------------------------------------------------------------
# Assembled model
# ----------------------------------------------------------------------
class HopStat:
    """Aggregated segment traffic on one (src, dst, payload-kind) hop."""

    __slots__ = ("src", "dst", "kind", "first_send", "last_send", "sends",
                 "retx", "first_recv", "recvs", "give_ups")

    def __init__(self, src: Any, dst: Any, kind: str):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.first_send: Optional[float] = None
        self.last_send: Optional[float] = None
        self.sends = 0
        self.retx = 0
        self.first_recv: Optional[float] = None
        self.recvs = 0
        self.give_ups = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"src": self.src, "dst": self.dst, "kind": self.kind,
                "first_send": self.first_send, "last_send": self.last_send,
                "sends": self.sends, "retx": self.retx,
                "first_recv": self.first_recv, "recvs": self.recvs,
                "give_ups": self.give_ups}


class Delivery:
    """One MH's receipt of the message."""

    __slots__ = ("mh", "t", "gseq", "latency", "arrive_t")

    def __init__(self, mh: Any, t: float, gseq: Any, latency: float):
        self.mh = mh
        self.t = t
        self.gseq = gseq
        self.latency = latency
        #: When the first copy physically reached the MH (seg_recv);
        #: None in coarse (trace-only) assembly.
        self.arrive_t: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"mh": self.mh, "t": self.t, "gseq": self.gseq,
                "latency": self.latency, "arrive_t": self.arrive_t}


class MessageSpan:
    """The assembled causal tree for one ``(source, local_seq)``."""

    __slots__ = ("source", "local_seq", "gid", "ordering_node", "send_t",
                 "wq_t", "ordered_t", "ordered_first", "gseq",
                 "deliveries", "hops")

    def __init__(self, source: Any, local_seq: int):
        self.source = source
        self.local_seq = local_seq
        self.gid: Optional[str] = None
        self.ordering_node: Any = None
        #: Root: the application send (``source.send``); an unrooted
        #: span (None) is a completeness failure for delivered keys.
        self.send_t: Optional[float] = None
        self.wq_t: Optional[float] = None
        #: Global-seq assignment at the ordering NE itself.
        self.ordered_t: Optional[float] = None
        #: Earliest ``ordered`` sighting anywhere (fallback waypoint).
        self.ordered_first: Optional[float] = None
        self.gseq: Any = None
        self.deliveries: List[Delivery] = []
        self.hops: Dict[Tuple[Any, Any, str], HopStat] = {}

    @property
    def key(self) -> Key:
        return (self.source, self.local_seq)

    def hop(self, src: Any, dst: Any, kind: str) -> HopStat:
        k = (src, dst, kind)
        h = self.hops.get(k)
        if h is None:
            h = self.hops[k] = HopStat(src, dst, kind)
        return h

    def hop_into(self, node: Any) -> Optional[HopStat]:
        """The earliest-receiving hop terminating at ``node``."""
        best = None
        for h in self.hops.values():
            if h.dst == node and h.first_recv is not None:
                if best is None or h.first_recv < best.first_recv:
                    best = h
        return best

    def retransmit_ms(self) -> float:
        """Retransmission overlay: extra send-window time across hops."""
        total = 0.0
        for h in self.hops.values():
            if h.retx and h.first_send is not None:
                total += max(0.0, (h.last_send or h.first_send)
                             - h.first_send)
        return total

    def retransmissions(self) -> int:
        return sum(h.retx for h in self.hops.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source, "local_seq": self.local_seq,
            "gid": self.gid, "ordering_node": self.ordering_node,
            "send_t": self.send_t, "wq_t": self.wq_t,
            "ordered_t": self.ordered_t, "gseq": self.gseq,
            "deliveries": [d.to_dict() for d in self.deliveries],
            "hops": [h.to_dict() for h in self.hops.values()],
        }


class SpanSet:
    """Every assembled span plus whatever could not be attached."""

    def __init__(self) -> None:
        self.spans: Dict[Key, MessageSpan] = {}
        #: Events whose ordering NE never announced a source.
        self.orphans: List[SpanEvent] = []

    def span(self, source: Any, local_seq: int) -> MessageSpan:
        k = (source, local_seq)
        s = self.spans.get(k)
        if s is None:
            s = self.spans[k] = MessageSpan(source, local_seq)
        return s

    def delivered(self) -> List[MessageSpan]:
        return [s for s in self.spans.values() if s.deliveries]

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def assemble(events: Iterable[SpanEvent]) -> SpanSet:
    """Group flat span events into per-message trees.

    Two passes: learn the ``ordering NE → source`` map from ``send``
    events (their ``corresponding`` field), then resolve and attach.
    Order-independent, so merged per-shard streams assemble to the
    same set as the sequential stream.
    """
    events = list(events)
    ne2src: Dict[Any, Any] = {}
    for ev in events:
        if ev[0] == "send" and ev[4] is not None:
            ne2src[ev[4]] = ev[2]

    out = SpanSet()
    for ev in events:
        code = ev[0]
        if code == "send":
            _, t, source, lseq, corresponding = ev
            s = out.span(source, lseq)
            s.send_t = t if s.send_t is None else min(s.send_t, t)
            if s.ordering_node is None:
                s.ordering_node = corresponding
        elif code == "wq":
            _, t, node, lseq = ev
            source = ne2src.get(node)
            if source is None:
                out.orphans.append(ev)
                continue
            s = out.span(source, lseq)
            s.wq_t = t if s.wq_t is None else min(s.wq_t, t)
        elif code == "ord":
            _, t, node, ordering_node, lseq, gseq = ev
            source = ne2src.get(ordering_node)
            if source is None:
                out.orphans.append(ev)
                continue
            s = out.span(source, lseq)
            s.gseq = gseq
            if s.ordered_first is None or t < s.ordered_first:
                s.ordered_first = t
            if node == ordering_node:
                s.ordered_t = t if s.ordered_t is None else min(
                    s.ordered_t, t)
        elif code == "dlv":
            _, t, mh, source, lseq, gseq, latency = ev
            s = out.span(source, lseq)
            if s.gseq is None:
                s.gseq = gseq
            s.deliveries.append(Delivery(mh, t, gseq, latency))
        elif code == "segs":
            _, t, src, dst, kind, source, lseq, retx, gid = ev
            s = out.span(source, lseq)
            if gid is not None and s.gid is None:
                s.gid = gid
            h = s.hop(src, dst, kind)
            h.sends += 1
            if retx:
                h.retx += 1
            if h.first_send is None or t < h.first_send:
                h.first_send = t
            if h.last_send is None or t > h.last_send:
                h.last_send = t
        elif code == "segr":
            _, t, node, peer, kind, source, lseq = ev
            s = out.span(source, lseq)
            h = s.hop(peer, node, kind)
            h.recvs += 1
            if h.first_recv is None or t < h.first_recv:
                h.first_recv = t
        elif code == "gup":
            _, t, src, dst, kind, source, lseq = ev
            s = out.span(source, lseq)
            s.hop(src, dst, kind).give_ups += 1
        else:
            out.orphans.append(ev)

    # Resolve each delivery's physical arrival from the hop stats.
    for s in out.spans.values():
        for d in s.deliveries:
            h = s.hop_into(d.mh)
            if h is not None:
                d.arrive_t = h.first_recv
    return out


def events_from_trace(records_or_lines: Iterable[Any]) -> List[SpanEvent]:
    """Coarse span events from an already-recorded trace stream.

    Accepts :class:`~repro.sim.trace.TraceRecord` instances or
    canonical JSONL lines (e.g. a committed golden).  Only the semantic
    waypoints exist in a trace, so the assembled spans have no hop
    detail — stage math falls back to the coarse ``fanout`` stage.
    """
    from repro.sim.trace import line_to_record
    shim = _TraceShim()
    for item in records_or_lines:
        shim.feed(line_to_record(item) if isinstance(item, str) else item)
    return shim.events


class _TraceShim:
    """Reuses the collector's trace-side handlers on offline records."""

    def __init__(self) -> None:
        self._col = SpanCollector(rate=1.0)
        self._dispatch = dict(self._col._handlers())

    def feed(self, rec) -> None:
        fn = self._dispatch.get(rec.kind)
        if fn is not None:
            fn(rec)

    @property
    def events(self) -> List[SpanEvent]:
        return self._col.events


# ----------------------------------------------------------------------
# Completeness
# ----------------------------------------------------------------------
def completeness(spanset: SpanSet) -> Dict[str, Any]:
    """Does every delivered message assemble into one rooted tree?

    Rooted means the span has its ``source.send`` root; the property
    test in ``tests/test_spans.py`` holds this over every registry
    scenario at shards 1/2/4.
    """
    delivered = spanset.delivered()
    unrooted = sorted(
        (s.key for s in delivered if s.send_t is None),
        key=lambda k: (str(k[0]), k[1]))
    return {
        "messages": len(spanset),
        "delivered": len(delivered),
        "deliveries": sum(len(s.deliveries) for s in delivered),
        "unrooted": [list(k) for k in unrooted],
        "orphan_events": len(spanset.orphans),
        "ok": not unrooted and not spanset.orphans,
    }


# ----------------------------------------------------------------------
# Running a spec with spans attached
# ----------------------------------------------------------------------
def collect_spec(spec, rate: Optional[float] = None,
                 stream_path: Optional[str] = None) -> List[SpanEvent]:
    """Build and run ``spec`` sequentially with a collector attached.

    Returns the event list; with ``stream_path`` the events are instead
    streamed to disk (read back with :func:`read_span_events`) and the
    returned list is empty.
    """
    from repro.validation.suite import observed_scenario
    sink = SpanStreamWriter(stream_path) if stream_path else None
    collector = SpanCollector(rate=rate, sink=sink)
    try:
        with observed_scenario(spec, collector) as scenario:
            scenario.run()
    finally:
        if sink is not None:
            sink.close()
    return collector.events
