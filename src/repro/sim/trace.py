"""Structured trace bus and the canonical trace serialization.

Protocol code emits semantic records (``kind`` + attribute dict); metric
collectors subscribe by kind.  The bus is intentionally dumb and fast:
no records are retained unless a subscriber (or the ``record=True`` debug
mode) asks for them, so tracing costs almost nothing in benchmark runs.

The canonical JSONL form (:func:`record_to_line` /
:func:`line_to_record`) lives here with the bus so that *every*
consumer — the validation recorder, the shard merge, the streaming sink
below — serializes one way.  :class:`StreamingTraceSink` writes that
form to a compressed file in bounded windows: at million-MH scale a run
emits far more records than fit in an in-memory ``records`` list, and
the sink keeps trace memory O(window) instead of O(run length) while
producing byte-identical lines.
"""

from __future__ import annotations

import gzip
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One semantic event: e.g. ``kind='deliver'``, attrs for details."""

    time: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)


Subscriber = Callable[[TraceRecord], None]


# ----------------------------------------------------------------------
# Canonical (de)serialization
# ----------------------------------------------------------------------
def record_to_line(rec: TraceRecord) -> str:
    """One canonical JSONL line (no trailing newline).

    Attribute tuples serialize as JSON arrays and load back as tuples
    (the trace vocabulary uses tuples — e.g. ``token_id`` — and never
    semantically distinguishes list from tuple); keys sort; floats use
    ``repr`` round-tripping via the stdlib ``json`` module.
    """
    return json.dumps({"t": rec.time, "k": rec.kind, "a": rec.attrs},
                      sort_keys=True, separators=(",", ":"), default=list)


def _canonical(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    return value


def line_to_record(line: str) -> TraceRecord:
    """Parse one JSONL line back into a :class:`TraceRecord`."""
    data = json.loads(line)
    attrs = {k: _canonical(v) for k, v in data["a"].items()}
    return TraceRecord(time=float(data["t"]), kind=data["k"], attrs=attrs)


# ----------------------------------------------------------------------
# Streaming sink
# ----------------------------------------------------------------------
class StreamingTraceSink:
    """Stream every bus record to a (compressed) JSONL file, windowed.

    A wildcard subscriber that serializes records with
    :func:`record_to_line` and writes them out every ``window`` records,
    so trace memory stays bounded no matter how long the run is.  Paths
    ending in ``.gz`` are gzip-compressed with ``mtime=0`` — the same
    byte-stable framing as the committed seed goldens, so a streamed
    file of an unchanged scenario diffs clean against its golden.

    Use as a context manager (detaches *and* closes on exit), or via
    :meth:`attach` / :meth:`detach` / :meth:`close` directly::

        sink = StreamingTraceSink(path)
        with sink.attached(sim.trace):
            scenario.run()
        sink.close()

    The attach/detach surface matches
    :class:`~repro.validation.record.TraceRecorder`, so anything that
    composes with the recorder — ``observed_scenario`` in particular —
    takes the sink unchanged.
    """

    def __init__(self, path: str, window: int = 4096):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.path = path
        self.window = window
        self.count = 0
        self._buffer: List[str] = []
        self._trace: Optional[TraceBus] = None
        if path.endswith(".gz"):
            self._fh = gzip.GzipFile(path, "wb", mtime=0)
        else:
            self._fh = open(path, "wb")
        self._closed = False

    # -- subscription lifecycle ----------------------------------------
    def attach(self, trace: TraceBus) -> "StreamingTraceSink":
        if self._trace is not None:
            raise RuntimeError("sink is already attached")
        if self._closed:
            raise RuntimeError("sink is closed")
        self._trace = trace
        trace.subscribe(None, self._on_record)
        return self

    def detach(self) -> None:
        if self._trace is not None:
            self._trace.unsubscribe(None, self._on_record)
            self._trace = None

    @contextmanager
    def attached(self, trace: TraceBus) -> Iterator["StreamingTraceSink"]:
        """Scoped attach: detaches (but does not close) on exit."""
        self.attach(trace)
        try:
            yield self
        finally:
            self.detach()

    def __enter__(self) -> "StreamingTraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()
        self.close()

    # -- record flow ----------------------------------------------------
    def _on_record(self, rec: TraceRecord) -> None:
        buf = self._buffer
        buf.append(record_to_line(rec))
        self.count += 1
        if len(buf) >= self.window:
            self.flush()

    def flush(self) -> None:
        """Write the buffered window out (file stays open)."""
        if self._buffer:
            data = "".join(line + "\n" for line in self._buffer)
            self._fh.write(data.encode("utf-8"))
            self._buffer.clear()

    def close(self) -> None:
        """Flush the tail window and close the file (idempotent)."""
        if not self._closed:
            self.detach()
            self.flush()
            self._fh.close()
            self._closed = True


def read_trace_lines(path: str) -> List[str]:
    """Canonical lines from a JSONL file, transparently gunzipping."""
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:
        return [line.rstrip("\n") for line in fh if line.strip()]


def write_trace_lines(path: str, lines, window: int = 4096) -> int:
    """Write pre-serialized canonical lines to ``path`` in windows.

    The file-format twin of :class:`StreamingTraceSink` for producers
    that already hold lines rather than a live bus — the sharded merge,
    chiefly.  ``lines`` may be any iterable; at most ``window`` lines
    are buffered.  Returns the line count.
    """
    if path.endswith(".gz"):
        fh = gzip.GzipFile(path, "wb", mtime=0)
    else:
        fh = open(path, "wb")
    n = 0
    buf: List[str] = []
    with fh:
        for line in lines:
            buf.append(line)
            n += 1
            if len(buf) >= window:
                fh.write("".join(l + "\n" for l in buf).encode("utf-8"))
                buf.clear()
        if buf:
            fh.write("".join(l + "\n" for l in buf).encode("utf-8"))
    return n


class TraceBus:
    """Publish/subscribe hub for :class:`TraceRecord` instances.

    Parameters
    ----------
    record:
        When True, every emitted record is appended to :attr:`records`
        (useful in tests; avoid in long benchmark runs).
    counting:
        When True (the default), :attr:`counts` tallies emits per kind.
        Benchmark runs pass False so the nobody-listens fast path does
        no dict mutation at all.
    """

    def __init__(self, record: bool = False, counting: bool = True):
        self._subs_by_kind: Dict[str, List[Subscriber]] = {}
        self._subs_all: List[Subscriber] = []
        self.record = record
        self.counting = counting
        self.records: List[TraceRecord] = []
        self.counts: Dict[str, int] = {}
        #: Back-reference to the owning simulator (set by ``Simulator``);
        #: keyed recorders use it to stamp records with causal keys.
        self._sim = None
        #: Optional zero-arg predicate installed by a shard worker: when
        #: it returns False the emission is suppressed entirely (the
        #: record belongs to an entity another shard owns).  ``None`` —
        #: the sequential default — emits everything.
        self.gate: Optional[Callable[[], bool]] = None
        # Emit-side dispatch caches, rebuilt on (un)subscribe: the
        # wildcard list as a tuple, and per subscribed kind the deduped
        # kind-subscribers-then-wildcards call list.  ``emit`` only ever
        # does one dict lookup against these.
        self._wild: tuple = ()
        self._dispatch: Dict[str, tuple] = {}

    def _rebuild_dispatch(self) -> None:
        self._wild = tuple(self._subs_all)
        self._dispatch = {
            kind: tuple(subs) + tuple(
                fn for fn in self._subs_all if fn not in subs)
            for kind, subs in self._subs_by_kind.items()
        }

    # ------------------------------------------------------------------
    def subscribe(self, kind: Optional[str], fn: Subscriber) -> None:
        """Subscribe ``fn`` to records of ``kind`` (None = all kinds).

        A subscriber registered for both a kind and the wildcard is
        called once per record, not twice.
        """
        if kind is None:
            self._subs_all.append(fn)
        else:
            self._subs_by_kind.setdefault(kind, []).append(fn)
        self._rebuild_dispatch()

    def unsubscribe(self, kind: Optional[str], fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        if kind is None:
            self._subs_all.remove(fn)
        else:
            subs = self._subs_by_kind[kind]
            subs.remove(fn)
            if not subs:
                # Drop the empty list so ``emit`` stays on its cheap
                # nobody-listens fast path for this kind.
                del self._subs_by_kind[kind]
        self._rebuild_dispatch()

    @contextmanager
    def subscription(self, kind: Optional[str], fn: Subscriber) -> Iterator[Subscriber]:
        """Scoped subscription: detaches on exit even on error.

        ::

            with bus.subscription("mh.deliver", on_deliver):
                scenario.run()
        """
        self.subscribe(kind, fn)
        try:
            yield fn
        finally:
            self.unsubscribe(kind, fn)

    @property
    def subscriber_count(self) -> int:
        """Total live subscriptions (all kinds plus wildcard)."""
        return (len(self._subs_all)
                + sum(len(s) for s in self._subs_by_kind.values()))

    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, **attrs: Any) -> None:
        """Publish a record; cheap when nobody listens."""
        gate = self.gate
        if gate is not None and not gate():
            return
        if self.counting:
            counts = self.counts
            counts[kind] = counts.get(kind, 0) + 1
        fns = self._dispatch.get(kind)
        if fns is None:
            fns = self._wild
            if not fns and not self.record:
                return
        rec = TraceRecord(time, kind, attrs)
        if self.record:
            self.records.append(rec)
        for fn in fns:
            fn(rec)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Recorded records of one kind (requires ``record=True``)."""
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        """Forget recorded records and counters (subscriptions persist)."""
        self.records.clear()
        self.counts.clear()
