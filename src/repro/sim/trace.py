"""Structured trace bus.

Protocol code emits semantic records (``kind`` + attribute dict); metric
collectors subscribe by kind.  The bus is intentionally dumb and fast:
no records are retained unless a subscriber (or the ``record=True`` debug
mode) asks for them, so tracing costs almost nothing in benchmark runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One semantic event: e.g. ``kind='deliver'``, attrs for details."""

    time: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe hub for :class:`TraceRecord` instances.

    Parameters
    ----------
    record:
        When True, every emitted record is appended to :attr:`records`
        (useful in tests; avoid in long benchmark runs).
    counting:
        When True (the default), :attr:`counts` tallies emits per kind.
        Benchmark runs pass False so the nobody-listens fast path does
        no dict mutation at all.
    """

    def __init__(self, record: bool = False, counting: bool = True):
        self._subs_by_kind: Dict[str, List[Subscriber]] = {}
        self._subs_all: List[Subscriber] = []
        self.record = record
        self.counting = counting
        self.records: List[TraceRecord] = []
        self.counts: Dict[str, int] = {}
        #: Back-reference to the owning simulator (set by ``Simulator``);
        #: keyed recorders use it to stamp records with causal keys.
        self._sim = None
        #: Optional zero-arg predicate installed by a shard worker: when
        #: it returns False the emission is suppressed entirely (the
        #: record belongs to an entity another shard owns).  ``None`` —
        #: the sequential default — emits everything.
        self.gate: Optional[Callable[[], bool]] = None
        # Emit-side dispatch caches, rebuilt on (un)subscribe: the
        # wildcard list as a tuple, and per subscribed kind the deduped
        # kind-subscribers-then-wildcards call list.  ``emit`` only ever
        # does one dict lookup against these.
        self._wild: tuple = ()
        self._dispatch: Dict[str, tuple] = {}

    def _rebuild_dispatch(self) -> None:
        self._wild = tuple(self._subs_all)
        self._dispatch = {
            kind: tuple(subs) + tuple(
                fn for fn in self._subs_all if fn not in subs)
            for kind, subs in self._subs_by_kind.items()
        }

    # ------------------------------------------------------------------
    def subscribe(self, kind: Optional[str], fn: Subscriber) -> None:
        """Subscribe ``fn`` to records of ``kind`` (None = all kinds).

        A subscriber registered for both a kind and the wildcard is
        called once per record, not twice.
        """
        if kind is None:
            self._subs_all.append(fn)
        else:
            self._subs_by_kind.setdefault(kind, []).append(fn)
        self._rebuild_dispatch()

    def unsubscribe(self, kind: Optional[str], fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        if kind is None:
            self._subs_all.remove(fn)
        else:
            subs = self._subs_by_kind[kind]
            subs.remove(fn)
            if not subs:
                # Drop the empty list so ``emit`` stays on its cheap
                # nobody-listens fast path for this kind.
                del self._subs_by_kind[kind]
        self._rebuild_dispatch()

    @contextmanager
    def subscription(self, kind: Optional[str], fn: Subscriber) -> Iterator[Subscriber]:
        """Scoped subscription: detaches on exit even on error.

        ::

            with bus.subscription("mh.deliver", on_deliver):
                scenario.run()
        """
        self.subscribe(kind, fn)
        try:
            yield fn
        finally:
            self.unsubscribe(kind, fn)

    @property
    def subscriber_count(self) -> int:
        """Total live subscriptions (all kinds plus wildcard)."""
        return (len(self._subs_all)
                + sum(len(s) for s in self._subs_by_kind.values()))

    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, **attrs: Any) -> None:
        """Publish a record; cheap when nobody listens."""
        gate = self.gate
        if gate is not None and not gate():
            return
        if self.counting:
            counts = self.counts
            counts[kind] = counts.get(kind, 0) + 1
        fns = self._dispatch.get(kind)
        if fns is None:
            fns = self._wild
            if not fns and not self.record:
                return
        rec = TraceRecord(time, kind, attrs)
        if self.record:
            self.records.append(rec)
        for fn in fns:
            fn(rec)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """Recorded records of one kind (requires ``record=True``)."""
        return [r for r in self.records if r.kind == kind]

    def clear(self) -> None:
        """Forget recorded records and counters (subscriptions persist)."""
        self.records.clear()
        self.counts.clear()
