"""Named, independently seeded random streams.

Every stochastic decision in the simulator (link jitter, loss draws,
mobility, workload inter-arrival times) pulls from a *named* stream so
that changing one source of randomness does not perturb the draws seen by
another — the standard variance-reduction / reproducibility discipline for
simulation studies.

Streams are lazily created ``numpy.random.Generator`` instances whose
seeds derive from the master seed and the stream name via
``numpy.random.SeedSequence``; names are stable across runs and platforms.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory and registry of named deterministic random generators."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 gives a stable, platform-independent hash of the name.
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.master_seed, spawn_key=(tag,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Drop all streams; next access recreates them from scratch."""
        self._streams.clear()

    def names(self) -> list[str]:
        """Names of streams created so far (sorted, for stable reports)."""
        return sorted(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.master_seed} n={len(self._streams)}>"
