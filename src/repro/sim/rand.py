"""Named, independently seeded random streams.

Every stochastic decision in the simulator (link jitter, loss draws,
mobility, workload inter-arrival times) pulls from a *named* stream so
that changing one source of randomness does not perturb the draws seen by
another — the standard variance-reduction / reproducibility discipline for
simulation studies.

Streams are lazily created ``numpy.random.Generator`` instances whose
seeds derive from the master seed and the stream name via
``numpy.random.SeedSequence``; names are stable across runs and platforms.
When numpy is unavailable, a pure-python stand-in backed by
``random.Random`` provides the three draw methods the simulator uses
(``random`` / ``exponential`` / ``integers``) — draws differ from the
numpy streams but stay deterministic for a fixed seed, so experiment
replay still holds within either mode.
"""

from __future__ import annotations

import hashlib
import random as _pyrandom
import zlib
from typing import Dict, Optional

try:  # optional: the simulator degrades to python's Mersenne Twister
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a child seed from ``root_seed`` and a key path.

    SHA-256 over the decimal root seed and the stringified path keys,
    truncated to 63 bits — deterministic across platforms, processes,
    and Python versions (no ``hash()`` randomization, no numpy needed).
    Replications and sweep points use this instead of ad-hoc
    ``seed + i`` arithmetic, which correlates nearby streams.
    """
    h = hashlib.sha256(str(int(root_seed)).encode("ascii"))
    for key in path:
        h.update(b"/")
        h.update(str(key).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


class PurePythonGenerator:
    """Minimal ``numpy.random.Generator`` stand-in (no numpy needed).

    Covers exactly the draw methods the simulator pulls from its named
    streams: uniform ``random()``, ``exponential(scale)``, and
    ``integers(n)`` / ``integers(low, high)`` with numpy's half-open
    interval convention.
    """

    __slots__ = ("_random",)

    def __init__(self, seed: int):
        self._random = _pyrandom.Random(seed)

    def random(self) -> float:
        return self._random.random()

    def exponential(self, scale: float = 1.0) -> float:
        return self._random.expovariate(1.0 / scale)

    def integers(self, low: int, high: Optional[int] = None) -> int:
        if high is None:
            low, high = 0, low
        return self._random.randrange(low, high)


class RandomStreams:
    """Factory and registry of named deterministic random generators."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, object] = {}

    def get(self, name: str):
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            if np is not None:
                # crc32: a stable, platform-independent hash of the name.
                tag = zlib.crc32(name.encode("utf-8"))
                seq = np.random.SeedSequence(entropy=self.master_seed,
                                             spawn_key=(tag,))
                gen = np.random.default_rng(seq)
            else:
                gen = PurePythonGenerator(
                    derive_seed(self.master_seed, "stream", name))
            self._streams[name] = gen
        return gen

    def spawn(self, run_index: object) -> "RandomStreams":
        """A fresh :class:`RandomStreams` for replication ``run_index``.

        The child's master seed derives from this instance's seed and
        the index via :func:`derive_seed`, so every replication gets
        independent, reproducible streams — no shared state with the
        parent or with siblings.
        """
        return RandomStreams(derive_seed(self.master_seed, "spawn", run_index))

    def reset(self) -> None:
        """Drop all streams; next access recreates them from scratch."""
        self._streams.clear()

    def names(self) -> list[str]:
        """Names of streams created so far (sorted, for stable reports)."""
        return sorted(self._streams)

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.master_seed} n={len(self._streams)}>"
