"""Deterministic discrete-event simulation kernel.

The kernel underpins every protocol in this repository.  It is a classic
event-heap scheduler with three deliberate properties:

* **Determinism** — events with identical timestamps fire in scheduling
  order (a monotonic tie-break counter), and all randomness flows through
  named, seeded streams (:mod:`repro.sim.rand`).  The same seed always
  reproduces the same trace, which the test suite relies on.
* **Two programming models** — callback-style event handlers (used by the
  protocol state machines) and generator-based processes
  (:mod:`repro.sim.process`, used by workload scripts).
* **Observability** — a structured trace bus (:mod:`repro.sim.trace`)
  that metrics collectors subscribe to.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator(seed=42)
>>> fired = []
>>> sim.schedule(5.0, lambda: fired.append(sim.now))
<repro.sim.engine.Event ...>
>>> sim.run()
>>> fired
[5.0]
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import Process, Timeout, WaitSignal, Signal
from repro.sim.timers import Timer, PeriodicTimer
from repro.sim.rand import RandomStreams
from repro.sim.trace import TraceBus, TraceRecord

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Process",
    "Timeout",
    "WaitSignal",
    "Signal",
    "Timer",
    "PeriodicTimer",
    "RandomStreams",
    "TraceBus",
    "TraceRecord",
]
