"""Back-compat shim: timers moved to :mod:`repro.runtime.timers`.

The timers depend only on the runtime seam, not on the discrete-event
engine, so they live with the :class:`~repro.runtime.api.Runtime`
interface now.  This module keeps the historical import path working.
"""

from repro.runtime.timers import PeriodicTimer, Timer

__all__ = ["Timer", "PeriodicTimer"]
